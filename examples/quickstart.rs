//! Quickstart: build a circuit, compile it for both surface-code models,
//! and inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ecmas::{validate_encoded, Ecmas};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy circuit: GHZ preparation followed by a round of long-range
    // entangling gates.
    let mut circuit = Circuit::with_name(6, "quickstart");
    circuit.h(0);
    for i in 0..5 {
        circuit.cnot(i, i + 1);
    }
    circuit.cnot(0, 5);
    circuit.cnot(1, 4);
    println!(
        "circuit `{}`: {} qubits, {} CNOTs, depth α = {}",
        circuit.name(),
        circuit.qubits(),
        circuit.cnot_count(),
        circuit.depth()
    );

    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        // The paper's minimum viable chip: ⌈√n⌉ × ⌈√n⌉ tiles, bandwidth 1.
        let chip = Chip::min_viable(model, circuit.qubits(), 3)?;
        let encoded = Ecmas::default().compile(&circuit, &chip)?;
        validate_encoded(&circuit, &encoded)?;
        println!(
            "\n{} model: Δ = {} cycles on a {}×{} tile array \
             ({} physical qubits at d=3)",
            model.label(),
            encoded.cycles(),
            chip.tile_rows(),
            chip.tile_cols(),
            chip.physical_qubits(),
        );
        println!("qubit → tile slot: {:?}", encoded.mapping());
        if let Some(cuts) = encoded.initial_cuts() {
            println!("initial cut types: {cuts:?}");
        }
        println!("routing grid:\n{}", chip.grid().ascii());
    }
    Ok(())
}
