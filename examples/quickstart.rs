//! Quickstart: build a circuit and walk the staged compilation session —
//! profile, map, schedule — inspecting each stage's artifact and the
//! final structured report, for both surface-code models.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ecmas::{validate_encoded, Ecmas};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::Circuit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A toy circuit: GHZ preparation followed by a round of long-range
    // entangling gates.
    let mut circuit = Circuit::with_name(6, "quickstart");
    circuit.h(0);
    for i in 0..5 {
        circuit.cnot(i, i + 1);
    }
    circuit.cnot(0, 5);
    circuit.cnot(1, 4);
    println!(
        "circuit `{}`: {} qubits, {} CNOTs, depth α = {}",
        circuit.name(),
        circuit.qubits(),
        circuit.cnot_count(),
        circuit.depth()
    );

    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        // The paper's minimum viable chip: ⌈√n⌉ × ⌈√n⌉ tiles, bandwidth 1.
        let chip = Chip::min_viable(model, circuit.qubits(), 3)?;

        // Stage 1 — profile: the execution scheme and ĝPM are visible
        // before anything is placed.
        let profiled = Ecmas::default().session(&circuit, &chip)?;
        println!(
            "\n{} model: ĝPM = {} vs chip capacity {} ⇒ {} resources",
            model.label(),
            profiled.gpm(),
            chip.communication_capacity(),
            if profiled.resources_sufficient() { "sufficient" } else { "limited" },
        );

        // Stage 2 — map: the qubit → tile assignment (and, for double
        // defect, the initial cut types) can be inspected or overridden
        // here via `with_mapping` / `with_cuts`.
        let mapped = profiled.map()?;
        println!("qubit → tile slot: {:?}", mapped.mapping());
        if let Some(cuts) = mapped.cuts() {
            println!("initial cut types: {cuts:?}");
        }

        // Stage 3 — schedule (auto picks limited vs ReSu as the paper's
        // Fig. 9 does) and read the outcome + report.
        let outcome = mapped.schedule_auto()?.into_outcome();
        validate_encoded(&circuit, &outcome.encoded)?;
        let report = &outcome.report;
        println!(
            "algorithm {} ⇒ Δ = {} cycles on a {}×{} tile array ({} physical qubits at d=3)",
            report.algorithm.label(),
            report.cycles,
            chip.tile_rows(),
            chip.tile_cols(),
            chip.physical_qubits(),
        );
        println!(
            "report: profile {:.2?}, map {:.2?} ({} restarts), schedule {:.2?}; \
             router found {} paths with {} conflicts",
            report.timings.profile,
            report.timings.map,
            report.placement_restarts,
            report.timings.schedule,
            report.router.paths_found,
            report.router.conflicts,
        );
        println!("routing grid:\n{}", chip.grid().ascii());
    }
    Ok(())
}
