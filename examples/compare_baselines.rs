//! Head-to-head comparison of Ecmas against the paper's two baselines on a
//! selection of named benchmarks — a miniature of the paper's Table I.
//! All three compilers run through the workspace-wide [`Compiler`] trait,
//! so the loop body is one code path.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use ecmas::{validate_encoded, Compiler, Ecmas};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = ["ghz_state_n23", "ising_n10", "qft_n10", "dnn_n8", "swap_test_n25"];
    println!(
        "{:<16} {:>6} | {:>10} {:>9} | {:>7} {:>9}",
        "circuit", "alpha", "AutoBraid", "Ecmas-dd", "EDPCI", "Ecmas-ls"
    );
    let ecmas = Ecmas::default();
    for name in names {
        let circuit = ecmas_circuit::benchmarks::by_name(name).expect("known benchmark name");
        let n = circuit.qubits();
        let dd = Chip::min_viable(CodeModel::DoubleDefect, n, 3)?;
        let ls = Chip::min_viable(CodeModel::LatticeSurgery, n, 3)?;

        // One interface for every compiler: (compiler, chip) pairs in
        // column order.
        let runs: [(&dyn Compiler, &Chip); 4] =
            [(&AutoBraid::new(), &dd), (&ecmas, &dd), (&Edpci::new(), &ls), (&ecmas, &ls)];
        let mut cycles = Vec::new();
        for (compiler, chip) in runs {
            let outcome = compiler.compile_outcome(&circuit, chip)?;
            validate_encoded(&circuit, &outcome.encoded)?;
            cycles.push(outcome.report.cycles);
        }
        println!(
            "{:<16} {:>6} | {:>10} {:>9} | {:>7} {:>9}",
            name,
            circuit.depth(),
            cycles[0],
            cycles[1],
            cycles[2],
            cycles[3]
        );
    }
    println!("\n(all schedules cross-checked by the independent validator)");
    Ok(())
}
