//! Head-to-head comparison of Ecmas against the paper's two baselines on a
//! selection of named benchmarks — a miniature of the paper's Table I.
//!
//! ```sh
//! cargo run --release --example compare_baselines
//! ```

use ecmas::{validate_encoded, Ecmas};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = ["ghz_state_n23", "ising_n10", "qft_n10", "dnn_n8", "swap_test_n25"];
    println!(
        "{:<16} {:>6} | {:>10} {:>9} | {:>7} {:>9}",
        "circuit", "alpha", "AutoBraid", "Ecmas-dd", "EDPCI", "Ecmas-ls"
    );
    for name in names {
        let circuit = ecmas_circuit::benchmarks::by_name(name).expect("known benchmark name");
        let n = circuit.qubits();
        let dd = Chip::min_viable(CodeModel::DoubleDefect, n, 3)?;
        let ls = Chip::min_viable(CodeModel::LatticeSurgery, n, 3)?;

        let autobraid = AutoBraid::new().compile(&circuit, &dd)?;
        let ecmas_dd = Ecmas::default().compile(&circuit, &dd)?;
        let edpci = Edpci::new().compile(&circuit, &ls)?;
        let ecmas_ls = Ecmas::default().compile(&circuit, &ls)?;
        for enc in [&autobraid, &ecmas_dd, &edpci, &ecmas_ls] {
            validate_encoded(&circuit, enc)?;
        }
        println!(
            "{:<16} {:>6} | {:>10} {:>9} | {:>7} {:>9}",
            name,
            circuit.depth(),
            autobraid.cycles(),
            ecmas_dd.cycles(),
            edpci.cycles(),
            ecmas_ls.cycles()
        );
    }
    println!("\n(all schedules cross-checked by the independent validator)");
    Ok(())
}
