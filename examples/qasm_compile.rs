//! Compile an OpenQASM 2.0 program to a surface-code schedule.
//!
//! Reads the file given as the first argument (try the bundled
//! `examples/programs/toffoli_chain.qasm`), or falls back to the same
//! program embedded below, then compiles it through the staged session
//! API and prints the clock-cycle timeline plus the compile report.
//!
//! ```sh
//! cargo run --example qasm_compile -- examples/programs/toffoli_chain.qasm
//! ```

use ecmas::{validate_encoded, Ecmas, EventKind};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::qasm;

const DEFAULT_PROGRAM: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
ccx q[0], q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
measure q -> c;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEFAULT_PROGRAM.to_string(),
    };
    let circuit = qasm::parse(&source)?;
    println!(
        "parsed: {} qubits, {} ops ({} CNOTs after decomposition), depth α = {}",
        circuit.qubits(),
        circuit.op_count(),
        circuit.cnot_count(),
        circuit.depth()
    );

    let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3)?;
    // The staged session: profile and map are explicit, so the mapping
    // could be overridden here before scheduling.
    let outcome = Ecmas::default().session(&circuit, &chip)?.map()?.schedule()?.into_outcome();
    validate_encoded(&circuit, &outcome.encoded)?;

    println!("\ndouble-defect schedule, Δ = {} cycles:", outcome.encoded.cycles());
    let mut events: Vec<_> = outcome.encoded.events().iter().collect();
    events.sort_by_key(|e| (e.start, e.gate));
    for event in events {
        let what = match &event.kind {
            EventKind::Braid { path } => format!("braid          (path length {})", path.len()),
            EventKind::DirectSameCut { path } => {
                format!("direct same-cut (path length {})", path.len())
            }
            EventKind::LatticeCnot { path } => {
                format!("lattice CNOT   (path length {})", path.len())
            }
            EventKind::CutModification { qubit } => format!("cut modification on qubit {qubit}"),
            other => format!("{other:?}"),
        };
        match event.gate {
            Some(g) => {
                println!("  cycle {:>3}..{:<3} gate {:>3}: {what}", event.start, event.end(), g)
            }
            None => println!("  cycle {:>3}..{:<3}          {what}", event.start, event.end()),
        }
    }
    println!(
        "\nreport: profile {:.2?}, map {:.2?}, schedule {:.2?}; router {} paths / {} conflicts",
        outcome.report.timings.profile,
        outcome.report.timings.map,
        outcome.report.timings.schedule,
        outcome.report.router.paths_found,
        outcome.report.router.conflicts,
    );

    // Round-trip the circuit back out as QASM.
    let regenerated = qasm::to_qasm(&circuit);
    println!("\nregenerated QASM ({} lines)", regenerated.lines().count());
    Ok(())
}
