//! Miniature of the paper's Fig. 11: how cycle counts scale with the
//! Circuit Parallelism Degree on a fixed chip, for Ecmas and both
//! baselines.
//!
//! ```sh
//! cargo run --release --example parallelism_sweep
//! ```

use ecmas::{para_finding, Ecmas};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::random;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (qubits, depth, samples) = (25, 30, 5);
    let dd = Chip::min_viable(CodeModel::DoubleDefect, qubits, 3)?;
    let ls = Chip::min_viable(CodeModel::LatticeSurgery, qubits, 3)?;
    println!("random circuits: {qubits} qubits, depth {depth}, {samples} samples per point");
    println!(
        "{:>3} {:>6} | {:>10} {:>9} | {:>7} {:>9}",
        "PM", "gPM", "AutoBraid", "Ecmas-dd", "EDPCI", "Ecmas-ls"
    );
    for pm in [1, 2, 4, 6, 8, 10, 12] {
        let group = random::test_group(qubits, depth, pm, samples, 99);
        let mut sums = [0u64; 4];
        let mut gpm_sum = 0usize;
        for circuit in &group {
            gpm_sum += para_finding(&circuit.dag()).gpm();
            sums[0] += AutoBraid::new().compile(circuit, &dd)?.cycles();
            sums[1] += Ecmas::default().compile(circuit, &dd)?.cycles();
            sums[2] += Edpci::new().compile(circuit, &ls)?.cycles();
            sums[3] += Ecmas::default().compile(circuit, &ls)?.cycles();
        }
        let k = group.len() as u64;
        println!(
            "{:>3} {:>6.1} | {:>10.1} {:>9.1} | {:>7.1} {:>9.1}",
            pm,
            gpm_sum as f64 / k as f64,
            sums[0] as f64 / k as f64,
            sums[1] as f64 / k as f64,
            sums[2] as f64 / k as f64,
            sums[3] as f64 / k as f64,
        );
    }
    println!("\n(see `cargo run -p ecmas-bench --bin fig11` for the full-size experiment)");
    Ok(())
}
