//! Miniature of the paper's Fig. 11: how cycle counts scale with the
//! Circuit Parallelism Degree on a fixed chip, for Ecmas and both
//! baselines. Each point's sample group compiles in parallel with
//! [`compile_batch`] — the compilers are deterministic, so the results
//! are identical to a sequential loop, only faster on multi-core hosts.
//!
//! ```sh
//! cargo run --release --example parallelism_sweep
//! ```

use ecmas::{compile_batch, para_finding, Compiler, Ecmas};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{random, Circuit};

fn mean_cycles(
    compiler: &(dyn Compiler + Sync),
    group: &[Circuit],
    chip: &Chip,
) -> Result<f64, Box<dyn std::error::Error>> {
    let mut sum = 0u64;
    for outcome in compile_batch(compiler, group, chip) {
        sum += outcome?.report.cycles;
    }
    Ok(sum as f64 / group.len() as f64)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (qubits, depth, samples) = (25, 30, 5);
    let dd = Chip::min_viable(CodeModel::DoubleDefect, qubits, 3)?;
    let ls = Chip::min_viable(CodeModel::LatticeSurgery, qubits, 3)?;
    println!("random circuits: {qubits} qubits, depth {depth}, {samples} samples per point");
    println!(
        "{:>3} {:>6} | {:>10} {:>9} | {:>7} {:>9}",
        "PM", "gPM", "AutoBraid", "Ecmas-dd", "EDPCI", "Ecmas-ls"
    );
    let ecmas = Ecmas::default();
    for pm in [1, 2, 4, 6, 8, 10, 12] {
        let group = random::test_group(qubits, depth, pm, samples, 99);
        let gpm_sum: usize = group.iter().map(|c| para_finding(&c.dag()).gpm()).sum();
        println!(
            "{:>3} {:>6.1} | {:>10.1} {:>9.1} | {:>7.1} {:>9.1}",
            pm,
            gpm_sum as f64 / group.len() as f64,
            mean_cycles(&AutoBraid::new(), &group, &dd)?,
            mean_cycles(&ecmas, &group, &dd)?,
            mean_cycles(&Edpci::new(), &group, &ls)?,
            mean_cycles(&ecmas, &group, &ls)?,
        );
    }
    println!("\n(see `cargo run -p ecmas-bench --bin fig11` for the full-size experiment)");
    Ok(())
}
