//! Ecmas-ReSu: the performance-guaranteed scheduler for chips with
//! sufficient communication capacity (paper §IV-B2, Theorem 2/3).
//!
//! ```sh
//! cargo run --release --example sufficient_resources
//! ```

use ecmas::{para_finding, validate_encoded, Ecmas};
use ecmas_chip::{Chip, CodeModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ecmas_circuit::benchmarks::dnn_n16();
    let dag = circuit.dag();
    let scheme = para_finding(&dag);
    println!(
        "{}: α = {}, ĝPM = {} (Para-Finding layering)",
        circuit.name(),
        dag.depth(),
        scheme.gpm()
    );

    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        // Size the chip so Theorem 2's capacity reaches ĝPM.
        let chip = Chip::sufficient(model, circuit.qubits(), scheme.gpm(), 3)?;
        println!(
            "\n{}: bandwidth {} ⇒ Chip Communication Capacity {} ≥ ĝPM",
            model.label(),
            chip.bandwidth(),
            chip.communication_capacity(),
        );

        let limited_chip = Chip::min_viable(model, circuit.qubits(), 3)?;
        let limited = Ecmas::default().compile(&circuit, &limited_chip)?;
        let resu = Ecmas::default().compile_resu(&circuit, &chip)?;
        validate_encoded(&circuit, &limited)?;
        validate_encoded(&circuit, &resu)?;
        println!(
            "  Algorithm 1 on the minimum viable chip: Δ = {}\n  Ecmas-ReSu on the sufficient chip:      Δ = {}",
            limited.cycles(),
            resu.cycles()
        );
        if model == CodeModel::LatticeSurgery {
            assert_eq!(
                resu.cycles() as usize,
                dag.depth(),
                "lattice-surgery ReSu is depth-optimal"
            );
            println!("  (optimal: Δ equals the circuit depth α)");
        } else {
            let bound = (5 * dag.depth()).div_ceil(2);
            println!(
                "  (5/2-approximation: Δ = {} ≤ ⌈5α/2⌉ = {bound}, {} cut modifications)",
                resu.cycles(),
                resu.modification_count()
            );
        }
    }
    Ok(())
}
