//! Ecmas-ReSu: the performance-guaranteed scheduler for chips with
//! sufficient communication capacity (paper §IV-B2, Theorem 2/3), driven
//! through the resource-adaptive session entry point: `compile_auto`
//! compares the chip's capacity against the profiled ĝPM and picks
//! Algorithm 1 or Ecmas-ReSu by itself — the report records the choice.
//!
//! ```sh
//! cargo run --release --example sufficient_resources
//! ```

use ecmas::session::Algorithm;
use ecmas::{para_finding, validate_encoded, Ecmas};
use ecmas_chip::{Chip, CodeModel};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = ecmas_circuit::benchmarks::dnn_n16();
    let dag = circuit.dag();
    let scheme = para_finding(&dag);
    println!(
        "{}: α = {}, ĝPM = {} (Para-Finding layering)",
        circuit.name(),
        dag.depth(),
        scheme.gpm()
    );

    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        // Size the chip so Theorem 2's capacity reaches ĝPM.
        let chip = Chip::sufficient(model, circuit.qubits(), scheme.gpm(), 3)?;
        println!(
            "\n{}: bandwidth {} ⇒ Chip Communication Capacity {} ≥ ĝPM",
            model.label(),
            chip.bandwidth(),
            chip.communication_capacity(),
        );

        // On the minimum viable chip the auto choice falls back to the
        // limited-resources scheduler; on the sufficient chip it is ReSu.
        let limited_chip = Chip::min_viable(model, circuit.qubits(), 3)?;
        let limited = Ecmas::default().compile_auto(&circuit, &limited_chip)?;
        let resu = Ecmas::default().compile_auto(&circuit, &chip)?;
        assert_eq!(limited.report.algorithm, Algorithm::Limited);
        assert_eq!(resu.report.algorithm, Algorithm::ReSu);
        validate_encoded(&circuit, &limited.encoded)?;
        validate_encoded(&circuit, &resu.encoded)?;
        println!(
            "  auto on the minimum viable chip picked `{}`: Δ = {}\n  \
             auto on the sufficient chip picked `{}`:    Δ = {}",
            limited.report.algorithm.label(),
            limited.report.cycles,
            resu.report.algorithm.label(),
            resu.report.cycles
        );
        if model == CodeModel::LatticeSurgery {
            assert_eq!(
                resu.report.cycles as usize,
                dag.depth(),
                "lattice-surgery ReSu is depth-optimal"
            );
            println!("  (optimal: Δ equals the circuit depth α)");
        } else {
            let bound = (5 * dag.depth()).div_ceil(2);
            println!(
                "  (5/2-approximation: Δ = {} ≤ ⌈5α/2⌉ = {bound}, {} cut modifications)",
                resu.report.cycles, resu.report.cut_modifications
            );
        }
    }
    Ok(())
}
