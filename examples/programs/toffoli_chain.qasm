// Bundled smoke-test program: a Toffoli feeding a CNOT chain.
// Used by the CI `ecmasc --json` step and loadable by
// `cargo run --example qasm_compile -- examples/programs/toffoli_chain.qasm`.
OPENQASM 2.0;
include "qelib1.inc";
qreg q[5];
creg c[5];
h q[0];
ccx q[0], q[1], q[2];
cx q[2], q[3];
cx q[3], q[4];
measure q -> c;
