//! Integration tests for the staged session API: stage overrides, the
//! resource-adaptive auto choice, parallel batch compilation, and the
//! congested-chip ablations the one-shot API could not express.

use ecmas::session::Algorithm;
use ecmas::{
    compile_batch, compile_batch_with_threads, validate_encoded, Compiler, Ecmas, EcmasConfig,
    GateOrder, LocationStrategy,
};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{benchmarks, random, Circuit};
use proptest::prelude::*;

/// `compile_auto` must pick ReSu exactly when the chip's communication
/// capacity reaches the profiled ĝPM, and Algorithm 1 otherwise — the
/// paper's Fig. 9 decision.
#[test]
fn auto_choice_follows_capacity_vs_gpm() {
    for circuit in [benchmarks::ghz(9), benchmarks::dnn_n8(), benchmarks::qft_n10()] {
        let gpm = ecmas::para_finding(&circuit.dag()).gpm();
        for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
            for chip in [
                Chip::min_viable(model, circuit.qubits(), 3).unwrap(),
                Chip::sufficient(model, circuit.qubits(), gpm, 3).unwrap(),
            ] {
                let outcome = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
                validate_encoded(&circuit, &outcome.encoded).unwrap();
                let expect = if chip.communication_capacity() >= gpm {
                    Algorithm::ReSu
                } else {
                    Algorithm::Limited
                };
                assert_eq!(
                    outcome.report.algorithm,
                    expect,
                    "{}: capacity {} vs gpm {gpm}",
                    circuit.name(),
                    chip.communication_capacity()
                );
            }
        }
    }
}

/// The one-shot entry points are thin wrappers: staged compilation with no
/// overrides must reproduce them event for event.
#[test]
fn session_stages_reproduce_the_one_shot_wrappers() {
    let circuit = benchmarks::qft_n10();
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        let chip = Chip::min_viable(model, 10, 3).unwrap();
        let one_shot = Ecmas::default().compile(&circuit, &chip).unwrap();
        let staged = Ecmas::default()
            .session(&circuit, &chip)
            .unwrap()
            .map()
            .unwrap()
            .schedule()
            .unwrap()
            .into_outcome();
        assert_eq!(staged.encoded.events(), one_shot.events());
        assert_eq!(staged.encoded.mapping(), one_shot.mapping());
    }
}

/// The congested-chip ablations (ROADMAP: "Tables II and IV measure
/// nothing" on min-viable chips). On `Chip::congested` the knobs finally
/// discriminate:
///
/// * Table II (location init): injecting the trivial snake mapping through
///   the session API costs real cycles against the pipeline's placement.
/// * Table IV (gate order): circuit-order scheduling costs real cycles
///   against the priority function.
#[test]
fn congested_chip_gives_the_ablations_nonzero_spread() {
    // Table II — location initialization, on the heaviest-traffic circuit
    // in the suite (qft_n50: all-to-all communication). The A* router
    // erased the spread the smaller dnn_n16 used to show here — its
    // corridor-hugging shortest paths resolve that circuit's congestion
    // even under the snake mapping — so the discriminating workload has
    // to saturate the congested chip for real (see EXPERIMENTS.md).
    let circuit = benchmarks::qft_n50();
    let chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
    let ours = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
    validate_encoded(&circuit, &ours.encoded).unwrap();
    // The saturating run exercises the failed-search path: the report
    // must surface the new counters — every exhausted search is counted,
    // and within congested cycles the reachability cache answers repeats
    // without re-flooding.
    assert!(ours.report.router.failed_searches > 0, "saturation implies failed searches");
    assert!(ours.report.router.cache_hits > 0, "repeat failures must hit the cache");
    assert!(ours.report.router.recolor_cells > 0, "cache misses flood-fill the region");
    assert!(
        ours.report.router.failed_searches <= ours.report.router.conflicts,
        "failed searches are the region-exhaustion subset of conflicts"
    );

    // Inject the snake mapping (what LocationStrategy::Trivial computes)
    // into the session mid-flight — the ablation the one-shot API could
    // only reach by rebuilding the whole config.
    let snake = ecmas::mapping::snake_mapping(circuit.qubits(), chip.tile_rows(), chip.tile_cols());
    let injected = Ecmas::default()
        .session(&circuit, &chip)
        .unwrap()
        .map()
        .unwrap()
        .with_mapping(snake)
        .unwrap()
        .schedule_auto()
        .unwrap()
        .into_outcome();
    validate_encoded(&circuit, &injected.encoded).unwrap();
    assert!(
        injected.report.cycles > ours.report.cycles,
        "location init must discriminate on the congested chip: snake {} !> ours {}",
        injected.report.cycles,
        ours.report.cycles
    );
    // And the injected mapping must agree with the Trivial strategy run.
    let trivial =
        Ecmas::new(EcmasConfig { location: LocationStrategy::Trivial, ..EcmasConfig::default() })
            .compile_auto(&circuit, &chip)
            .unwrap();
    assert_eq!(trivial.report.cycles, injected.report.cycles);

    // Table IV — gate ordering, on a parallelism-6 random circuit whose
    // congestion makes the within-cycle order matter.
    let circuit = random::layered(16, 20, 6, 7);
    let chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
    let priority = Ecmas::default().compile(&circuit, &chip).unwrap();
    let circuit_order =
        Ecmas::new(EcmasConfig { order: GateOrder::CircuitOrder, ..EcmasConfig::default() })
            .compile(&circuit, &chip)
            .unwrap();
    validate_encoded(&circuit, &priority).unwrap();
    validate_encoded(&circuit, &circuit_order).unwrap();
    assert!(
        circuit_order.cycles() > priority.cycles(),
        "gate order must discriminate on the congested chip: circuit-order {} !> priority {}",
        circuit_order.cycles(),
        priority.cycles()
    );
}

/// Batch compilation across every workspace compiler returns results in
/// input order with per-circuit reports attached.
#[test]
fn batch_works_for_all_three_compilers() {
    let circuits: Vec<Circuit> = vec![benchmarks::ghz(9), benchmarks::ising_n10()];
    let compilers: [(&(dyn Compiler + Sync), CodeModel); 3] = [
        (&Ecmas::default(), CodeModel::DoubleDefect),
        (&AutoBraid::new(), CodeModel::DoubleDefect),
        (&Edpci::new(), CodeModel::LatticeSurgery),
    ];
    for (compiler, model) in compilers {
        let chip = Chip::min_viable(model, 10, 3).unwrap();
        let outcomes = compile_batch(compiler, &circuits, &chip);
        assert_eq!(outcomes.len(), circuits.len());
        for (circuit, outcome) in circuits.iter().zip(outcomes) {
            let outcome = outcome.unwrap();
            validate_encoded(circuit, &outcome.encoded)
                .unwrap_or_else(|e| panic!("{}: {e}", compiler.name()));
            assert_eq!(outcome.report.cycles, outcome.encoded.cycles());
        }
    }
}

/// The 50-circuit QUEKO-style batch of the acceptance criteria: parallel
/// compilation must produce bit-identical `EncodedCircuit`s to the
/// sequential loop. (The ≥4× wall-clock speedup materializes on multi-core
/// hosts; determinism is asserted unconditionally, and a sanity timing
/// check runs only when enough cores are available.)
#[test]
fn fifty_circuit_batch_is_bit_identical_to_sequential() {
    let circuits: Vec<Circuit> = (0..50).map(|s| random::layered(25, 20, 5, 0x0B5E + s)).collect();
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, 25, 3).unwrap();
    let compiler = Ecmas::default();

    let t = std::time::Instant::now();
    let sequential: Vec<_> =
        circuits.iter().map(|c| compiler.compile_outcome(c, &chip).unwrap()).collect();
    let sequential_time = t.elapsed();

    let t = std::time::Instant::now();
    let batched = compile_batch(&compiler, &circuits, &chip);
    let batch_time = t.elapsed();

    for (seq, par) in sequential.iter().zip(batched) {
        let par = par.unwrap();
        assert_eq!(par.encoded.events(), seq.encoded.events(), "bit-identical schedules");
        assert_eq!(par.encoded.mapping(), seq.encoded.mapping());
        assert_eq!(par.encoded.initial_cuts(), seq.encoded.initial_cuts());
    }

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    eprintln!("batch {batch_time:?} vs sequential {sequential_time:?} on {cores} reported cores");
    if cores >= 4 {
        // Loose sanity bound only (the acceptance run on a real 8-core
        // host sees ≥4×): `available_parallelism` can report cores a
        // cgroup-limited CI container does not actually deliver, so the
        // hard determinism assertions above are the contract and the
        // timing check merely guards against pathological serialization
        // overhead.
        assert!(
            batch_time < sequential_time * 2,
            "batch {batch_time:?} vs sequential {sequential_time:?} on {cores} cores: \
             parallel dispatch overhead is pathological"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: for random circuit batches, `compile_batch` is
    /// event-for-event identical to sequential `compile` on the same
    /// inputs, across worker counts.
    #[test]
    fn batch_equals_sequential_event_for_event(
        seed in 0u64..1000,
        pm in 1usize..5,
        threads in 2usize..5,
    ) {
        let circuits: Vec<Circuit> =
            (0..5).map(|k| random::layered(12, 8, pm, seed * 31 + k)).collect();
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 12, 3).unwrap();
        let compiler = Ecmas::default();
        let batched = compile_batch_with_threads(&compiler, &circuits, &chip, threads);
        for (circuit, outcome) in circuits.iter().zip(batched) {
            let outcome = outcome.unwrap();
            let sequential = compiler.compile(circuit, &chip).unwrap();
            prop_assert_eq!(outcome.encoded.events(), sequential.events());
            prop_assert_eq!(outcome.encoded.mapping(), sequential.mapping());
            prop_assert_eq!(outcome.encoded.cycles(), sequential.cycles());
        }
    }
}
