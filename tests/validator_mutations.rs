//! Failure injection: take a known-valid schedule, corrupt it in each way
//! the paper's constraints forbid, and assert the independent validator
//! catches every corruption class. This is the test that keeps the
//! validator honest — a validator that accepts corrupted schedules would
//! silently bless buggy compilers.

use ecmas::{
    collect_violations, validate_encoded, Code, CutType, Ecmas, EncodedCircuit, Event, EventKind,
    ValidateError,
};
use ecmas_chip::{Chip, CodeModel, RoutingGrid};
use ecmas_circuit::{random, Circuit};
use ecmas_route::Path;

fn base_circuit() -> Circuit {
    let mut c = Circuit::new(4);
    c.cnot(0, 1);
    c.cnot(2, 3);
    c.cnot(1, 2);
    c.cnot(0, 3);
    c
}

fn compile(model: CodeModel) -> (Circuit, EncodedCircuit) {
    let circuit = base_circuit();
    let chip = Chip::min_viable(model, circuit.qubits(), 3).unwrap();
    let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
    validate_encoded(&circuit, &enc).expect("baseline must be valid");
    (circuit, enc)
}

/// Rebuilds an encoded circuit with mutated parts.
fn rebuild(
    enc: &EncodedCircuit,
    mapping: Option<Vec<usize>>,
    cuts: Option<Option<Vec<CutType>>>,
    events: Vec<Event>,
) -> EncodedCircuit {
    EncodedCircuit::new(
        enc.chip().clone(),
        mapping.unwrap_or_else(|| enc.mapping().to_vec()),
        cuts.unwrap_or_else(|| enc.initial_cuts().map(<[CutType]>::to_vec)),
        events,
    )
}

#[test]
fn dropping_a_gate_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    let victim = events.iter().position(|e| e.gate.is_some()).unwrap();
    events.remove(victim);
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::GateCoverage { .. })));
}

#[test]
fn duplicating_a_gate_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    let copy = events.iter().find(|e| e.gate.is_some()).unwrap().clone();
    let mut dup = copy.clone();
    dup.start += 1000; // far away so only coverage trips, not conflicts
    events.push(dup);
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(
        validate_encoded(&circuit, &bad),
        Err(ValidateError::GateCoverage { times: 2, .. })
    ));
}

#[test]
fn reordering_dependent_gates_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    // Gate 2 = cnot(1,2) depends on gates 0 and 1. Pull it to cycle 0 and
    // push its parents far out.
    let mut events = enc.events().to_vec();
    for e in &mut events {
        match e.gate {
            Some(2) => e.start = 0,
            Some(0) | Some(1) => e.start += 500,
            _ => {}
        }
    }
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(
        validate_encoded(&circuit, &bad),
        Err(ValidateError::DependencyOrder { .. }) | Err(ValidateError::QubitOverlap { .. })
    ));
}

#[test]
fn equal_cut_braid_is_caught() {
    let (circuit, enc) = compile(CodeModel::DoubleDefect);
    // Force all-X initial cuts: any braid event now joins equal cuts.
    let has_braid = enc.events().iter().any(|e| matches!(e.kind, EventKind::Braid { .. }));
    assert!(has_braid, "baseline should braid");
    let bad = rebuild(&enc, None, Some(Some(vec![CutType::X; 4])), enc.events().to_vec());
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::CutTypeRule { .. })));
}

#[test]
fn teleporting_path_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let grid = enc.chip().grid();
    let mut events = enc.events().to_vec();
    // Replace one path with a non-adjacent hop between the right endpoints.
    let e = events.iter_mut().find(|e| e.gate == Some(3)).unwrap();
    let gate = circuit.cnot_gates()[3];
    let from = grid.tile_cell(enc.mapping()[gate.control]);
    let to = grid.tile_cell(enc.mapping()[gate.target]);
    e.kind = EventKind::LatticeCnot { path: Path::from_cells_unchecked(vec![from, to]) };
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::MalformedPath { .. })));
}

#[test]
fn wrong_endpoints_are_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    // Give gate 0 the path of gate 1 (wrong tiles).
    let donor =
        events.iter().find(|e| e.gate == Some(1)).and_then(|e| e.kind.path().cloned()).unwrap();
    let e = events.iter_mut().find(|e| e.gate == Some(0)).unwrap();
    e.kind = EventKind::LatticeCnot { path: donor };
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::MalformedPath { .. })));
}

#[test]
fn path_through_mapped_tile_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let grid = enc.chip().grid();
    let mut events = enc.events().to_vec();
    // Build a straight path for gate 2 = cnot(1,2) that tunnels through a
    // mapped tile: walk the grid row of qubit 1's tile.
    let gate = circuit.cnot_gates()[2];
    let from = grid.tile_cell(enc.mapping()[gate.control]);
    let to = grid.tile_cell(enc.mapping()[gate.target]);
    let (fr, fc) = grid.coords(from);
    let (tr, tc) = grid.coords(to);
    // Manhattan staircase: across the row, then down the column.
    let mut cells = vec![from];
    let mut c = fc;
    while c != tc {
        c = if c < tc { c + 1 } else { c - 1 };
        cells.push(grid.index(fr, c));
    }
    let mut r = fr;
    while r != tr {
        r = if r < tr { r + 1 } else { r - 1 };
        cells.push(grid.index(r, tc));
    }
    let tunnels_through_tile = cells[1..cells.len() - 1]
        .iter()
        .any(|&cell| enc.mapping().iter().any(|&slot| grid.tile_cell(slot) == cell));
    if !tunnels_through_tile {
        return; // mapping did not put a tile in the way; nothing to inject
    }
    let e = events.iter_mut().find(|e| e.gate == Some(2)).unwrap();
    e.kind = EventKind::LatticeCnot { path: Path::from_cells(&grid, cells) };
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::MalformedPath { .. })));
}

#[test]
fn overlapping_paths_are_caught() {
    // Two independent gates forced onto the same interior cell at the same
    // cycle (constructed directly; the compiler would never emit this).
    let mut circuit = Circuit::new(4);
    circuit.cnot(0, 1);
    circuit.cnot(2, 3);
    let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
    let grid = chip.grid();
    let mapping = vec![0, 3, 1, 2];
    let p0 = Path::from_cells(
        &grid,
        vec![
            grid.tile_cell(0),
            grid.index(1, 2),
            grid.index(2, 2),
            grid.index(3, 2),
            grid.tile_cell(3),
        ],
    );
    let p1 = Path::from_cells(
        &grid,
        vec![
            grid.tile_cell(1),
            grid.index(2, 3),
            grid.index(2, 2),
            grid.index(2, 1),
            grid.tile_cell(2),
        ],
    );
    let bad = EncodedCircuit::new(
        chip,
        mapping,
        Some(vec![CutType::X, CutType::Z, CutType::X, CutType::Z]),
        vec![
            Event { gate: Some(0), start: 0, kind: EventKind::Braid { path: p0 } },
            Event { gate: Some(1), start: 0, kind: EventKind::Braid { path: p1 } },
        ],
    );
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::PathConflict { cycle: 0 }));
}

#[test]
fn out_of_range_mapping_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut mapping = enc.mapping().to_vec();
    mapping[0] = 999;
    let bad = rebuild(&enc, Some(mapping), None, enc.events().to_vec());
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::BadMapping));
}

#[test]
fn missing_cuts_on_double_defect_is_caught() {
    let (circuit, enc) = compile(CodeModel::DoubleDefect);
    let bad = rebuild(&enc, None, Some(None), enc.events().to_vec());
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::WrongModel));
}

// ---------------------------------------------------------------------------
// Seeded mutation corpus. Each corruption class below must be caught by
// `collect_violations` with its *specific* stable diagnostic code — the
// contract `ecmas-analyze` exposes to tooling. The corpus runs each class
// over several seeded circuits and, where the class exists there, both
// code models, so a validator regression in any one section cannot hide
// behind another section firing first.

const SEEDS: [u64; 4] = [0xA11CE, 0xB0B5, 0xCAFE, 0xD00D];

fn seeded_compile(model: CodeModel, seed: u64) -> (Circuit, EncodedCircuit) {
    let circuit = random::layered(8, 6, 3, seed);
    let chip = Chip::min_viable(model, circuit.qubits(), 3).unwrap();
    let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
    validate_encoded(&circuit, &enc).expect("baseline must be valid");
    (circuit, enc)
}

fn codes_of(circuit: &Circuit, enc: &EncodedCircuit) -> Vec<Code> {
    collect_violations(circuit, enc).iter().map(ValidateError::code).collect()
}

/// Unit-step row-then-column walk between two grid cells, inclusive.
fn staircase(grid: &RoutingGrid, from: usize, to: usize) -> Vec<usize> {
    let (fr, fc) = grid.coords(from);
    let (tr, tc) = grid.coords(to);
    let mut cells = vec![from];
    let mut c = fc;
    while c != tc {
        c = if c < tc { c + 1 } else { c - 1 };
        cells.push(grid.index(fr, c));
    }
    let mut r = fr;
    while r != tr {
        r = if r < tr { r + 1 } else { r - 1 };
        cells.push(grid.index(r, tc));
    }
    cells
}

#[test]
fn corpus_drop_event_is_e002() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        for seed in SEEDS {
            let (circuit, enc) = seeded_compile(model, seed);
            let mut events = enc.events().to_vec();
            let gate_events: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| e.gate.is_some())
                .map(|(i, _)| i)
                .collect();
            let victim = gate_events[seed as usize % gate_events.len()];
            events.remove(victim);
            let bad = rebuild(&enc, None, None, events);
            assert!(
                codes_of(&circuit, &bad).contains(&Code::GateCoverage),
                "{} seed {seed:#x}: dropped event must raise E002",
                model.label(),
            );
        }
    }
}

#[test]
fn corpus_shift_cycle_is_e004() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        for seed in SEEDS {
            let (circuit, enc) = seeded_compile(model, seed);
            let dag = circuit.dag();
            let mut events = enc.events().to_vec();
            // Any gate with DAG parents starts at or after a parent's end
            // (≥ 1) in a valid schedule; yanking it to cycle 0 must trip
            // the dependency-order section.
            let candidates: Vec<usize> = events
                .iter()
                .enumerate()
                .filter(|(_, e)| e.gate.is_some_and(|g| !dag.parents(g).is_empty()))
                .map(|(i, _)| i)
                .collect();
            let pick = candidates[seed as usize % candidates.len()];
            events[pick].start = 0;
            let bad = rebuild(&enc, None, None, events);
            assert!(
                codes_of(&circuit, &bad).contains(&Code::DependencyOrder),
                "{} seed {seed:#x}: shifted cycle must raise E004",
                model.label(),
            );
        }
    }
}

#[test]
fn corpus_reorder_dependents_is_e004() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        for seed in SEEDS {
            let (circuit, enc) = seeded_compile(model, seed);
            let dag = circuit.dag();
            let mut events = enc.events().to_vec();
            // Swap the start cycles of a parent/child event pair: the child
            // now begins at the parent's old start, strictly before the
            // parent's new end.
            let (child, parent) = events
                .iter()
                .enumerate()
                .find_map(|(i, e)| {
                    let g = e.gate?;
                    let &p = dag.parents(g).first()?;
                    let pi = events.iter().position(|pe| pe.gate == Some(p))?;
                    Some((i, pi))
                })
                .expect("compiled schedule must contain a dependent pair");
            let (a, b) = (events[child].start, events[parent].start);
            events[child].start = b;
            events[parent].start = a;
            let bad = rebuild(&enc, None, None, events);
            assert!(
                codes_of(&circuit, &bad).contains(&Code::DependencyOrder),
                "{} seed {seed:#x}: reordered dependents must raise E004",
                model.label(),
            );
        }
    }
}

#[test]
fn corpus_remap_onto_defect_is_e001() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        for seed in SEEDS {
            let circuit = random::layered(6, 4, 2, seed);
            let chip = Chip::uniform(model, 3, 3, 1, 3).unwrap().with_defects(&[(2, 2)]).unwrap();
            let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
            validate_encoded(&circuit, &enc).expect("baseline must be valid");
            let dead = (0..enc.chip().tile_slots())
                .find(|&s| enc.chip().is_dead(s))
                .expect("chip has a defect");
            let mut mapping = enc.mapping().to_vec();
            let q = seed as usize % mapping.len();
            mapping[q] = dead;
            let bad = rebuild(&enc, Some(mapping), None, enc.events().to_vec());
            assert!(
                codes_of(&circuit, &bad).contains(&Code::BadMapping),
                "{} seed {seed:#x}: mapping qubit {q} onto a defect must raise E001",
                model.label(),
            );
        }
    }
}

#[test]
fn corpus_route_through_dead_cell_is_e007() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        for seed in SEEDS {
            let circuit = random::layered(6, 4, 2, seed);
            let chip = Chip::uniform(model, 3, 3, 1, 3).unwrap().with_defects(&[(1, 1)]).unwrap();
            let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
            validate_encoded(&circuit, &enc).expect("baseline must be valid");
            let grid = enc.chip().grid();
            let dead_cell = grid.tile_cell(4); // slot (1,1) of the 3×3 chip
            let mut events = enc.events().to_vec();
            let e = events
                .iter_mut()
                .find(|e| e.kind.path().is_some())
                .expect("schedule must route at least one path");
            let old = e.kind.path().unwrap().cells().to_vec();
            let (from, to) = (old[0], *old.last().unwrap());
            // Reroute through the dead tile: staircase from → dead → to.
            let mut cells = staircase(&grid, from, dead_cell);
            cells.extend(staircase(&grid, dead_cell, to).into_iter().skip(1));
            let path = Path::from_cells_unchecked(cells);
            e.kind = match &e.kind {
                EventKind::Braid { .. } => EventKind::Braid { path },
                _ => EventKind::LatticeCnot { path },
            };
            let bad = rebuild(&enc, None, None, events);
            assert!(
                codes_of(&circuit, &bad).contains(&Code::MalformedPath),
                "{} seed {seed:#x}: routing through a dead tile must raise E007",
                model.label(),
            );
        }
    }
}

/// The bandwidth-conservation gap, pinned: a one-step path between two
/// tile cells made grid-adjacent by a disabled (bandwidth-0) channel
/// passes every *legacy* validator section — endpoints match the
/// mapping, the step is unit-Manhattan, no dead or mapped interior
/// cells, nothing to conflict with — and is caught **only** by the E009
/// channel-conservation law. Before that law existed, `validate_encoded`
/// blessed this schedule (see EXPERIMENTS.md).
#[test]
fn corpus_oversubscribed_seam_is_e009_and_slips_past_legacy_checks() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        let mut chip = Chip::uniform(model, 2, 2, 1, 3).unwrap();
        chip.set_h_bandwidth(1, 0).unwrap(); // disable the middle channel
        let grid = chip.grid();
        let from = grid.tile_cell(0); // tile (0,0)
        let to = grid.tile_cell(2); // tile (1,0), straight across the seam
        assert_eq!(grid.manhattan(from, to), 1, "seam collapses the rows to adjacency");
        assert!(!grid.step_allowed(from, to), "the seam step is not routable");
        let mut circuit = Circuit::new(2);
        circuit.cnot(0, 1);
        let path = Path::from_cells_unchecked(vec![from, to]);
        let kind = match model {
            CodeModel::DoubleDefect => EventKind::Braid { path },
            CodeModel::LatticeSurgery => EventKind::LatticeCnot { path },
        };
        let cuts = (model == CodeModel::DoubleDefect).then(|| vec![CutType::X, CutType::Z]);
        let bad = EncodedCircuit::new(
            chip,
            vec![0, 2],
            cuts,
            vec![Event { gate: Some(0), start: 0, kind }],
        );
        let violations = collect_violations(&circuit, &bad);
        assert!(!violations.is_empty(), "{}: the seam crossing must be rejected", model.label());
        assert!(
            violations.iter().all(|v| v.code() == Code::ChannelOversubscribed),
            "{}: every legacy section passes — only E009 fires (got {violations:?})",
            model.label(),
        );
        assert!(matches!(
            validate_encoded(&circuit, &bad),
            Err(ValidateError::ChannelOversubscribed { capacity: 0, .. })
        ));
    }
}

#[test]
fn cross_model_event_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    let e = events.iter_mut().find(|e| e.gate.is_some()).unwrap();
    let path = e.kind.path().cloned().unwrap();
    e.kind = EventKind::Braid { path }; // braids do not exist in LS
    let bad = rebuild(&enc, None, None, events);
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::WrongModel));
}
