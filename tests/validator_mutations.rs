//! Failure injection: take a known-valid schedule, corrupt it in each way
//! the paper's constraints forbid, and assert the independent validator
//! catches every corruption class. This is the test that keeps the
//! validator honest — a validator that accepts corrupted schedules would
//! silently bless buggy compilers.

use ecmas::{validate_encoded, CutType, Ecmas, EncodedCircuit, Event, EventKind, ValidateError};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::Circuit;
use ecmas_route::Path;

fn base_circuit() -> Circuit {
    let mut c = Circuit::new(4);
    c.cnot(0, 1);
    c.cnot(2, 3);
    c.cnot(1, 2);
    c.cnot(0, 3);
    c
}

fn compile(model: CodeModel) -> (Circuit, EncodedCircuit) {
    let circuit = base_circuit();
    let chip = Chip::min_viable(model, circuit.qubits(), 3).unwrap();
    let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
    validate_encoded(&circuit, &enc).expect("baseline must be valid");
    (circuit, enc)
}

/// Rebuilds an encoded circuit with mutated parts.
fn rebuild(
    enc: &EncodedCircuit,
    mapping: Option<Vec<usize>>,
    cuts: Option<Option<Vec<CutType>>>,
    events: Vec<Event>,
) -> EncodedCircuit {
    EncodedCircuit::new(
        enc.chip().clone(),
        mapping.unwrap_or_else(|| enc.mapping().to_vec()),
        cuts.unwrap_or_else(|| enc.initial_cuts().map(<[CutType]>::to_vec)),
        events,
    )
}

#[test]
fn dropping_a_gate_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    let victim = events.iter().position(|e| e.gate.is_some()).unwrap();
    events.remove(victim);
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::GateCoverage { .. })));
}

#[test]
fn duplicating_a_gate_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    let copy = events.iter().find(|e| e.gate.is_some()).unwrap().clone();
    let mut dup = copy.clone();
    dup.start += 1000; // far away so only coverage trips, not conflicts
    events.push(dup);
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(
        validate_encoded(&circuit, &bad),
        Err(ValidateError::GateCoverage { times: 2, .. })
    ));
}

#[test]
fn reordering_dependent_gates_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    // Gate 2 = cnot(1,2) depends on gates 0 and 1. Pull it to cycle 0 and
    // push its parents far out.
    let mut events = enc.events().to_vec();
    for e in &mut events {
        match e.gate {
            Some(2) => e.start = 0,
            Some(0) | Some(1) => e.start += 500,
            _ => {}
        }
    }
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(
        validate_encoded(&circuit, &bad),
        Err(ValidateError::DependencyOrder { .. }) | Err(ValidateError::QubitOverlap { .. })
    ));
}

#[test]
fn equal_cut_braid_is_caught() {
    let (circuit, enc) = compile(CodeModel::DoubleDefect);
    // Force all-X initial cuts: any braid event now joins equal cuts.
    let has_braid = enc.events().iter().any(|e| matches!(e.kind, EventKind::Braid { .. }));
    assert!(has_braid, "baseline should braid");
    let bad = rebuild(&enc, None, Some(Some(vec![CutType::X; 4])), enc.events().to_vec());
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::CutTypeRule { .. })));
}

#[test]
fn teleporting_path_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let grid = enc.chip().grid();
    let mut events = enc.events().to_vec();
    // Replace one path with a non-adjacent hop between the right endpoints.
    let e = events.iter_mut().find(|e| e.gate == Some(3)).unwrap();
    let gate = circuit.cnot_gates()[3];
    let from = grid.tile_cell(enc.mapping()[gate.control]);
    let to = grid.tile_cell(enc.mapping()[gate.target]);
    e.kind = EventKind::LatticeCnot { path: Path::from_cells_unchecked(vec![from, to]) };
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::MalformedPath { .. })));
}

#[test]
fn wrong_endpoints_are_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    // Give gate 0 the path of gate 1 (wrong tiles).
    let donor =
        events.iter().find(|e| e.gate == Some(1)).and_then(|e| e.kind.path().cloned()).unwrap();
    let e = events.iter_mut().find(|e| e.gate == Some(0)).unwrap();
    e.kind = EventKind::LatticeCnot { path: donor };
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::MalformedPath { .. })));
}

#[test]
fn path_through_mapped_tile_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let grid = enc.chip().grid();
    let mut events = enc.events().to_vec();
    // Build a straight path for gate 2 = cnot(1,2) that tunnels through a
    // mapped tile: walk the grid row of qubit 1's tile.
    let gate = circuit.cnot_gates()[2];
    let from = grid.tile_cell(enc.mapping()[gate.control]);
    let to = grid.tile_cell(enc.mapping()[gate.target]);
    let (fr, fc) = grid.coords(from);
    let (tr, tc) = grid.coords(to);
    // Manhattan staircase: across the row, then down the column.
    let mut cells = vec![from];
    let mut c = fc;
    while c != tc {
        c = if c < tc { c + 1 } else { c - 1 };
        cells.push(grid.index(fr, c));
    }
    let mut r = fr;
    while r != tr {
        r = if r < tr { r + 1 } else { r - 1 };
        cells.push(grid.index(r, tc));
    }
    let tunnels_through_tile = cells[1..cells.len() - 1]
        .iter()
        .any(|&cell| enc.mapping().iter().any(|&slot| grid.tile_cell(slot) == cell));
    if !tunnels_through_tile {
        return; // mapping did not put a tile in the way; nothing to inject
    }
    let e = events.iter_mut().find(|e| e.gate == Some(2)).unwrap();
    e.kind = EventKind::LatticeCnot { path: Path::from_cells(&grid, cells) };
    let bad = rebuild(&enc, None, None, events);
    assert!(matches!(validate_encoded(&circuit, &bad), Err(ValidateError::MalformedPath { .. })));
}

#[test]
fn overlapping_paths_are_caught() {
    // Two independent gates forced onto the same interior cell at the same
    // cycle (constructed directly; the compiler would never emit this).
    let mut circuit = Circuit::new(4);
    circuit.cnot(0, 1);
    circuit.cnot(2, 3);
    let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
    let grid = chip.grid();
    let mapping = vec![0, 3, 1, 2];
    let p0 = Path::from_cells(
        &grid,
        vec![
            grid.tile_cell(0),
            grid.index(1, 2),
            grid.index(2, 2),
            grid.index(3, 2),
            grid.tile_cell(3),
        ],
    );
    let p1 = Path::from_cells(
        &grid,
        vec![
            grid.tile_cell(1),
            grid.index(2, 3),
            grid.index(2, 2),
            grid.index(2, 1),
            grid.tile_cell(2),
        ],
    );
    let bad = EncodedCircuit::new(
        chip,
        mapping,
        Some(vec![CutType::X, CutType::Z, CutType::X, CutType::Z]),
        vec![
            Event { gate: Some(0), start: 0, kind: EventKind::Braid { path: p0 } },
            Event { gate: Some(1), start: 0, kind: EventKind::Braid { path: p1 } },
        ],
    );
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::PathConflict { cycle: 0 }));
}

#[test]
fn out_of_range_mapping_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut mapping = enc.mapping().to_vec();
    mapping[0] = 999;
    let bad = rebuild(&enc, Some(mapping), None, enc.events().to_vec());
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::BadMapping));
}

#[test]
fn missing_cuts_on_double_defect_is_caught() {
    let (circuit, enc) = compile(CodeModel::DoubleDefect);
    let bad = rebuild(&enc, None, Some(None), enc.events().to_vec());
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::WrongModel));
}

#[test]
fn cross_model_event_is_caught() {
    let (circuit, enc) = compile(CodeModel::LatticeSurgery);
    let mut events = enc.events().to_vec();
    let e = events.iter_mut().find(|e| e.gate.is_some()).unwrap();
    let path = e.kind.path().cloned().unwrap();
    e.kind = EventKind::Braid { path }; // braids do not exist in LS
    let bad = rebuild(&enc, None, None, events);
    assert_eq!(validate_encoded(&circuit, &bad), Err(ValidateError::WrongModel));
}
