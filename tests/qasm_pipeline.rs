//! QASM front-end integration: parse → compile → validate, plus writer
//! round-trips over the benchmark suite.

use ecmas::{validate_encoded, Ecmas};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::qasm;

#[test]
fn parse_compile_validate_a_program() {
    let source = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg a[3];
        qreg b[3];
        creg c[6];
        h a;
        cx a, b;
        ccx a[0], b[0], b[2];
        swap a[1], b[1];
        rz(pi/4) b[2];
        measure a -> c;
    "#;
    let circuit = qasm::parse(source).expect("parses");
    assert_eq!(circuit.qubits(), 6);
    // 3 broadcast cx + 6 (ccx) + 3 (swap) = 12 CNOTs.
    assert_eq!(circuit.cnot_count(), 12);

    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        let chip = Chip::min_viable(model, circuit.qubits(), 3).unwrap();
        let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
        validate_encoded(&circuit, &enc).unwrap();
        assert!(enc.cycles() as usize >= circuit.depth());
    }
}

#[test]
fn benchmarks_round_trip_through_qasm() {
    for name in ["ghz_state_n23", "qft_n10", "adder_n10", "swap_test_n25", "wstate_n27"] {
        let original = ecmas_circuit::benchmarks::by_name(name).unwrap();
        let source = qasm::to_qasm(&original);
        let reparsed = qasm::parse(&source).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(reparsed.qubits(), original.qubits(), "{name}");
        assert_eq!(reparsed.cnot_gates(), original.cnot_gates(), "{name}");
        assert_eq!(reparsed.depth(), original.depth(), "{name}");
    }
}

#[test]
fn reparsed_circuit_compiles_to_identical_cycles() {
    let original = ecmas_circuit::benchmarks::ising_n10();
    let reparsed = qasm::parse(&qasm::to_qasm(&original)).unwrap();
    let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
    let a = Ecmas::default().compile(&original, &chip).unwrap();
    let b = Ecmas::default().compile(&reparsed, &chip).unwrap();
    assert_eq!(a.cycles(), b.cycles());
}

#[test]
fn parse_errors_carry_line_numbers() {
    let source = "OPENQASM 2.0;\nqreg q[2];\ncx q[0], q[7];\n";
    let err = qasm::parse(source).unwrap_err();
    assert_eq!(err.line(), 3);
}
