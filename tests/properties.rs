//! Property-based integration tests: random circuits through the full
//! pipeline, checking the invariants the paper's formulation demands.

use ecmas::{para_finding, validate_encoded, Ecmas};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{random, Circuit};
use proptest::prelude::*;

/// Random circuit as (qubits, gate list) with arbitrary dependency shape.
fn arb_circuit() -> impl Strategy<Value = Circuit> {
    (4usize..10, proptest::collection::vec((0usize..10, 0usize..10), 1..60)).prop_map(
        |(n, pairs)| {
            let mut c = Circuit::new(n);
            for (a, b) in pairs {
                let (a, b) = (a % n, b % n);
                if a != b {
                    c.cnot(a, b);
                }
            }
            c
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any random circuit compiles to a validator-clean schedule on both
    /// models, with Δ at least the depth lower bound.
    #[test]
    fn random_circuits_compile_valid(circuit in arb_circuit()) {
        for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
            let chip = Chip::min_viable(model, circuit.qubits(), 3).unwrap();
            let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
            prop_assert!(validate_encoded(&circuit, &enc).is_ok());
            prop_assert!(enc.cycles() as usize >= circuit.depth());
        }
    }

    /// Para-Finding layerings are always valid execution schemes with the
    /// averaging lower bound respected.
    #[test]
    fn para_finding_schemes_are_valid(circuit in arb_circuit()) {
        let dag = circuit.dag();
        let scheme = para_finding(&dag);
        prop_assert_eq!(scheme.depth(), dag.depth());
        // Every gate exactly once, parents strictly earlier.
        let mut layer_of = vec![usize::MAX; dag.len()];
        for (l, layer) in scheme.layers().iter().enumerate() {
            for &g in layer {
                prop_assert_eq!(layer_of[g], usize::MAX);
                layer_of[g] = l;
            }
        }
        for g in 0..dag.len() {
            prop_assert_ne!(layer_of[g], usize::MAX);
            for &p in dag.parents(g) {
                prop_assert!(layer_of[p] < layer_of[g]);
            }
        }
        if dag.depth() > 0 {
            prop_assert!(scheme.gpm() >= dag.len().div_ceil(dag.depth()));
        }
    }

    /// Lattice-surgery ReSu hits the α optimum on layered random circuits.
    #[test]
    fn ls_resu_optimal_on_layered_circuits(
        pm in 1usize..6,
        depth in 2usize..12,
        seed in 0u64..1000,
    ) {
        let circuit = random::layered(16, depth, pm, seed);
        let scheme = para_finding(&circuit.dag());
        let chip =
            Chip::sufficient(CodeModel::LatticeSurgery, 16, scheme.gpm(), 3).unwrap();
        let enc = Ecmas::default().compile_resu(&circuit, &chip).unwrap();
        prop_assert!(validate_encoded(&circuit, &enc).is_ok());
        prop_assert_eq!(enc.cycles() as usize, depth);
    }

    /// Widening every channel never makes Ecmas slower.
    #[test]
    fn more_bandwidth_never_hurts(
        pm in 1usize..7,
        seed in 0u64..500,
    ) {
        let circuit = random::layered(16, 8, pm, seed);
        let narrow = Chip::min_viable(CodeModel::LatticeSurgery, 16, 3).unwrap();
        let wide = Chip::four_x(CodeModel::LatticeSurgery, 16, 3).unwrap();
        let slow = Ecmas::default().compile(&circuit, &narrow).unwrap().cycles();
        let fast = Ecmas::default().compile(&circuit, &wide).unwrap().cycles();
        prop_assert!(fast <= slow, "wide {fast} > narrow {slow}");
    }
}
