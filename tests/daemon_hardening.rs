//! Stdin-hardening tests for the `ecmasd` protocol layer: a seeded
//! corpus of malformed input — binary garbage, truncated JSON, wrong
//! types, unknown ops, oversized lines — must always produce a
//! structured `error` response (never a panic, never silence), and the
//! daemon must keep serving real work afterwards and drain cleanly.

use ecmas::serve::daemon::{ChipKind, Daemon, DaemonOptions, MAX_LINE_BYTES};
use ecmas::serve::json::{self, Value};
use ecmas::ServiceConfig;
use ecmas_chip::CodeModel;
use ecmas_faults::splitmix64;

fn daemon() -> Daemon {
    Daemon::new(DaemonOptions {
        model: CodeModel::LatticeSurgery,
        chip: ChipKind::Min,
        service: ServiceConfig { workers: 2, queue_capacity: 64, ..ServiceConfig::default() },
    })
}

fn parse(line: &str) -> Value {
    json::parse(line).unwrap_or_else(|e| panic!("daemon emitted invalid JSON ({e}): {line}"))
}

/// Seeded generator of hostile input lines. Families are chosen by the
/// hash so the corpus is reproducible from the seed alone.
fn garbage_line(seed: u64, i: u64) -> String {
    let h = splitmix64(seed ^ (i.wrapping_mul(0x9e37_79b9_7f4a_7c15)));
    match h % 12 {
        // Raw non-JSON noise, including control characters.
        0 => format!("\u{1}\u{2}garbage-{h:x}\u{7f}"),
        // Truncated object.
        1 => format!("{{\"op\":\"submit\",\"random\":{{\"qubits\":{}", h % 64),
        // Unknown op.
        2 => format!("{{\"op\":\"frobnicate\",\"id\":{}}}", h % 1000),
        // op with the wrong type.
        3 => format!("{{\"op\":{}}}", h % 1000),
        // Wrong-typed fields on a real op.
        4 => "{\"op\":\"submit\",\"random\":{\"qubits\":\"ten\",\"depth\":[]}}".to_string(),
        5 => "{\"op\":\"status\",\"job\":\"first\"}".to_string(),
        6 => "{\"op\":\"result\",\"job\":-3}".to_string(),
        // Valid JSON, not an object.
        7 => format!("[{}, {}]", h % 10, h % 7),
        8 => format!("{}", h),
        9 => "\"just a string\"".to_string(),
        // Nonsense values for real submit knobs.
        10 => format!(
            "{{\"op\":\"submit\",\"random\":{{\"qubits\":{},\"depth\":0,\"seed\":{}}}}}",
            h % 3, // below any viable size
            h % 97
        ),
        // Deeply dubious defect spec.
        _ => "{\"op\":\"submit\",\"random\":{\"qubits\":8,\"depth\":4,\"seed\":1},\"defects\":\"x;y;;,\"}".to_string(),
    }
}

/// 120 seeded hostile lines: each gets exactly one structured `error`
/// response, and after the whole barrage the daemon still compiles a
/// real job and drains with the right accounting.
#[test]
fn malformed_corpus_gets_structured_errors_and_daemon_survives() {
    let mut d = daemon();
    for i in 0..120 {
        let line = garbage_line(0xBAD_F00D, i);
        let responses = d.handle_line(&line);
        assert_eq!(responses.len(), 1, "one error per bad line: {line:?} -> {responses:?}");
        let response = parse(&responses[0]);
        assert_eq!(
            response.get("op").and_then(Value::as_str),
            Some("error"),
            "hostile input must yield op=error: {line:?} -> {responses:?}"
        );
        assert!(
            response.get("error").and_then(Value::as_str).is_some(),
            "the error payload is a string: {responses:?}"
        );
    }

    // The daemon is still alive and correct.
    let submit = d
        .handle_line(r#"{"op":"submit","random":{"qubits":8,"depth":6,"parallelism":2,"seed":3}}"#);
    assert_eq!(parse(&submit[0]).get("op").and_then(Value::as_str), Some("submitted"));
    let drained = d.drain();
    let summary = parse(drained.last().expect("drain emits a summary"));
    assert_eq!(summary.get("op").and_then(Value::as_str), Some("drained"));
    assert_eq!(summary.get("done").and_then(Value::as_u64), Some(1));
}

/// Oversized input is refused by byte length before any parsing: a line
/// one byte over the cap gets a structured error, one exactly at the cap
/// is parsed normally (and then rejected as garbage JSON, proving it got
/// through to the parser).
#[test]
fn oversized_lines_are_refused_at_the_cap() {
    let mut d = daemon();
    let over = "x".repeat(MAX_LINE_BYTES + 1);
    let responses = d.handle_line(&over);
    assert_eq!(responses.len(), 1);
    let response = parse(&responses[0]);
    assert_eq!(response.get("op").and_then(Value::as_str), Some("error"));
    let message = response.get("error").and_then(Value::as_str).unwrap();
    assert!(message.contains("exceeds"), "names the cap: {message}");

    let at_cap = "y".repeat(MAX_LINE_BYTES);
    let responses = d.handle_line(&at_cap);
    let response = parse(&responses[0]);
    assert_eq!(response.get("op").and_then(Value::as_str), Some("error"));
    let message = response.get("error").and_then(Value::as_str).unwrap();
    assert!(!message.contains("exceeds"), "a line at the cap reaches the JSON parser: {message}");

    // And the daemon still works.
    let submit = d
        .handle_line(r#"{"op":"submit","random":{"qubits":8,"depth":6,"parallelism":2,"seed":3}}"#);
    assert_eq!(parse(&submit[0]).get("op").and_then(Value::as_str), Some("submitted"));
    d.drain();
}
