//! Integration tests for the `ecmas-serve` service layer: worker-count
//! determinism, cooperative cancellation, structured deadline errors,
//! backpressure, panic containment, and the property that service
//! results are bit-identical to driving the compiler directly.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ecmas::{
    compile_batch_with_threads, validate_encoded, Backpressure, CompileError, CompileOutcome,
    CompileRequest, CompileService, Compiler, Ecmas, JobError, JobStatus, ScheduleMode,
    ServiceConfig,
};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::random::{self, StressSpec, StressWorkload};
use ecmas_circuit::{benchmarks, Circuit};
use proptest::prelude::*;

fn service(workers: usize) -> CompileService {
    CompileService::new(ServiceConfig { workers, ..ServiceConfig::default() })
}

/// A compiler whose `compile_outcome` blocks on a gate until released —
/// the deterministic way to keep a worker busy while the queue fills.
struct GatedCompiler {
    released: Mutex<bool>,
    releases: Condvar,
    entered: AtomicUsize,
    inner: Ecmas,
}

impl GatedCompiler {
    fn new() -> Arc<Self> {
        Arc::new(GatedCompiler {
            released: Mutex::new(false),
            releases: Condvar::new(),
            entered: AtomicUsize::new(0),
            inner: Ecmas::default(),
        })
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.releases.notify_all();
    }
}

impl Compiler for GatedCompiler {
    fn name(&self) -> &'static str {
        "gated"
    }

    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut released = self.released.lock().unwrap();
        while !*released {
            released = self.releases.wait(released).unwrap();
        }
        drop(released);
        self.inner.compile_outcome(circuit, chip)
    }
}

/// A deterministic mixed workload: the service must produce bit-identical
/// schedules whether the pool has 1, 4, or 8 workers — and identical to
/// driving the compiler directly.
#[test]
fn results_are_deterministic_under_1_4_8_workers() {
    let workload = StressWorkload::new(&StressSpec {
        jobs: 12,
        max_depth: 60,
        ..StressSpec::new(12, 16, 0xD15C)
    });
    let circuits: Vec<Circuit> = (0..workload.len()).map(|i| workload.circuit(i)).collect();
    let chips: Vec<Chip> = circuits
        .iter()
        .map(|c| Chip::min_viable(CodeModel::LatticeSurgery, c.qubits(), 3).unwrap())
        .collect();

    let run = |workers: usize| -> Vec<CompileOutcome> {
        let service = service(workers);
        let handles: Vec<_> = circuits
            .iter()
            .zip(&chips)
            .map(|(circuit, chip)| {
                service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap()
            })
            .collect();
        handles.into_iter().map(|h| h.wait().unwrap()).collect()
    };

    let single = run(1);
    for (circuit, outcome) in circuits.iter().zip(&single) {
        validate_encoded(circuit, &outcome.encoded).unwrap();
    }
    for workers in [4usize, 8] {
        let multi = run(workers);
        for ((circuit, seq), par) in circuits.iter().zip(&single).zip(multi) {
            assert_eq!(
                par.encoded.events(),
                seq.encoded.events(),
                "{}: {workers}-worker events differ from 1-worker",
                circuit.name()
            );
            assert_eq!(par.encoded.mapping(), seq.encoded.mapping());
            assert_eq!(par.report.cycles, seq.report.cycles);
        }
    }
    // And the 1-worker service equals the direct compiler call.
    for ((circuit, chip), outcome) in circuits.iter().zip(&chips).zip(&single) {
        let direct = Ecmas::default().compile_auto(circuit, chip).unwrap();
        assert_eq!(outcome.encoded.events(), direct.encoded.events());
        assert_eq!(outcome.report.cycles, direct.report.cycles);
    }
}

/// Cancelling queued jobs must actually stop them: with one worker parked
/// inside a gated compile, the queued jobs behind it are cancelled and
/// must never enter the compiler.
#[test]
fn cancellation_stops_queued_jobs() {
    let gate = GatedCompiler::new();
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3).unwrap();
    let submit = || {
        service
            .submit(
                CompileRequest::new(benchmarks::ghz(9), chip.clone())
                    .with_compiler(gate.clone() as Arc<dyn Compiler + Send + Sync>),
            )
            .unwrap()
    };
    let running = submit();
    let queued: Vec<_> = (0..3).map(|_| submit()).collect();
    for handle in &queued {
        assert!(handle.cancel(), "job had not finished, so the cancel counts");
        assert!(handle.is_cancelled());
    }
    gate.release();
    let outcome = running.wait().unwrap();
    validate_encoded(&benchmarks::ghz(9), &outcome.encoded).unwrap();
    for handle in queued {
        assert_eq!(handle.wait().unwrap_err(), JobError::Cancelled);
    }
    assert_eq!(
        gate.entered.load(Ordering::SeqCst),
        1,
        "cancelled queued jobs must never enter the compiler"
    );
}

/// A job whose deadline lapses while queued reports the structured
/// timeout error — promptly, even though the only worker is still busy —
/// and never runs.
#[test]
fn expired_deadline_reports_structured_timeout_instead_of_hanging() {
    let gate = GatedCompiler::new();
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 16,
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
    let blocker = service
        .submit(
            CompileRequest::new(benchmarks::qft_n10(), chip.clone())
                .with_compiler(gate.clone() as Arc<dyn Compiler + Send + Sync>),
        )
        .unwrap();
    let doomed = service
        .submit(
            CompileRequest::new(benchmarks::qft_n10(), chip.clone()).with_deadline(Duration::ZERO),
        )
        .unwrap();
    // The worker is parked in the gate; the wait must still return.
    let err = doomed.wait().unwrap_err();
    assert_eq!(err, JobError::DeadlineExceeded { budget: Duration::ZERO });
    gate.release();
    blocker.wait().unwrap();
    assert_eq!(gate.entered.load(Ordering::SeqCst), 1, "the expired job never ran");
}

/// Reject-mode backpressure hands the request back intact; once the queue
/// drains the same request is accepted.
#[test]
fn reject_backpressure_returns_the_request_for_retry() {
    let gate = GatedCompiler::new();
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        backpressure: Backpressure::Reject,
        ..ServiceConfig::default()
    });
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3).unwrap();
    let gated_request = || {
        CompileRequest::new(benchmarks::ghz(9), chip.clone())
            .with_compiler(gate.clone() as Arc<dyn Compiler + Send + Sync>)
    };
    let running = service.submit(gated_request()).unwrap();
    // Wait until the worker has actually picked the first job up, so the
    // single queue slot is free and its occupancy is deterministic.
    while gate.entered.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    let queued = service.submit(gated_request()).unwrap();
    let rejected = service.submit(gated_request());
    let request = match rejected {
        Err(ecmas::SubmitError::Saturated(request)) => *request,
        other => panic!("a full queue under Reject must refuse the job: {other:?}"),
    };
    assert_eq!(request.circuit().qubits(), 9, "the request comes back intact");
    gate.release();
    running.wait().unwrap();
    queued.wait().unwrap();
    let retried = service.submit(request).unwrap();
    retried.wait().unwrap();
}

/// Reject-mode backpressure under a concurrent thundering herd: with the
/// single worker parked and the queue empty at capacity 4, exactly 4 of
/// 8 simultaneous submitters are admitted and exactly 4 are handed their
/// requests back — no lost jobs, no double-admits, and every admitted
/// job completes once the gate opens.
#[test]
fn reject_backpressure_is_exact_under_concurrent_submitters() {
    let gate = GatedCompiler::new();
    const CAPACITY: usize = 4;
    const SUBMITTERS: usize = 8;
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: CAPACITY,
        backpressure: Backpressure::Reject,
        ..ServiceConfig::default()
    });
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3).unwrap();
    let gated_request = || {
        CompileRequest::new(benchmarks::ghz(9), chip.clone())
            .with_compiler(gate.clone() as Arc<dyn Compiler + Send + Sync>)
    };
    let running = service.submit(gated_request()).unwrap();
    // Park the worker so queue occupancy is deterministic.
    while gate.entered.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }

    let barrier = std::sync::Barrier::new(SUBMITTERS);
    let (admitted, rejected): (Vec<_>, Vec<_>) = std::thread::scope(|scope| {
        let results: Vec<_> = (0..SUBMITTERS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    service.submit(gated_request())
                })
            })
            .collect();
        results.into_iter().map(|t| t.join().unwrap()).partition(Result::is_ok)
    });
    assert_eq!(admitted.len(), CAPACITY, "exactly the queue capacity is admitted");
    assert_eq!(rejected.len(), SUBMITTERS - CAPACITY);
    for result in &rejected {
        match result {
            Err(ecmas::SubmitError::Saturated(request)) => {
                assert_eq!(request.circuit().qubits(), 9, "requests come back intact");
            }
            other => panic!("concurrent overflow must be Saturated: {other:?}"),
        }
    }

    gate.release();
    running.wait().unwrap();
    for handle in admitted {
        handle.unwrap().wait().unwrap();
    }
}

/// A panicking compile is contained: the job reports `Panicked`, the
/// worker survives, and the next job on the same worker completes.
#[test]
fn panics_are_contained_and_the_worker_survives() {
    struct Bomb;
    impl Compiler for Bomb {
        fn name(&self) -> &'static str {
            "bomb"
        }
        fn compile_outcome(
            &self,
            _circuit: &Circuit,
            _chip: &Chip,
        ) -> Result<CompileOutcome, CompileError> {
            panic!("boom");
        }
    }
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3).unwrap();
    let bombed = service
        .submit(CompileRequest::new(benchmarks::ghz(9), chip.clone()).with_compiler(Arc::new(Bomb)))
        .unwrap();
    let healthy = service.submit(CompileRequest::new(benchmarks::ghz(9), chip)).unwrap();
    match bombed.wait().unwrap_err() {
        JobError::Panicked { message } => assert!(message.contains("boom")),
        other => panic!("expected Panicked, got {other:?}"),
    }
    healthy.wait().unwrap();
}

/// `ScheduleMode` is honored: ReSu through the service equals
/// `compile_resu` directly, and a compile error surfaces as
/// `JobError::Compile`.
#[test]
fn schedule_modes_and_compile_errors_round_trip() {
    let circuit = benchmarks::dnn_n8();
    let scheme = ecmas::para_finding(&circuit.dag());
    let chip = Chip::sufficient(CodeModel::LatticeSurgery, 8, scheme.gpm(), 3).unwrap();
    let service = service(2);
    let outcome = service
        .submit(CompileRequest::new(circuit.clone(), chip.clone()).with_mode(ScheduleMode::ReSu))
        .unwrap()
        .wait()
        .unwrap();
    let direct = Ecmas::default().compile_resu(&circuit, &chip).unwrap();
    assert_eq!(outcome.encoded.events(), direct.events());
    assert_eq!(outcome.encoded.cycles(), direct.cycles());

    let tiny = Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3).unwrap();
    let err = service
        .submit(CompileRequest::new(benchmarks::qft_n10(), tiny))
        .unwrap()
        .wait()
        .unwrap_err();
    assert_eq!(err, JobError::Compile(CompileError::TooManyQubits { qubits: 10, slots: 4 }));
}

/// Status transitions are observable through the handle.
#[test]
fn job_status_progresses_to_finished() {
    let gate = GatedCompiler::new();
    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        backpressure: Backpressure::Block,
        ..ServiceConfig::default()
    });
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3).unwrap();
    let first = service
        .submit(
            CompileRequest::new(benchmarks::ghz(9), chip.clone())
                .with_compiler(gate.clone() as Arc<dyn Compiler + Send + Sync>),
        )
        .unwrap();
    let second = service.submit(CompileRequest::new(benchmarks::ghz(9), chip)).unwrap();
    while gate.entered.load(Ordering::SeqCst) == 0 {
        std::thread::yield_now();
    }
    assert_eq!(first.status(), JobStatus::Running);
    assert_eq!(second.status(), JobStatus::Queued);
    gate.release();
    first.wait().unwrap();
    second.wait().unwrap();
}

/// The batch facade surfaces per-circuit errors in order (moved from the
/// core session tests when `compile_batch` became a service facade).
#[test]
fn batch_surfaces_per_circuit_errors_in_order() {
    let mut circuits = vec![benchmarks::ghz(4), benchmarks::qft_n10(), benchmarks::ghz(4)];
    let chip = Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3).unwrap();
    let results = compile_batch_with_threads(&Ecmas::default(), &circuits, &chip, 2);
    assert!(results[0].is_ok());
    assert!(matches!(results[1], Err(CompileError::TooManyQubits { qubits: 10, slots: 4 })));
    assert!(results[2].is_ok());
    // And the trivial empty batch.
    circuits.clear();
    assert!(ecmas::compile_batch(&Ecmas::default(), &circuits, &chip).is_empty());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: for random circuits, chips, and pool sizes, the service
    /// result is bit-identical to `Compiler::compile_outcome` (and the
    /// report carries the same deterministic counters).
    #[test]
    fn service_results_equal_direct_compilation(
        seed in 0u64..500,
        pm in 1usize..5,
        workers in 1usize..5,
        model_pick in 0u8..2,
    ) {
        let circuit = random::layered(12, 8, pm, seed);
        let model =
            if model_pick == 0 { CodeModel::DoubleDefect } else { CodeModel::LatticeSurgery };
        let chip = Chip::min_viable(model, 12, 3).unwrap();
        let service = service(workers);
        let outcome = service
            .submit(CompileRequest::new(circuit.clone(), chip.clone()))
            .unwrap()
            .wait()
            .unwrap();
        let direct = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
        prop_assert_eq!(outcome.encoded.events(), direct.encoded.events());
        prop_assert_eq!(outcome.encoded.mapping(), direct.encoded.mapping());
        prop_assert_eq!(outcome.encoded.initial_cuts(), direct.encoded.initial_cuts());
        prop_assert_eq!(outcome.report.cycles, direct.report.cycles);
        prop_assert_eq!(outcome.report.router, direct.report.router);
        prop_assert_eq!(outcome.report.algorithm, direct.report.algorithm);
    }
}
