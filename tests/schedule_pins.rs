//! Schedule-identity pins: fingerprints of complete event schedules on
//! fixed workloads, captured under the PR 3 heap-based A* router.
//!
//! The bucket-queue router and the reachability cache (PR 5) must leave
//! every schedule bit-identical — same events, same paths, same cycle
//! counts. These tests hash the full event stream (gate ids, start
//! cycles, event kinds, and every path cell) so any deviation in routing
//! order, tie-breaking, or search outcome shows up as a fingerprint
//! mismatch, not just a cycle-count drift.

use ecmas::session::Compiler;
use ecmas::stable::fingerprint_encoded as fingerprint;
use ecmas::{Ecmas, EcmasConfig};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{benchmarks, random};

fn compile_fingerprint(circuit: &ecmas_circuit::Circuit, chip: &Chip) -> (u64, u64) {
    let outcome = Ecmas::new(EcmasConfig::default()).compile_outcome(circuit, chip).unwrap();
    (outcome.report.cycles, fingerprint(&outcome.encoded))
}

/// The fig12 bottom-panel workload (49 qubits, depth 50, ĝPM 11) on the
/// bandwidth-1 chip — the compile-time acceptance series of PR 3.
#[test]
fn fig12_schedule_is_pinned() {
    let circuit = random::layered(49, 50, 11, 0xF16);
    let chip = Chip::uniform(CodeModel::DoubleDefect, 7, 7, 1, 3).unwrap();
    let (cycles, hash) = compile_fingerprint(&circuit, &chip);
    assert_eq!((cycles, hash), (FIG12_PIN.0, FIG12_PIN.1), "fig12 schedule drifted");
}

/// The saturating congested workload (qft_n50 on `Chip::congested`) —
/// the Table II/IV discriminator row and the failed-search worst case
/// the reachability cache targets.
#[test]
fn qft_n50_congested_schedule_is_pinned() {
    let circuit = benchmarks::qft_n50();
    let chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
    let (cycles, hash) = compile_fingerprint(&circuit, &chip);
    assert_eq!((cycles, hash), (QFT50_PIN.0, QFT50_PIN.1), "congested qft_n50 drifted");
}

/// A Table I row (qft_n10, double defect, min viable) — the limited
/// scheduler's same-cut decision path with modifications.
#[test]
fn table1_qft_n10_schedule_is_pinned() {
    let circuit = benchmarks::qft_n10();
    let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
    let (cycles, hash) = compile_fingerprint(&circuit, &chip);
    assert_eq!((cycles, hash), (QFT10_PIN.0, QFT10_PIN.1), "qft_n10 schedule drifted");
}

/// A ReSu path pin (sufficient resources, distance-ordered layer
/// batches).
#[test]
fn resu_dnn_n8_schedule_is_pinned() {
    let circuit = benchmarks::dnn_n8();
    let scheme = ecmas::para_finding(&circuit.dag());
    let chip =
        Chip::sufficient(CodeModel::LatticeSurgery, circuit.qubits(), scheme.gpm(), 3).unwrap();
    let outcome = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
    let (cycles, hash) = (outcome.report.cycles, fingerprint(&outcome.encoded));
    assert_eq!((cycles, hash), (DNN8_PIN.0, DNN8_PIN.1), "ReSu dnn_n8 schedule drifted");
}

// Pinned (cycles, event-stream FNV-1a) captured under the PR 3 router
// before the bucket-queue rework landed. There is deliberately no
// print-fresh-values escape hatch: a drift must be a conscious re-pin
// with its reason recorded in EXPERIMENTS.md, exactly like the
// Tables I/III/V re-pin of PR 4.
const FIG12_PIN: (u64, u64) = (96, 2_927_398_374_242_846_396);
const QFT50_PIN: (u64, u64) = (218, 2_382_745_220_330_678_997);
const QFT10_PIN: (u64, u64) = (67, 3_604_089_234_610_369_876);
const DNN8_PIN: (u64, u64) = (48, 12_553_267_209_557_189_557);
