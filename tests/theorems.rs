//! Empirical checks of the paper's structural results: Theorem 2 (Chip
//! Communication Capacity), Lemma 1 (two-layer bipartiteness) and
//! Theorem 3 (Ecmas-ReSu's 5/2-approximation) on randomized instances.

use ecmas::para_finding;
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{random, Circuit};
use ecmas_partition::ParityDsu;
use ecmas_route::{Disjointness, Router};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{rngs::SmallRng, SeedableRng};

/// Routes `pairs` simultaneously at cycle 0, trying a few random orders
/// (the theorem guarantees existence; greedy order-sensitivity is ours).
fn routes_simultaneously(
    chip: &Chip,
    mapped: &[usize],
    pairs: &[(usize, usize)],
    seed: u64,
) -> bool {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    'attempt: for _ in 0..6 {
        let mut router = Router::new(chip.grid(), Disjointness::Node);
        for &slot in mapped {
            router.block_tile(slot);
        }
        for &k in &order {
            let (a, b) = pairs[k];
            if router.route_tiles(a, b, 0, 1).is_none() {
                order.shuffle(&mut rng);
                continue 'attempt;
            }
        }
        return true;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 2: on a bandwidth-b chip, any ⌊(b−1)/2⌋+3 independent CNOTs
    /// with arbitrary operand placement admit simultaneous disjoint paths.
    #[test]
    fn theorem2_capacity_is_routable(
        bandwidth in 1u32..4,
        seed in 0u64..500,
    ) {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 4, 4, bandwidth, 3).unwrap();
        let capacity = chip.communication_capacity();
        let mut rng = SmallRng::seed_from_u64(seed);
        // Random placement of 2·capacity distinct operand tiles.
        let mut slots: Vec<usize> = (0..16).collect();
        slots.shuffle(&mut rng);
        let operands = &slots[..2 * capacity];
        let pairs: Vec<(usize, usize)> =
            operands.chunks(2).map(|c| (c[0], c[1])).collect();
        prop_assert!(
            routes_simultaneously(&chip, operands, &pairs, seed),
            "capacity {capacity} gates must route at bandwidth {bandwidth}"
        );
    }

    /// Lemma 1: the communication subgraph of any two adjacent layers of a
    /// Para-Finding scheme is bipartite.
    #[test]
    fn lemma1_two_layers_are_bipartite(
        n in 4usize..12,
        gates in proptest::collection::vec((0usize..12, 0usize..12), 4..60),
    ) {
        let mut circuit = Circuit::new(n);
        for (a, b) in gates {
            let (a, b) = (a % n, b % n);
            if a != b {
                circuit.cnot(a, b);
            }
        }
        let dag = circuit.dag();
        let scheme = para_finding(&dag);
        for window in scheme.layers().windows(2) {
            let mut dsu = ParityDsu::new(n);
            for layer in window {
                for &g in layer {
                    let gate = dag.gate(g);
                    prop_assert!(
                        dsu.union_different(gate.control, gate.target),
                        "two adjacent layers must 2-color"
                    );
                }
            }
        }
    }

    /// Theorem 3: double-defect ReSu stays within the 5/2 bound on layered
    /// random circuits (plus the initial-remap slack).
    #[test]
    fn theorem3_resu_bound_on_random_circuits(
        pm in 1usize..5,
        depth in 2usize..10,
        seed in 0u64..300,
    ) {
        let circuit = random::layered(12, depth, pm, seed);
        let scheme = para_finding(&circuit.dag());
        let chip =
            Chip::sufficient(CodeModel::DoubleDefect, 12, scheme.gpm(), 3).unwrap();
        let enc = ecmas::Ecmas::default().compile_resu(&circuit, &chip).unwrap();
        ecmas::validate_encoded(&circuit, &enc).unwrap();
        let bound = (5 * depth).div_ceil(2) + 3;
        prop_assert!(
            enc.cycles() as usize <= bound,
            "ReSu {} exceeds 5/2 bound {bound}",
            enc.cycles()
        );
    }
}
