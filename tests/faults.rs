//! Chaos-harness integration tests for the fault-tolerant service layer:
//! a seeded stress mix with injected faults must drain with every job
//! terminal and every successfully-retried result bit-identical to its
//! fault-free compile; panicked workers must be respawned; load shedding
//! must refuse over-budget submissions with a retry hint and recover;
//! drain must finish in-flight work while refusing new submissions; and
//! a coalescing follower whose leader dies (panic, cancel, deadline)
//! must always reach a terminal answer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ecmas::{
    fingerprint_encoded, CompileError, CompileOutcome, CompileRequest, CompileService, Compiler,
    Ecmas, FaultConfig, JobError, RetryConfig, ServiceConfig, SubmitError,
};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::random::{StressSpec, StressWorkload};
use ecmas_circuit::{benchmarks, Circuit};
use ecmas_faults::{Fault, FaultPlan, FaultSite};

/// Removes `,"<key>":{...}` from a flat-ish JSON object string (same
/// helper as `tests/cache.rs`): drops the run-dependent report fields
/// before byte-for-byte comparison.
fn strip_object(json: &str, key: &str) -> String {
    let pattern = format!(",\"{key}\":{{");
    let start = json.find(&pattern).unwrap_or_else(|| panic!("report has no {key:?}: {json}"));
    let mut depth = 0usize;
    for (offset, b) in json[start + pattern.len() - 1..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    let end = start + pattern.len() - 1 + offset;
                    return format!("{}{}", &json[..start], &json[end + 1..]);
                }
            }
            _ => {}
        }
    }
    panic!("unterminated {key:?} object in {json}");
}

/// A report with wall-clock timings, cache provenance, and retry
/// provenance removed: everything left (cycles, events, ĝPM, router
/// counters…) must be identical between a fault-healed compile and a
/// fault-free one.
fn canonical(outcome: &CompileOutcome) -> String {
    let mut report = outcome.report.clone();
    report.attempts = 1;
    report.last_fault = None;
    strip_object(&strip_object(&report.to_json(), "timings_ms"), "cache")
}

fn lattice_chip(circuit: &Circuit) -> Chip {
    Chip::min_viable(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap()
}

/// The chaos acceptance experiment at test scale: a seeded stress mix
/// compiled under 10% injected faults (spurious stage errors, panics,
/// latency, poisoned cache entries) must leave every job terminal —
/// faults heal through retries, never hang, never lose a job — and every
/// retried success must be bit-identical to driving the compiler
/// directly with no fault plan at all.
#[test]
fn chaos_stress_drains_cleanly_and_retried_results_are_bit_identical() {
    let workload = StressWorkload::new(&StressSpec {
        jobs: 32,
        max_depth: 60,
        ..StressSpec::new(32, 12, 0xC0FFEE)
    });
    let circuits: Vec<Circuit> = (0..workload.len()).map(|i| workload.circuit(i)).collect();
    let chips: Vec<Chip> = circuits.iter().map(lattice_chip).collect();

    let service = CompileService::new(ServiceConfig {
        workers: 4,
        cache_bytes: 16 * 1024 * 1024,
        faults: Some(FaultConfig::chaos(10, 0xFA17)),
        ..ServiceConfig::default()
    });
    let handles: Vec<_> = circuits
        .iter()
        .zip(&chips)
        .map(|(c, chip)| service.submit(CompileRequest::new(c.clone(), chip.clone())).unwrap())
        .collect();

    let mut healed = Vec::new();
    let mut exhausted = 0usize;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(outcome) => {
                if outcome.report.attempts > 1 {
                    assert!(
                        outcome.report.last_fault.is_some(),
                        "a retried success must carry fault provenance"
                    );
                    healed.push((i, outcome));
                }
            }
            // A job whose every attempt drew a fault surfaces the
            // transient error once retries are exhausted — terminal, not
            // lost, not hung.
            Err(JobError::Faulted { .. } | JobError::Panicked { .. }) => exhausted += 1,
            Err(other) => panic!("job {i}: unexpected terminal error {other:?}"),
        }
    }

    let faults = service.fault_stats().expect("fault plan is armed");
    assert!(faults.total() > 0, "a 10% plan over 32 jobs must fire");
    assert!(!healed.is_empty(), "some jobs must heal through retries (seed-dependent)");
    assert!(service.retry_stats().spent > 0, "healing consumes retry budget");
    // `exhausted` jobs are acceptable (their every attempt drew a fault)
    // but they must stay rare at a 10% rate with 3 attempts.
    assert!(exhausted <= 2, "{exhausted} jobs exhausted retries at a 10% fault rate");

    // Bit-identity: each healed job equals the direct, fault-free compile.
    let direct = Ecmas::default();
    for (i, outcome) in &healed {
        let reference = direct.compile_auto(&circuits[*i], &chips[*i]).unwrap();
        assert_eq!(
            canonical(outcome),
            canonical(&reference),
            "job {i}: fault-healed report differs from fault-free compile"
        );
        assert_eq!(
            fingerprint_encoded(&outcome.encoded),
            fingerprint_encoded(&reference.encoded),
            "job {i}: fault-healed schedule differs from fault-free compile"
        );
    }
}

/// With no fault plan the provenance fields are inert: one attempt, no
/// fault, no counters — and the serialized report says so explicitly so
/// downstream consumers can rely on the schema.
#[test]
fn faults_off_reports_single_attempt_and_no_provenance() {
    let service = CompileService::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });
    let circuit = benchmarks::ghz(6);
    let chip = lattice_chip(&circuit);
    let outcome = service.submit(CompileRequest::new(circuit, chip)).unwrap().wait().unwrap();
    assert_eq!(outcome.report.attempts, 1);
    assert_eq!(outcome.report.last_fault, None);
    assert!(outcome.report.to_json().contains("\"attempts\":1,\"last_fault\":null"));
    assert_eq!(service.fault_stats(), None);
    assert_eq!(service.retry_stats().spent, 0);
}

/// Worker supervision: injected pickup panics kill worker threads, the
/// supervisor respawns every one of them, the killed worker's job is
/// requeued (never lost), and the pool ends at full strength.
#[test]
fn pickup_panics_respawn_workers_and_requeue_jobs() {
    const JOBS: u64 = 10;
    // Find a seed whose plan schedules at least one worker-pickup kill
    // within the deliveries the service will actually attempt. The
    // decision function is pure, so the search is deterministic.
    let seed = (0u64..500)
        .find(|&seed| {
            let plan = FaultPlan::new(FaultConfig::chaos(40, seed));
            (1..=JOBS).any(|job| {
                (0..3).any(|delivery| {
                    matches!(
                        plan.decide(FaultSite::WorkerPickup { job, delivery }),
                        Some(Fault::Panic)
                    )
                })
            })
        })
        .expect("a 40% plan schedules a pickup kill in 500 seeds");

    let service = CompileService::new(ServiceConfig {
        workers: 2,
        faults: Some(FaultConfig::chaos(40, seed)),
        ..ServiceConfig::default()
    });
    let circuit = benchmarks::ghz(6);
    let chip = lattice_chip(&circuit);
    let handles: Vec<_> = (0..JOBS)
        .map(|_| service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap())
        .collect();
    for handle in handles {
        match handle.wait() {
            Ok(_) | Err(JobError::Faulted { .. } | JobError::Panicked { .. }) => {}
            Err(other) => panic!("unexpected terminal error {other:?}"),
        }
    }

    let sup = service.supervisor_stats();
    assert!(sup.panics > 0, "seed {seed} schedules at least one pickup kill");
    assert_eq!(sup.panics, sup.respawns, "every dead worker is replaced");
    assert_eq!(sup.spawned, 2 + sup.respawns);
    assert_eq!(sup.requeued, sup.panics, "a dying worker hands its job back");
    assert_eq!(service.workers(), 2, "pool capacity never degrades");

    // The pool still serves after the carnage.
    let after = service.submit(CompileRequest::new(circuit, chip)).unwrap();
    match after.wait() {
        Ok(_) | Err(JobError::Faulted { .. } | JobError::Panicked { .. }) => {}
        Err(other) => panic!("post-respawn job failed oddly: {other:?}"),
    }
}

/// The full chaos acceptance experiment from the issue: the 1000-job
/// congested stress mix driven through the `ecmasd` protocol layer with
/// 10% injected faults must drain with a terminal answer for every job —
/// zero lost jobs, zero stuck followers. Ignored by default (it is a
/// many-minute run); `cargo test --release -- --ignored chaos_acceptance`
/// runs it on demand.
#[test]
#[ignore = "full-scale acceptance run (minutes); run with --release -- --ignored"]
fn chaos_acceptance_1000_jobs_congested_10_percent_faults() {
    use ecmas::serve::daemon::{stress_stream, ChipKind, Daemon, DaemonOptions};
    use ecmas::serve::json::{self, Value};

    let spec = StressSpec { dup_percent: 50, ..StressSpec::new(1000, 25, 7) };
    let mut daemon = Daemon::new(DaemonOptions {
        model: CodeModel::LatticeSurgery,
        chip: ChipKind::Congested,
        service: ServiceConfig {
            workers: 4,
            queue_capacity: 64,
            cache_bytes: 64 * 1024 * 1024,
            faults: Some(FaultConfig::chaos(10, 0xACCE97)),
            ..ServiceConfig::default()
        },
    });
    let mut responses = Vec::new();
    for line in stress_stream(&spec, None, None).lines() {
        responses.extend(daemon.handle_line(line));
    }
    responses.extend(daemon.drain());
    let summary = json::parse(responses.last().unwrap()).unwrap();
    assert_eq!(summary.get("op").and_then(Value::as_str), Some("drained"));
    assert_eq!(summary.get("jobs").and_then(Value::as_u64), Some(1000), "zero lost jobs");
    let done = summary.get("done").and_then(Value::as_u64).unwrap();
    let failed = summary.get("failed").and_then(Value::as_u64).unwrap();
    assert_eq!(done + failed, 1000, "every job reached a terminal answer");
    assert!(done >= 990, "retries heal nearly every injected fault: {done}/1000");
}

/// A compiler whose `compile_outcome` blocks on a gate until released —
/// the deterministic way to keep a worker busy (mirrors `tests/serve.rs`).
struct GatedCompiler {
    released: Mutex<bool>,
    releases: Condvar,
    entered: AtomicUsize,
    inner: Ecmas,
}

impl GatedCompiler {
    fn new() -> Arc<Self> {
        Arc::new(GatedCompiler {
            released: Mutex::new(false),
            releases: Condvar::new(),
            entered: AtomicUsize::new(0),
            inner: Ecmas::default(),
        })
    }

    fn release(&self) {
        *self.released.lock().unwrap() = true;
        self.releases.notify_all();
    }

    fn wait_entered(&self, n: usize) {
        let deadline = Instant::now() + Duration::from_secs(10);
        while self.entered.load(Ordering::SeqCst) < n {
            assert!(Instant::now() < deadline, "worker never entered the gate");
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Compiler for GatedCompiler {
    fn name(&self) -> &'static str {
        "gated"
    }

    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        self.entered.fetch_add(1, Ordering::SeqCst);
        let mut released = self.released.lock().unwrap();
        while !*released {
            released = self.releases.wait(released).unwrap();
        }
        drop(released);
        self.inner.compile_outcome(circuit, chip)
    }
}

/// Admission control: with one job's worth of cost budget claimed by an
/// in-flight job, the next submission is shed with a typed `Overloaded`
/// carrying a backoff hint and the untouched request; once the in-flight
/// job settles, the same request is admitted again.
#[test]
fn load_shedding_sheds_over_budget_and_recovers() {
    let gate = GatedCompiler::new();
    let circuit = benchmarks::ghz(6);
    let chip = lattice_chip(&circuit);
    let request = || CompileRequest::new(circuit.clone(), chip.clone()).with_compiler(gate.clone());
    let cost = request().estimated_cost();
    assert!(cost > 0);

    let service = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        shed_cost_budget: cost, // exactly one job's worth
        ..ServiceConfig::default()
    });

    let first = service.submit(request()).unwrap();
    gate.wait_entered(1);
    assert_eq!(service.pending_cost(), cost);

    match service.submit(request()) {
        Err(SubmitError::Overloaded { request, retry_after_ms }) => {
            assert!(retry_after_ms > 0, "the hint scales with the backlog");
            assert_eq!(request.circuit().qubits(), 6, "the request comes back untouched");
        }
        other => panic!("an over-budget submit must shed: {other:?}"),
    }
    assert_eq!(service.shed_count(), 1);
    assert_eq!(service.pending_cost(), cost, "a shed submit leaves no cost claim behind");

    gate.release();
    first.wait().unwrap();
    // The claim is released when the job settles (just after the result
    // is published), so poll briefly.
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.pending_cost() > 0 {
        assert!(Instant::now() < deadline, "settling must release the cost claim");
        std::thread::sleep(Duration::from_millis(1));
    }
    service.submit(request()).unwrap().wait().unwrap();
}

/// Graceful drain: in-flight work runs to completion, new submissions are
/// refused with the typed `Draining` error, and `drain` returns only when
/// the service is empty.
#[test]
fn drain_finishes_inflight_and_refuses_new_submissions() {
    let gate = GatedCompiler::new();
    let circuit = benchmarks::ghz(6);
    let chip = lattice_chip(&circuit);
    let service = CompileService::new(ServiceConfig { workers: 1, ..ServiceConfig::default() });

    let inflight = service
        .submit(CompileRequest::new(circuit.clone(), chip.clone()).with_compiler(gate.clone()))
        .unwrap();
    gate.wait_entered(1);

    std::thread::scope(|scope| {
        let drainer = scope.spawn(|| service.drain());
        let deadline = Instant::now() + Duration::from_secs(10);
        while !service.is_draining() {
            assert!(Instant::now() < deadline, "drain must raise the flag");
            std::thread::sleep(Duration::from_millis(1));
        }
        match service.submit(CompileRequest::new(circuit.clone(), chip.clone())) {
            Err(SubmitError::Draining(_)) => {}
            other => panic!("a draining service must refuse new work: {other:?}"),
        }
        gate.release();
        drainer.join().unwrap();
    });

    inflight.wait().unwrap();
    assert_eq!(service.queued(), 0);
    assert!(service.is_draining());
}

/// Coalescing leader abandonment, deterministic variant: a seed-searched
/// fault plan panics the leader of a coalesced flight at its first stage
/// boundary (with retries disabled so it stays dead); the identical
/// second job — follower or freshly-elected leader, depending on timing —
/// must still reach a bit-identical successful result instead of polling
/// a dead flight forever.
#[test]
fn panicked_coalescing_leader_never_strands_the_second_job() {
    // Job ids are assigned 1, 2, … per service. Find a seed where job 1
    // panics at stage 0 on its first attempt while job 2 (all attempts,
    // all stages) and both jobs' worker pickups stay clean.
    let seed = (0u64..5000)
        .find(|&seed| {
            let plan = FaultPlan::new(FaultConfig::chaos(25, seed));
            let job1_dies = matches!(
                plan.decide(FaultSite::Stage { job: 1, attempt: 1, stage: 0 }),
                Some(Fault::Panic)
            );
            let job2_clean = (1..=3).all(|attempt| {
                (0..3).all(|stage| {
                    !matches!(
                        plan.decide(FaultSite::Stage { job: 2, attempt, stage }),
                        Some(Fault::Panic | Fault::SpuriousError)
                    )
                })
            });
            let pickups_clean = (1..=2).all(|job| {
                (0..3).all(|delivery| {
                    plan.decide(FaultSite::WorkerPickup { job, delivery }).is_none()
                })
            });
            job1_dies && job2_clean && pickups_clean
        })
        .expect("a 25% plan with this shape exists within 5000 seeds");

    let service = CompileService::new(ServiceConfig {
        workers: 2,
        cache_bytes: 8 * 1024 * 1024,
        faults: Some(FaultConfig::chaos(25, seed)),
        retry: RetryConfig { max_attempts: 1, ..RetryConfig::default() },
        ..ServiceConfig::default()
    });
    let circuit = benchmarks::qft_n10();
    let chip = lattice_chip(&circuit);

    let leader = service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap();
    let follower = service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap();

    match leader.wait() {
        Err(JobError::Panicked { message }) => {
            assert!(message.contains("injected fault"), "died to the injected panic: {message}")
        }
        other => panic!("job 1 must die to its injected stage panic: {other:?}"),
    }
    let outcome = follower.wait().expect("the second job must complete despite the dead leader");
    let reference = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
    assert_eq!(canonical(&outcome), canonical(&reference));
}

/// Coalescing leader abandonment, cancellation and deadline variants:
/// whatever happens to the first identical job — cancelled mid-compile,
/// or timed out at a stage boundary — the second must reach a terminal
/// successful answer. (Timing decides whether the second job ever
/// actually follows the doomed flight; either way it must never hang,
/// which is exactly the regression this guards.)
#[test]
fn cancelled_or_expired_leader_never_strands_followers() {
    let circuit = benchmarks::qft_n10();

    // Cancelled leader.
    let service = CompileService::new(ServiceConfig {
        workers: 2,
        cache_bytes: 8 * 1024 * 1024,
        ..ServiceConfig::default()
    });
    let chip = lattice_chip(&circuit);
    let leader = service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap();
    let follower = service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap();
    leader.cancel();
    follower.wait().expect("follower of a cancelled leader must still complete");

    // Expired-deadline leader (a fresh service so the cache is cold and
    // the first job really leads a flight).
    let service = CompileService::new(ServiceConfig {
        workers: 2,
        cache_bytes: 8 * 1024 * 1024,
        ..ServiceConfig::default()
    });
    let leader = service.submit(
        CompileRequest::new(circuit.clone(), chip.clone()).with_deadline(Duration::from_nanos(1)),
    );
    let follower = service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap();
    match leader.unwrap().wait() {
        Err(JobError::DeadlineExceeded { .. }) => {}
        Ok(_) => panic!("a 1ns deadline cannot be met"),
        Err(other) => panic!("expected a deadline error: {other:?}"),
    }
    follower.wait().expect("follower of an expired leader must still complete");
}
