//! Defective-chip properties across the whole pipeline: a defect mask
//! with no defects must be *invisible* (bit-identical schedules, reports,
//! and cache keys versus the uniform chip), and a mask with real defects
//! must be *inviolable* (no qubit placed on a dead tile, no path routed
//! through one), with the per-job `ResourceEstimate` agreeing exactly
//! with the router counters it summarizes.

use ecmas::session::Compiler;
use ecmas::stable::fingerprint_encoded;
use ecmas::{
    validate_encoded, CacheSource, CompileOutcome, CompileRequest, CompileService, Ecmas,
    ServiceConfig,
};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{benchmarks, random};
use proptest::prelude::*;

/// Removes `,"<key>":{...}` from a flat-ish JSON object string, so the
/// two run-dependent report fields (timings, cache provenance) drop out
/// before byte-for-byte comparison.
fn strip_object(json: &str, key: &str) -> String {
    let pattern = format!(",\"{key}\":{{");
    let start = json.find(&pattern).unwrap_or_else(|| panic!("report has no {key:?}: {json}"));
    let mut depth = 0usize;
    for (offset, b) in json[start + pattern.len() - 1..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    let end = start + pattern.len() - 1 + offset;
                    return format!("{}{}", &json[..start], &json[end + 1..]);
                }
            }
            _ => {}
        }
    }
    panic!("unterminated {key:?} object in {json}");
}

fn canonical_report(outcome: &CompileOutcome) -> String {
    strip_object(&strip_object(&outcome.report.to_json(), "timings_ms"), "cache")
}

/// Every tile slot the mapping uses is alive, and every committed path
/// stays off dead channel cells. `validate_encoded` checks the same
/// invariants; this spells them out against the chip directly so a
/// validator regression cannot mask a pipeline one.
fn assert_avoids_defects(chip: &Chip, outcome: &CompileOutcome) {
    let grid = chip.grid();
    for (q, &slot) in outcome.encoded.mapping().iter().enumerate() {
        assert!(!chip.is_dead(slot), "qubit {q} mapped to dead tile slot {slot}");
    }
    for event in outcome.encoded.events() {
        if let Some(path) = event.kind.path() {
            for &cell in path.cells() {
                assert!(!grid.is_dead(cell), "event path crosses dead cell {cell}");
            }
        }
    }
}

/// The defect-free masked chip is the *same hardware* as the uniform
/// chip: schedules, fingerprints, and full canonical reports (resources
/// included) are bit-identical, end to end, on both code models.
#[test]
fn all_false_masks_are_bit_identical_to_uniform_chips() {
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        for seed in [1u64, 17, 99] {
            let circuit = random::layered(12, 10, 3, seed);
            let uniform = Chip::congested(model, circuit.qubits(), 3).unwrap();
            let masked =
                Chip::congested(model, circuit.qubits(), 3).unwrap().with_defects(&[]).unwrap();
            assert_eq!(masked.defect_count(), 0);

            let compiler = Ecmas::default();
            let base = compiler.compile_outcome(&circuit, &uniform).unwrap();
            let same = compiler.compile_outcome(&circuit, &masked).unwrap();
            assert_eq!(
                fingerprint_encoded(&base.encoded),
                fingerprint_encoded(&same.encoded),
                "all-false mask changed the schedule ({model:?}, seed {seed})"
            );
            assert_eq!(
                canonical_report(&base),
                canonical_report(&same),
                "all-false mask changed the report ({model:?}, seed {seed})"
            );
        }
    }
}

/// Cache identity follows hardware identity: a defect-free mask *hits*
/// the uniform chip's entry, a real defect *misses* it.
#[test]
fn clean_masks_share_cache_entries_and_dirty_masks_do_not() {
    let circuit = random::layered(9, 8, 2, 0xDE);
    let uniform = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
    let masked_clean = uniform.clone().with_defects(&[]).unwrap();
    let masked_dirty = uniform.clone().with_defects(&[(5, 5)]).unwrap();

    let service = CompileService::new(ServiceConfig {
        workers: 1,
        cache_bytes: 16 * 1024 * 1024,
        ..ServiceConfig::default()
    });
    let source = |chip: &Chip| {
        let handle = service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap();
        handle.wait().unwrap().report.cache.source
    };
    assert_eq!(source(&uniform), CacheSource::Miss);
    assert_eq!(source(&masked_clean), CacheSource::Hit, "clean mask should share the entry");
    // The defective chip must not reuse the full result — but the
    // profile stage depends only on the circuit, so the cache correctly
    // serves *that* artifact and recompiles mapping + scheduling.
    assert_eq!(
        source(&masked_dirty),
        CacheSource::ProfileReuse,
        "defects are distinct hardware: full-result reuse would be wrong"
    );
}

/// The acceptance sweep: congested qft_n50 with 0%, 5%, and 10% of the
/// tile array dead. Every schedule validates, avoids the dead hardware,
/// and carries a `ResourceEstimate` that agrees *exactly* with the
/// chip facts and router counters it is derived from.
#[test]
fn defect_sweep_keeps_qft_n50_off_dead_hardware() {
    let circuit = benchmarks::qft_n50();
    for percent in [0usize, 5, 10] {
        let mut chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
        let slots = chip.tile_rows() * chip.tile_cols();
        chip.seed_defects(slots * percent / 100, 0xD5EED);
        assert_eq!(chip.defect_count(), slots * percent / 100);

        let outcome = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
        validate_encoded(&circuit, &outcome.encoded).unwrap();
        assert_avoids_defects(&chip, &outcome);

        let report = &outcome.report;
        let r = &report.resources;
        assert_eq!(r.logical_qubits, circuit.qubits());
        assert_eq!(r.live_tiles, chip.live_tiles());
        assert_eq!(r.physical_qubits, chip.physical_qubits());
        assert_eq!(r.cycles, report.cycles);
        assert_eq!(r.space_time_volume, circuit.qubits() as u64 * report.cycles);
        assert_eq!(r.channel_cells, chip.grid().free_cells() as u64);
        let ppm =
            |cells: u64, denom: u128| u64::try_from(u128::from(cells) * 1_000_000 / denom).unwrap();
        assert_eq!(
            r.channel_mean_utilization_ppm,
            ppm(report.router.path_cells, u128::from(r.channel_cells) * u128::from(r.cycles)),
        );
        assert_eq!(
            r.channel_peak_utilization_ppm,
            ppm(report.router.peak_cycle_path_cells, u128::from(r.channel_cells)),
        );
        assert_eq!(r.stage_cost.profile, circuit.cnot_count() as u64);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Randomized masks on randomized workloads: whatever the damage
    /// (up to the placement limit), the compiled schedule validates and
    /// never touches a dead tile or channel cell, on either model.
    #[test]
    fn randomized_masks_never_touch_dead_hardware(
        seed in 0u64..500,
        pm in 1usize..4,
        model_pick in 0u8..2,
        defects in 0usize..8,
    ) {
        let model =
            if model_pick == 0 { CodeModel::DoubleDefect } else { CodeModel::LatticeSurgery };
        let circuit = random::layered(9, 8, pm, seed);
        let mut chip = Chip::congested(model, circuit.qubits(), 3).unwrap();
        chip.seed_defects(defects, seed ^ 0xBAD_C0DE);
        prop_assert_eq!(chip.defect_count(), defects);

        let outcome = Ecmas::default().compile_auto(&circuit, &chip).unwrap();
        prop_assert!(validate_encoded(&circuit, &outcome.encoded).is_ok());
        assert_avoids_defects(&chip, &outcome);
    }
}
