//! End-to-end integration tests: every compiler in the workspace, on real
//! benchmarks, cross-checked by the independent schedule validator and by
//! the paper's analytical signatures.

use ecmas::{para_finding, validate_encoded, Compiler, Ecmas, EcmasConfig};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::benchmarks;

/// The mid-sized circuits used across these tests (the two 14k-gate rows
/// are exercised by the bench harness instead).
fn suite() -> Vec<ecmas_circuit::Circuit> {
    benchmarks::table1_suite().into_iter().filter(|c| c.cnot_count() <= 1000).collect()
}

#[test]
fn every_compiler_produces_valid_schedules_on_the_suite() {
    // One code path for all three compilers: the workspace-wide trait.
    let ecmas = Ecmas::default();
    let (autobraid, edpci) = (AutoBraid::new(), Edpci::new());
    for circuit in suite() {
        let n = circuit.qubits();
        let dd = Chip::min_viable(CodeModel::DoubleDefect, n, 3).unwrap();
        let ls = Chip::min_viable(CodeModel::LatticeSurgery, n, 3).unwrap();
        let runs: [(&dyn Compiler, &Chip); 4] =
            [(&autobraid, &dd), (&ecmas, &dd), (&edpci, &ls), (&ecmas, &ls)];
        for (compiler, chip) in runs {
            let outcome = compiler.compile_outcome(&circuit, chip).unwrap();
            validate_encoded(&circuit, &outcome.encoded)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", compiler.name(), circuit.name()));
            assert!(
                outcome.report.cycles as usize >= circuit.depth(),
                "{} on {}: Δ below the depth lower bound",
                compiler.name(),
                circuit.name()
            );
            assert_eq!(outcome.report.cycles, outcome.encoded.cycles());
        }
    }
}

#[test]
fn ecmas_dominates_autobraid_on_every_benchmark() {
    // The paper's headline Table I claim (51.5% average reduction). We
    // assert domination per circuit plus a ≥40% aggregate reduction.
    let mut autobraid_total = 0u64;
    let mut ecmas_total = 0u64;
    for circuit in suite() {
        let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3).unwrap();
        let ab = AutoBraid::new().compile(&circuit, &chip).unwrap().cycles();
        let ec = Ecmas::default().compile(&circuit, &chip).unwrap().cycles();
        assert!(ec <= ab, "{}: ecmas {ec} > autobraid {ab}", circuit.name());
        autobraid_total += ab;
        ecmas_total += ec;
    }
    let reduction = 1.0 - ecmas_total as f64 / autobraid_total as f64;
    assert!(reduction >= 0.40, "aggregate reduction only {:.1}%", reduction * 100.0);
}

#[test]
fn bipartite_circuits_hit_depth_on_double_defect() {
    // Bipartite communication graph ⇒ perfect cut-type init ⇒ every CNOT
    // braids in one cycle; with light traffic Δ = α exactly.
    for name in ["ising_n10", "ghz_state_n23", "wstate_n27", "bv_n10"] {
        let circuit = benchmarks::by_name(name).unwrap();
        assert!(circuit.comm_graph().bipartition().is_some(), "{name} must be bipartite");
        let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3).unwrap();
        let enc = Ecmas::default().compile(&circuit, &chip).unwrap();
        assert_eq!(enc.cycles() as usize, circuit.depth(), "{name}");
    }
}

#[test]
fn autobraid_shows_three_alpha_signature() {
    for name in ["ghz_state_n23", "bv_n50", "qpe_n9", "ising_n10"] {
        let circuit = benchmarks::by_name(name).unwrap();
        let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3).unwrap();
        let enc = AutoBraid::new().compile(&circuit, &chip).unwrap();
        assert_eq!(enc.cycles() as usize, 3 * circuit.depth(), "{name}");
    }
}

#[test]
fn lattice_surgery_resu_is_depth_optimal_on_the_suite() {
    for circuit in suite() {
        let scheme = para_finding(&circuit.dag());
        let chip =
            Chip::sufficient(CodeModel::LatticeSurgery, circuit.qubits(), scheme.gpm(), 3).unwrap();
        let enc = Ecmas::default().compile_resu(&circuit, &chip).unwrap();
        validate_encoded(&circuit, &enc).unwrap();
        assert_eq!(
            enc.cycles() as usize,
            circuit.depth(),
            "{}: LS ReSu must hit α",
            circuit.name()
        );
    }
}

#[test]
fn double_defect_resu_meets_the_approximation_bound() {
    for circuit in suite() {
        let scheme = para_finding(&circuit.dag());
        let chip =
            Chip::sufficient(CodeModel::DoubleDefect, circuit.qubits(), scheme.gpm(), 3).unwrap();
        let enc = Ecmas::default().compile_resu(&circuit, &chip).unwrap();
        validate_encoded(&circuit, &enc).unwrap();
        // Theorem 3: 5/2-approximation against the optimum (≥ α); allow
        // the +3 initial-remap slack.
        let bound = (5 * circuit.depth()).div_ceil(2) + 3;
        assert!(
            (enc.cycles() as usize) <= bound,
            "{}: ReSu {} exceeds bound {bound}",
            circuit.name(),
            enc.cycles()
        );
    }
}

#[test]
fn four_x_resources_never_hurt_ecmas() {
    // The paper: "All results on the 4x resources are superior to or equal
    // to the minimal viable chip" for Ecmas.
    for circuit in suite() {
        for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
            let min = Chip::min_viable(model, circuit.qubits(), 3).unwrap();
            let four = Chip::four_x(model, circuit.qubits(), 3).unwrap();
            let on_min = Ecmas::default().compile(&circuit, &min).unwrap().cycles();
            let on_four = Ecmas::default().compile(&circuit, &four).unwrap().cycles();
            assert!(
                on_four <= on_min,
                "{} on {}: 4x {} > min {}",
                circuit.name(),
                model.label(),
                on_four,
                on_min
            );
        }
    }
}

#[test]
fn compilation_is_deterministic() {
    let circuit = benchmarks::qft_n10();
    let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
    let a = Ecmas::new(EcmasConfig::default()).compile_outcome(&circuit, &chip).unwrap();
    let b = Ecmas::new(EcmasConfig::default()).compile_outcome(&circuit, &chip).unwrap();
    assert_eq!(a.encoded.cycles(), b.encoded.cycles());
    assert_eq!(a.encoded.mapping(), b.encoded.mapping());
    assert_eq!(a.encoded.events(), b.encoded.events());
    // Everything in the report except wall time is deterministic too.
    assert_eq!(a.report.router, b.report.router);
    assert_eq!(a.report.algorithm, b.report.algorithm);
    assert_eq!(a.report.bandwidth_adjust, b.report.bandwidth_adjust);
}

#[test]
fn cut_modifications_only_appear_in_double_defect() {
    let circuit = benchmarks::qft_n10();
    let ls = Chip::min_viable(CodeModel::LatticeSurgery, 10, 3).unwrap();
    let enc = Ecmas::default().compile(&circuit, &ls).unwrap();
    assert_eq!(enc.modification_count(), 0);
    assert!(enc.initial_cuts().is_none());
}
