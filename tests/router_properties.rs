//! Property tests for the A* router: path optimality against a reference
//! BFS on randomized congestion states, bit-identical equivalence of the
//! bucket-queue open set to the PR 3 binary-heap A* (paths *and* failed
//! searches), and the batched per-cycle API's equivalence to sequential
//! per-gate routing.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet, VecDeque};

use ecmas_chip::{Chip, CodeModel};
use ecmas_route::{Disjointness, Path, RouteRequest, Router};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A router over a random chip with a random set of mapped tiles and a
/// few randomly committed cycle-0 paths, plus a mirror of the reservation
/// state maintained *outside* the router (so the reference BFS shares no
/// code with the implementation under test).
struct CongestedSetup {
    router: Router,
    mode: Disjointness,
    mapped: Vec<usize>,
    /// Node-mode: cells reserved at cycle 0 (committed path interiors).
    busy_cells: HashSet<usize>,
    /// Edge-mode: edges reserved at cycle 0, as `(min, max)` cell pairs.
    busy_edges: HashSet<(usize, usize)>,
    /// Cells hosting mapped tiles (never traversable).
    tile_cells: HashSet<usize>,
}

fn congested_setup(
    rows: usize,
    cols: usize,
    bw: u32,
    node_mode: bool,
    seed: u64,
) -> CongestedSetup {
    let (model, mode) = if node_mode {
        (CodeModel::DoubleDefect, Disjointness::Node)
    } else {
        (CodeModel::LatticeSurgery, Disjointness::Edge)
    };
    let chip = Chip::uniform(model, rows, cols, bw, 3).unwrap();
    let mut router = Router::new(chip.grid(), mode);
    let mut rng = SmallRng::seed_from_u64(seed);
    let slots = rows * cols;
    let mut mapped: Vec<usize> = (0..slots).filter(|_| rng.gen_bool(0.8)).collect();
    if mapped.len() < 2 {
        mapped = vec![0, slots - 1];
    }
    let mut tile_cells = HashSet::new();
    for &slot in &mapped {
        router.block_tile(slot);
        tile_cells.insert(router.grid().tile_cell(slot));
    }
    // Commit a few random paths at cycle 0 to build congestion, mirroring
    // every reservation in the test's own state.
    let mut busy_cells = HashSet::new();
    let mut busy_edges = HashSet::new();
    for _ in 0..mapped.len().min(6) {
        let a = mapped[rng.gen_range(0..mapped.len())];
        let b = mapped[rng.gen_range(0..mapped.len())];
        if a == b {
            continue;
        }
        if let Some(path) = router.route_tiles(a, b, 0, 1) {
            busy_cells.extend(path.interior().iter().copied());
            for w in path.cells().windows(2) {
                busy_edges.insert((w[0].min(w[1]), w[0].max(w[1])));
            }
        }
    }
    CongestedSetup { router, mode, mapped, busy_cells, busy_edges, tile_cells }
}

/// Reference shortest-path oracle: plain BFS over the mirrored
/// reservation state, with the router's availability rules (tile
/// endpoints exempt, interiors must be unmapped and unreserved, edge mode
/// reserves edges instead of cells).
fn bfs_len(setup: &CongestedSetup, from_slot: usize, to_slot: usize) -> Option<usize> {
    let grid = setup.router.grid();
    let (from, to) = (grid.tile_cell(from_slot), grid.tile_cell(to_slot));
    let cell_ok = |c: usize| {
        !setup.tile_cells.contains(&c)
            && (setup.mode == Disjointness::Edge || !setup.busy_cells.contains(&c))
    };
    let edge_ok = |a: usize, b: usize| {
        setup.mode == Disjointness::Node || !setup.busy_edges.contains(&(a.min(b), a.max(b)))
    };
    let mut dist = vec![usize::MAX; grid.len()];
    let mut queue = VecDeque::new();
    dist[from] = 0;
    queue.push_back(from);
    while let Some(cur) = queue.pop_front() {
        for next in grid.neighbors(cur) {
            if dist[next] != usize::MAX || !edge_ok(cur, next) {
                continue;
            }
            if next == to {
                return Some(dist[cur] + 1);
            }
            if !cell_ok(next) {
                continue;
            }
            dist[next] = dist[cur] + 1;
            queue.push_back(next);
        }
    }
    None
}

/// An independent replica of the PR 3 router's search: A* over a binary
/// heap keyed `(f << 32) | seq` (f-score high, FIFO push counter low),
/// neighbor order up/down/left/right, running on the *mirrored*
/// reservation state. The bucket-queue router must reproduce its full
/// cell sequences — not just lengths — and its exact `None`s.
fn heap_astar_path(setup: &CongestedSetup, from_slot: usize, to_slot: usize) -> Option<Vec<usize>> {
    let grid = setup.router.grid();
    let (from, to) = (grid.tile_cell(from_slot), grid.tile_cell(to_slot));
    let cell_ok = |c: usize| {
        !setup.tile_cells.contains(&c)
            && (setup.mode == Disjointness::Edge || !setup.busy_cells.contains(&c))
    };
    let edge_ok = |a: usize, b: usize| {
        setup.mode == Disjointness::Node || !setup.busy_edges.contains(&(a.min(b), a.max(b)))
    };
    let (cols, rows) = (grid.cols(), grid.rows());
    let (to_r, to_c) = grid.coords(to);
    let manhattan = |cell: usize| -> u64 {
        ((cell / cols).abs_diff(to_r) + (cell % cols).abs_diff(to_c)) as u64
    };
    let mut g_score = vec![u32::MAX; grid.len()];
    let mut parent = vec![usize::MAX; grid.len()];
    let mut open: BinaryHeap<Reverse<(u64, u32)>> = BinaryHeap::new();
    g_score[from] = 0;
    let mut seq: u64 = 0;
    open.push(Reverse((manhattan(from) << 32, u32::try_from(from).unwrap())));
    let mut found = false;
    while let Some(Reverse((key, cell))) = open.pop() {
        let cur = cell as usize;
        if key >> 32 != u64::from(g_score[cur]) + manhattan(cur) {
            continue;
        }
        let (r, c) = (cur / cols, cur % cols);
        let neighbors = [
            (r > 0).then(|| cur - cols),
            (r + 1 < rows).then(|| cur + cols),
            (c > 0).then(|| cur - 1),
            (c + 1 < cols).then(|| cur + 1),
        ];
        for next in neighbors.into_iter().flatten() {
            if !edge_ok(cur, next) {
                continue;
            }
            if next == to {
                parent[next] = cur;
                found = true;
                break;
            }
            if !cell_ok(next) {
                continue;
            }
            let ng = g_score[cur] + 1;
            if g_score[next] <= ng {
                continue;
            }
            g_score[next] = ng;
            parent[next] = cur;
            seq += 1;
            let f = u64::from(ng) + manhattan(next);
            open.push(Reverse(((f << 32) | seq, u32::try_from(next).unwrap())));
        }
        if found {
            break;
        }
    }
    if !found {
        return None;
    }
    let mut cells = vec![to];
    let mut cur = to;
    while cur != from {
        cur = parent[cur];
        cells.push(cur);
    }
    cells.reverse();
    Some(cells)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The bucket-queue open set is the old binary heap, bit for bit: on
    /// every randomized congestion state the router returns exactly the
    /// reference replica's cell sequence for routable pairs and exactly
    /// its `None` for unroutable ones (where the reachability cache may
    /// answer without searching — the verdict must still agree).
    #[test]
    fn bucket_queue_astar_is_bit_identical_to_heap_astar(
        rows in 1usize..4,
        cols in 1usize..4,
        bw in 1u32..3,
        node_mode in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let mut setup = congested_setup(rows, cols, bw, node_mode == 1, seed);
        let pairs: Vec<(usize, usize)> = setup
            .mapped
            .iter()
            .flat_map(|&a| setup.mapped.iter().map(move |&b| (a, b)))
            .filter(|&(a, b)| a != b)
            .collect();
        for (a, b) in pairs {
            let want = heap_astar_path(&setup, a, b);
            let got = setup.router.find_tile_path(a, b, 0);
            prop_assert_eq!(
                got.map(|p| p.cells().to_vec()),
                want,
                "{:?} {}->{} (rows={} cols={} bw={} seed={})",
                setup.mode, a, b, rows, cols, bw, seed
            );
        }
    }

    /// On every randomized congestion state, in both disjointness modes,
    /// the A* router finds a path exactly when BFS does, of exactly the
    /// same length (the Manhattan bound is admissible, so A* stays
    /// shortest), and the found path checks out against the reservations.
    #[test]
    fn astar_matches_reference_bfs(
        rows in 1usize..4,
        cols in 1usize..4,
        bw in 1u32..3,
        node_mode in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let mut setup = congested_setup(rows, cols, bw, node_mode == 1, seed);
        let pairs: Vec<(usize, usize)> = setup
            .mapped
            .iter()
            .flat_map(|&a| setup.mapped.iter().map(move |&b| (a, b)))
            .filter(|&(a, b)| a < b)
            .collect();
        for (a, b) in pairs {
            let want = bfs_len(&setup, a, b);
            let got = setup.router.find_tile_path(a, b, 0);
            prop_assert_eq!(
                got.as_ref().map(Path::len),
                want,
                "{:?} {}->{} (rows={} cols={} bw={} seed={})",
                setup.mode, a, b, rows, cols, bw, seed
            );
            if let Some(path) = got {
                // Endpoints are the tile cells; every interior cell/edge
                // respects the mirrored reservations.
                let grid = setup.router.grid();
                prop_assert_eq!(path.cells()[0], grid.tile_cell(a));
                prop_assert_eq!(*path.cells().last().unwrap(), grid.tile_cell(b));
                for &c in path.interior() {
                    prop_assert!(!setup.tile_cells.contains(&c));
                    if setup.mode == Disjointness::Node {
                        prop_assert!(!setup.busy_cells.contains(&c));
                    }
                }
                if setup.mode == Disjointness::Edge {
                    for w in path.cells().windows(2) {
                        prop_assert!(!setup.busy_edges.contains(&(w[0].min(w[1]), w[0].max(w[1]))));
                    }
                }
            }
        }
    }

    /// `route_ready` is event-for-event the sequential per-gate loop:
    /// same outcomes at the same positions, same router statistics, and
    /// the same reservation state afterwards (probed via a follow-up
    /// search).
    #[test]
    fn batched_routing_equals_sequential(
        rows in 1usize..4,
        cols in 1usize..4,
        bw in 1u32..3,
        node_mode in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let setup = congested_setup(rows, cols, bw, node_mode == 1, seed);
        let mut batched = setup.router.clone();
        let mut sequential = setup.router.clone();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xBA7C4);
        let m = setup.mapped.len();
        let requests: Vec<RouteRequest> = (0..12)
            .filter_map(|_| {
                let a = setup.mapped[rng.gen_range(0..m)];
                let b = setup.mapped[rng.gen_range(0..m)];
                if a == b {
                    return None;
                }
                Some(if rng.gen_bool(0.25) {
                    RouteRequest::probe(a, b)
                } else {
                    RouteRequest::route(a, b, rng.gen_range(1u64..3))
                })
            })
            .collect();
        let got = batched.route_ready(&requests, 0);
        let want: Vec<Option<Path>> = requests
            .iter()
            .map(|req| {
                let path = sequential.find_tile_path(req.from_slot, req.to_slot, 0)?;
                if req.commit {
                    sequential.commit(&path, 0, req.hold);
                }
                Some(path)
            })
            .collect();
        prop_assert_eq!(&got, &want);
        prop_assert_eq!(batched.stats(), sequential.stats());
        // Identical reservation state afterwards: any follow-up search
        // agrees between the two routers.
        for (a, b) in [(setup.mapped[0], setup.mapped[m - 1])] {
            if a != b {
                prop_assert_eq!(batched.find_tile_path(a, b, 0), sequential.find_tile_path(a, b, 0));
                prop_assert_eq!(batched.find_tile_path(a, b, 2), sequential.find_tile_path(a, b, 2));
            }
        }
    }

    /// `route_ready_by_distance` equals stable-sorting the batch by the
    /// router's own distance estimate, routing sequentially in that
    /// order, and scattering the outcomes back to the original positions.
    #[test]
    fn distance_ordered_batch_equals_presorted_sequential(
        rows in 1usize..4,
        cols in 1usize..4,
        bw in 1u32..3,
        node_mode in 0u8..2,
        seed in 0u64..10_000,
    ) {
        let setup = congested_setup(rows, cols, bw, node_mode == 1, seed);
        let mut batched = setup.router.clone();
        let mut sequential = setup.router.clone();
        let mut rng = SmallRng::seed_from_u64(seed ^ 0xD157);
        let m = setup.mapped.len();
        let requests: Vec<RouteRequest> = (0..10)
            .filter_map(|_| {
                let a = setup.mapped[rng.gen_range(0..m)];
                let b = setup.mapped[rng.gen_range(0..m)];
                (a != b).then(|| RouteRequest::route(a, b, 1))
            })
            .collect();
        let got = batched.route_ready_by_distance(&requests, 0);
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| {
            sequential.estimated_distance(requests[i].from_slot, requests[i].to_slot)
        });
        let mut want: Vec<Option<Path>> = vec![None; requests.len()];
        for i in order {
            let req = requests[i];
            want[i] = sequential.find_tile_path(req.from_slot, req.to_slot, 0).inspect(|path| {
                sequential.commit(path, 0, req.hold);
            });
        }
        prop_assert_eq!(got, want);
        prop_assert_eq!(batched.stats(), sequential.stats());
    }
}
