//! Analyzer soundness property: on any schedule the compilers in this
//! workspace actually emit, the full analysis pass (circuit lints +
//! schedule verifier) must report **zero error-severity diagnostics** —
//! across random circuits, both code models, several chip shapes, defect
//! masks, and both the fixed and resource-adaptive compile modes. Hints
//! and warnings are fine (idle bubbles are a fact of life); an error here
//! means either the compiler emitted an illegal schedule or the analyzer
//! flags legal ones — both are bugs this test exists to catch.

use ecmas::{analyze_encoded, has_errors, lint_circuit, Ecmas};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::random;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn compiled_schedules_carry_no_error_diagnostics(
        n in 4usize..12,
        depth in 1usize..8,
        parallelism in 1usize..4,
        seed in 0u64..10_000,
        variant in 0usize..24,
    ) {
        // One index enumerating (model × chip shape × defect × mode); the
        // vendored proptest shim caps strategy tuples at six elements.
        let surgery = variant % 2 == 1;
        let shape = (variant / 2) % 3;
        let defect = (variant / 6) % 2 == 1;
        let auto = (variant / 12) % 2 == 1;
        let model =
            if surgery { CodeModel::LatticeSurgery } else { CodeModel::DoubleDefect };
        let parallelism = parallelism.min(n / 2); // a layer of k CNOTs needs 2k qubits
        let circuit = random::layered(n, depth, parallelism, seed);
        let mut chip = match shape {
            0 => Chip::min_viable(model, n, 3).unwrap(),
            1 => Chip::four_x(model, n, 3).unwrap(),
            _ => Chip::congested(model, n, 3).unwrap(),
        };
        if defect && chip.live_tiles() > n {
            // Knock out one tile when there is slack for it; the mapper
            // must route around it and the analyzer must still be clean.
            chip = chip.with_defects(&[(0, 0)]).unwrap();
        }
        let encoded = if auto {
            Ecmas::default().compile_auto(&circuit, &chip).unwrap().encoded
        } else {
            Ecmas::default().compile(&circuit, &chip).unwrap()
        };
        let mut diags = lint_circuit(&circuit, Some(&chip));
        diags.extend(analyze_encoded(&circuit, &encoded));
        let errors: Vec<String> =
            diags.iter().filter(|d| d.is_error()).map(ToString::to_string).collect();
        prop_assert!(
            !has_errors(&diags),
            "{} n={n} depth={depth} pm={parallelism} seed={seed:#x} shape={shape} \
             defect={defect} auto={auto}: {errors:?}",
            model.label(),
        );
    }
}
