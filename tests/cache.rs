//! Integration tests for the `ecmas-cache` compile cache behind the
//! service layer: cached results must be bit-identical to cold compiles
//! (the cache is an optimization, never an answer change), the resident
//! byte total must respect the budget with real eviction, stage-artifact
//! reuse must survive schedule-knob changes unchanged, and a burst of
//! identical jobs must coalesce into exactly one compile.

use ecmas::{
    fingerprint_encoded, CacheSource, CompileOutcome, CompileRequest, CompileService,
    CutInitStrategy, CutPolicy, EcmasConfig, GateOrder, ScheduleMode, ServiceConfig,
};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::random;
use proptest::prelude::*;

fn service_with_cache(workers: usize, cache_bytes: u64) -> CompileService {
    CompileService::new(ServiceConfig { workers, cache_bytes, ..ServiceConfig::default() })
}

/// Removes `,"<key>":{...}` (the comma through the matching close brace)
/// from a flat-ish JSON object string. Used to drop the two
/// run-dependent report fields — wall-clock timings and cache provenance
/// — before comparing reports byte-for-byte.
fn strip_object(json: &str, key: &str) -> String {
    let pattern = format!(",\"{key}\":{{");
    let start = json.find(&pattern).unwrap_or_else(|| panic!("report has no {key:?}: {json}"));
    let mut depth = 0usize;
    for (offset, b) in json[start + pattern.len() - 1..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    let end = start + pattern.len() - 1 + offset;
                    return format!("{}{}", &json[..start], &json[end + 1..]);
                }
            }
            _ => {}
        }
    }
    panic!("unterminated {key:?} object in {json}");
}

/// A report with timings and cache provenance removed: everything left
/// (cycles, events, ĝPM, router counters, algorithm, …) must be
/// identical between cached and uncached compiles.
fn canonical_report(outcome: &CompileOutcome) -> String {
    strip_object(&strip_object(&outcome.report.to_json(), "timings_ms"), "cache")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property: across random circuits, both code models, both explicit
    /// schedule modes, randomized config knobs, and 1- or 4-worker
    /// pools, a cache-fronted service returns results bit-identical to
    /// an uncached one — on the cold pass (miss) and the warm pass (hit).
    #[test]
    fn cached_results_are_bit_identical_to_uncached(
        seed in 0u64..1000,
        pm in 1usize..5,
        workers_pick in 0usize..2,
        model_pick in 0u8..2,
        mode_pick in 0u8..2,
        // order (2) × cut policy (3) × adjust-bandwidth (2), packed into
        // one draw (the vendored proptest tuples cap at 6 strategies).
        knobs in 0u8..12,
    ) {
        let circuit = random::layered(12, 8, pm, seed);
        let model =
            if model_pick == 0 { CodeModel::DoubleDefect } else { CodeModel::LatticeSurgery };
        let chip = Chip::min_viable(model, 12, 3).unwrap();
        let mode = if mode_pick == 0 { ScheduleMode::Auto } else { ScheduleMode::Limited };
        let config = EcmasConfig {
            order: if knobs % 2 == 0 { GateOrder::Priority } else { GateOrder::CircuitOrder },
            cut_policy: match (knobs / 2) % 3 {
                0 => CutPolicy::Adaptive,
                1 => CutPolicy::TimeFirst,
                _ => CutPolicy::NeverModify,
            },
            adjust_bandwidth: knobs / 6 == 0,
            ..EcmasConfig::default()
        };
        let workers = [1usize, 4][workers_pick];
        let request = || {
            CompileRequest::new(circuit.clone(), chip.clone())
                .with_config(config)
                .with_mode(mode)
        };

        let uncached = service_with_cache(workers, 0);
        let cold = uncached.submit(request()).unwrap().wait().unwrap();
        prop_assert_eq!(cold.report.cache.source, CacheSource::Disabled);

        let cached = service_with_cache(workers, 16 * 1024 * 1024);
        let first = cached.submit(request()).unwrap().wait().unwrap();
        let second = cached.submit(request()).unwrap().wait().unwrap();
        prop_assert_eq!(second.report.cache.source, CacheSource::Hit);

        for warm in [&first, &second] {
            prop_assert_eq!(canonical_report(warm), canonical_report(&cold));
            prop_assert_eq!(warm.encoded.events(), cold.encoded.events());
            prop_assert_eq!(warm.encoded.mapping(), cold.encoded.mapping());
            prop_assert_eq!(
                fingerprint_encoded(&warm.encoded),
                fingerprint_encoded(&cold.encoded)
            );
        }
        let stats = cached.cache_stats().unwrap();
        prop_assert_eq!(stats.misses, 1);
        prop_assert_eq!(stats.hits, 1);
    }
}

/// Changing only a schedule-stage knob must reuse the cached profile and
/// map artifacts (`stage_hits` > 0, source `MapReuse`) and still produce
/// output bit-identical to a cold compile under the new config.
#[test]
fn stage_artifact_reuse_is_bit_identical_to_cold_compiles() {
    let circuit = random::layered(14, 10, 4, 0xCAFE);
    let chip = Chip::min_viable(CodeModel::DoubleDefect, 14, 3).unwrap();
    let config_a = EcmasConfig::default();
    // Schedule-only changes: the mapping inputs (location, cut_init) are
    // untouched, so the map key — and therefore the cached artifacts —
    // stay valid.
    let config_b = EcmasConfig {
        order: GateOrder::CircuitOrder,
        cut_policy: CutPolicy::ChannelFirst,
        adjust_bandwidth: false,
        ..config_a
    };
    assert_eq!(config_a.cut_init, CutInitStrategy::GreedyBipartitePrefix);

    let cached = service_with_cache(2, 16 * 1024 * 1024);
    let warmup = cached
        .submit(CompileRequest::new(circuit.clone(), chip.clone()).with_config(config_a))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(warmup.report.cache.source, CacheSource::Miss);
    let reused = cached
        .submit(CompileRequest::new(circuit.clone(), chip.clone()).with_config(config_b))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(reused.report.cache.source, CacheSource::MapReuse);
    assert!(cached.cache_stats().unwrap().stage_hits >= 1, "map reuse counts as a stage hit");

    let uncached = service_with_cache(2, 0);
    let cold = uncached
        .submit(CompileRequest::new(circuit.clone(), chip).with_config(config_b))
        .unwrap()
        .wait()
        .unwrap();
    assert_eq!(canonical_report(&reused), canonical_report(&cold));
    assert_eq!(reused.encoded.events(), cold.encoded.events());
    assert_eq!(fingerprint_encoded(&reused.encoded), fingerprint_encoded(&cold.encoded));
}

/// The resident byte estimate never exceeds the configured budget, and a
/// stream of distinct jobs through a small budget actually evicts.
#[test]
fn resident_bytes_respect_the_budget_and_eviction_happens() {
    // Small enough that a handful of outcomes overflow it, large enough
    // that a single outcome fits (an oversized insert would be refused
    // and nothing would ever be resident).
    let budget = 24 * 1024u64;
    let service = service_with_cache(2, budget);
    let chip = |q: usize| Chip::min_viable(CodeModel::LatticeSurgery, q, 3).unwrap();
    for seed in 0..12u64 {
        let circuit = random::layered(10, 8, 3, seed);
        let outcome =
            service.submit(CompileRequest::new(circuit.clone(), chip(10))).unwrap().wait().unwrap();
        let stats = service.cache_stats().unwrap();
        assert!(
            stats.resident_bytes <= budget,
            "resident {} exceeds budget {budget} after seed {seed}",
            stats.resident_bytes
        );
        assert!(stats.resident_bytes > 0, "something must be resident");
        drop(outcome);
    }
    let stats = service.cache_stats().unwrap();
    assert!(stats.evictions > 0, "12 distinct jobs through {budget} bytes must evict: {stats:?}");
    assert_eq!(stats.misses, 12, "distinct jobs never hit");
}

/// A burst of identical jobs on a multi-worker pool runs the compiler
/// exactly once: one miss, and every other job served as a hit or a
/// coalesced wait — all bit-identical.
#[test]
fn identical_burst_coalesces_into_one_compile() {
    let burst = 8usize;
    let circuit = random::layered(12, 10, 4, 0xB0057);
    let chip = Chip::min_viable(CodeModel::DoubleDefect, 12, 3).unwrap();
    let service = service_with_cache(4, 16 * 1024 * 1024);
    let handles: Vec<_> = (0..burst)
        .map(|_| service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap())
        .collect();
    let outcomes: Vec<_> = handles.into_iter().map(|h| h.wait().unwrap()).collect();
    for outcome in &outcomes[1..] {
        assert_eq!(canonical_report(outcome), canonical_report(&outcomes[0]));
        assert_eq!(outcome.encoded.events(), outcomes[0].encoded.events());
    }
    let stats = service.cache_stats().unwrap();
    assert_eq!(stats.misses, 1, "one compile for the whole burst: {stats:?}");
    assert_eq!(
        stats.hits + stats.coalesced_waits,
        burst as u64 - 1,
        "everyone else was served from the cache or the in-flight compile: {stats:?}"
    );
    let sources: Vec<_> = outcomes.iter().map(|o| o.report.cache.source).collect();
    assert!(sources.contains(&CacheSource::Miss), "{sources:?}");
    assert!(
        sources
            .iter()
            .all(|s| matches!(s, CacheSource::Miss | CacheSource::Hit | CacheSource::Coalesced)),
        "{sources:?}"
    );
}
