//! Offline, API-compatible subset of the
//! [`proptest`](https://docs.rs/proptest/1) crate, vendored so the
//! workspace's property tests run without network access.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking** — a failing case panics with the sampled inputs via
//!   the regular `assert!` machinery instead of minimizing them first.
//! * **Deterministic** — every test function samples from a fixed-seed
//!   generator, so CI failures reproduce locally by just re-running.
//! * Only the strategies the workspace uses exist: integer ranges, tuples,
//!   [`collection::vec`], and [`Strategy::prop_map`](strategy::Strategy::prop_map).
//!
//! Swap for the real crate by changing one line in the root `Cargo.toml`
//! once a registry is reachable — no call sites change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Test-runner types: the per-test RNG and the case-count configuration.
pub mod test_runner {
    use rand::rngs::SmallRng;
    use rand::{RngCore, SeedableRng};

    /// The deterministic generator handed to strategies by [`proptest!`].
    ///
    /// [`proptest!`]: crate::proptest
    #[derive(Clone, Debug)]
    pub struct TestRng(SmallRng);

    impl TestRng {
        /// A generator with a fixed, documented seed: runs are reproducible
        /// by re-running the test.
        #[must_use]
        pub fn deterministic() -> Self {
            TestRng(SmallRng::seed_from_u64(0xECA5_2024))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// How many random cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of sampled cases per property (default 256, matching the
        /// real crate).
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// The [`Strategy`](strategy::Strategy) trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of `Self::Value`.
    ///
    /// The real crate's strategies produce shrinkable value *trees*; this
    /// shim samples plain values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { source: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($s:ident/$i:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$i.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A / 0);
    impl_tuple_strategy!(A / 0, B / 1);
    impl_tuple_strategy!(A / 0, B / 1, C / 2);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec`s with element strategy `S` and a length sampled
    /// from a range. Returned by [`vec`](fn@vec).
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `size` (half-open, like the
    /// real crate's `SizeRange`).
    ///
    /// # Panics
    ///
    /// Panics at sampling time if `size` is empty.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// The glob-imported surface, mirroring `proptest::prelude` (only names
/// the real prelude also exports, so the registry swap-back cannot break
/// an import).
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a property (panics on failure; the real
/// crate would shrink first).
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $config;
                let __strategies = ($($strat,)+);
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__config.cases {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::new_value(&__strategies, &mut __rng);
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_tuples_and_vec_sample_in_bounds() {
        let mut rng = TestRng::deterministic();
        let strat = (1usize..5, crate::collection::vec(0u64..10, 2..6));
        for _ in 0..200 {
            let (n, v) = strat.new_value(&mut rng);
            assert!((1..5).contains(&n));
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = TestRng::deterministic();
        let strat = (0usize..10).prop_map(|x| x * 2);
        for _ in 0..100 {
            assert_eq!(strat.new_value(&mut rng) % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: bindings, trailing comma, multiple args.
        #[test]
        fn macro_smoke(a in 0usize..7, b in 1u32..3,) {
            prop_assert!(a < 7);
            prop_assert_ne!(b, 0);
            prop_assert_eq!(b.min(2), b);
        }
    }

    proptest! {
        /// Default-config arm.
        #[test]
        fn macro_default_config(x in 0u8..5) {
            prop_assert!(x < 5);
        }
    }
}
