//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate, vendored so the workspace builds without network access.
//!
//! Only the surface the Ecmas workspace actually uses is provided:
//! [`rngs::SmallRng`] (xoshiro256++), [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_bool`]/[`Rng::gen_range`], and [`seq::SliceRandom`]
//! (`shuffle`/`choose`). All generators are deterministic per seed, which
//! the workspace's tests and paper-table binaries rely on.
//!
//! Swap this for the real crate by changing one line in the root
//! `Cargo.toml` once a registry is reachable — no call sites change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Distribution traits (only the uniform sampling the workspace needs),
/// at the real crate's module path.
pub mod distributions {
    /// Uniform sampling over ranges.
    pub mod uniform {
        use crate::RngCore;

        /// A type that can be sampled uniformly from a half-open
        /// `low..high` range by [`Rng::gen_range`](crate::Rng::gen_range),
        /// mirroring `rand::distributions::uniform::SampleUniform`.
        pub trait SampleUniform: Copy + PartialOrd {
            /// Samples uniformly from `low..high`. `low < high` is the
            /// caller's responsibility (checked by `gen_range`).
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
        }

        macro_rules! impl_uniform_int {
            ($($t:ty),*) => {$(
                impl SampleUniform for $t {
                    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                        let span = (high as i128 - low as i128) as u128;
                        // Widening-multiply rejection-free mapping (Lemire);
                        // the tiny modulo bias is irrelevant for test
                        // workloads.
                        let x = rng.next_u64() as u128;
                        let v = (x * span) >> 64;
                        (low as i128 + v as i128) as $t
                    }
                }
            )*};
        }

        impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

        impl SampleUniform for f64 {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
                low + unit * (high - low)
            }
        }
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from the half-open range `low..high`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: distributions::uniform::SampleUniform>(
        &mut self,
        range: core::ops::Range<T>,
    ) -> T {
        assert!(range.start < range.end, "gen_range: empty range");
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (splitmix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++), the
    /// shim's stand-in for `rand::rngs::SmallRng`.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 state expansion, as the real SmallRng does.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extensions: in-place shuffle and uniform element choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
        }
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit");
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "{heads} heads of 10000");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements almost surely move");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [10, 20, 30];
        assert!(Vec::<i32>::new().as_slice().choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[(v.choose(&mut rng).unwrap() / 10 - 1) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
