//! Offline, API-compatible subset of the
//! [`criterion`](https://docs.rs/criterion/0.5) benchmark harness,
//! vendored so `cargo bench` works without network access.
//!
//! Benchmarks registered through [`criterion_group!`]/[`criterion_main!`]
//! run a short calibration pass, then time a batch sized to roughly
//! [`Criterion::measurement_time_ms`] and print `name  time/iter  iters`.
//! There is no statistical analysis, outlier detection, or HTML report —
//! the numbers are honest wall-clock means, good enough for the "does
//! compile time scale linearly with chip area" question the workspace's
//! benches ask. Swap for the real crate by changing one line in the root
//! `Cargo.toml` once a registry is reachable — no call sites change.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Results of every benchmark run so far, for the optional JSON dump.
static RESULTS: Mutex<Vec<(String, f64, u64)>> = Mutex::new(Vec::new());

/// Writes all recorded results as a JSON array to the path named by the
/// `CRITERION_JSON` environment variable, if set. Called automatically at
/// the end of [`criterion_main!`]; harnesses (CI) use it to archive the
/// perf trajectory as build artifacts.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let results = RESULTS.lock().expect("results mutex");
    let mut out = String::from("[\n");
    for (i, (id, nanos, iters)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        // Benchmark ids are plain identifiers; escape the two JSON
        // specials anyway so hand-written labels cannot corrupt the file.
        let id = id.replace('\\', "\\\\").replace('"', "\\\"");
        out.push_str(&format!(
            "  {{\"id\":\"{id}\",\"ns_per_iter\":{nanos:.1},\"iters\":{iters}}}{sep}\n"
        ));
    }
    out.push_str("]\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("writing {path}: {e}"));
    println!("wrote {} benchmark results to {path}", results.len());
}

/// Times closures handed to it by a benchmark function.
#[derive(Debug, Default)]
pub struct Bencher {
    last: Option<Measurement>,
    measurement_time: Duration,
}

/// One benchmark's result.
#[derive(Clone, Copy, Debug)]
struct Measurement {
    nanos_per_iter: f64,
    iters: u64,
}

impl Bencher {
    /// Calibrates, then times `routine` over a batch and records the mean.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibration: estimate per-iteration cost. A routine slower than
        // the calibration budget stops after one iteration so the
        // measurement-time budget stays meaningful for slow benches.
        let calib_budget = Duration::from_millis(5).min(self.measurement_time);
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        loop {
            black_box(routine());
            calib_iters += 1;
            if calib_start.elapsed() >= calib_budget || calib_iters >= 1_000_000 {
                break;
            }
        }
        let per_iter = calib_start.elapsed().as_secs_f64() / calib_iters as f64;
        let target = self.measurement_time.as_secs_f64();
        let iters = ((target / per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        let elapsed = start.elapsed();
        self.last =
            Some(Measurement { nanos_per_iter: elapsed.as_nanos() as f64 / iters as f64, iters });
    }
}

fn human_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:8.1} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:8.2} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:8.2} ms", nanos / 1_000_000.0)
    } else {
        format!("{:8.3} s ", nanos / 1_000_000_000.0)
    }
}

fn run_one(id: &str, measurement_time: Duration, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher { last: None, measurement_time };
    f(&mut bencher);
    match bencher.last {
        Some(m) => {
            println!("{id:<48} {} /iter  ({} iters)", human_time(m.nanos_per_iter), m.iters);
            RESULTS.lock().expect("results mutex").push((
                id.to_string(),
                m.nanos_per_iter,
                m.iters,
            ));
        }
        None => println!("{id:<48} (no measurement: bencher.iter never called)"),
    }
}

/// Entry point handed to each registered benchmark function.
#[derive(Debug)]
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { measurement_time: Duration::from_millis(Criterion::measurement_time_ms()) }
    }
}

impl Criterion {
    /// Target wall-clock time of one measurement batch, in milliseconds.
    /// (`CRITERION_MEASUREMENT_MS` overrides the 60 ms default.)
    #[must_use]
    pub fn measurement_time_ms() -> u64 {
        std::env::var("CRITERION_MEASUREMENT_MS").ok().and_then(|v| v.parse().ok()).unwrap_or(60)
    }

    /// Benchmarks a single routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.measurement_time, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), measurement_time: self.measurement_time, _parent: self }
    }
}

/// A `function_name/parameter` benchmark label.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Labels a benchmark as `function_name/parameter`.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{function_name}/{parameter}") }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes batches by time, not
    /// sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks `f` on `input` under `group_name/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.label);
        run_one(&full, self.measurement_time, &mut |b| f(b, input));
        self
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups, then dumping JSON results
/// when `CRITERION_JSON` names a file.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_and_prints() {
        let mut c = Criterion { measurement_time: Duration::from_millis(2) };
        let mut ran = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                ran += 1;
                black_box(2u64 + 2)
            });
        });
        assert!(ran >= 20, "calibration + batch should run the routine: {ran}");
    }

    #[test]
    fn group_with_input_passes_input() {
        let mut c = Criterion { measurement_time: Duration::from_millis(2) };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("f", 3u32), &41u64, |b, &x| {
            b.iter(|| black_box(x + 1));
        });
        group.finish();
    }

    #[test]
    fn id_formats_as_function_slash_parameter() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
    }
}
