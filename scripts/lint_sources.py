#!/usr/bin/env python3
"""Source lint gate for hazards the Rust toolchain cannot express.

Two bans, each guarding an invariant that broke (or nearly broke) once:

1. Nondeterministic inputs in cache-key paths. The compile cache is
   content-addressed: keys must be identical across platforms, runs, and
   Rust releases, so `DefaultHasher` (hash output unstable between
   releases) and `SystemTime::now` (wall clock in a pure key) are banned
   in every file that participates in key derivation.

2. Bare `.unwrap()` in the daemon's protocol code. `ecmasd` reads
   untrusted NDJSON from stdin and must answer malformed input with an
   `{"op":"error",...}` line — a panic kills every queued job. Unwraps
   inside the file's `mod tests` block are fine (tests should panic).

Vetted exceptions go in ALLOWLIST as (path-suffix, line-substring)
pairs; a line matching an entry is skipped. Keep each entry justified
with a comment.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# Files (or directories of files) that participate in cache-key
# derivation and therefore must stay deterministic.
CACHE_KEY_PATHS = [
    "crates/cache/src",
    "crates/core/src/stable.rs",
]
CACHE_KEY_BANS = ["DefaultHasher", "SystemTime::now"]

DAEMON = "crates/serve/src/daemon.rs"

# (path-suffix, line-substring): lines matching both are exempt.
ALLOWLIST: list[tuple[str, str]] = []


def allowed(path: Path, line: str) -> bool:
    rel = path.relative_to(REPO).as_posix()
    return any(rel.endswith(suffix) and needle in line for suffix, needle in ALLOWLIST)


def is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith(("//", "//!", "///"))


def rust_files(spec: str) -> list[Path]:
    root = REPO / spec
    if root.is_file():
        return [root]
    return sorted(root.rglob("*.rs"))


def check_cache_key_paths() -> list[str]:
    problems = []
    for spec in CACHE_KEY_PATHS:
        for path in rust_files(spec):
            rel = path.relative_to(REPO).as_posix()
            for lineno, line in enumerate(path.read_text().splitlines(), 1):
                if is_comment(line) or allowed(path, line):
                    continue
                for banned in CACHE_KEY_BANS:
                    if banned in line:
                        problems.append(
                            f"{rel}:{lineno}: `{banned}` in a cache-key path "
                            f"(keys must be deterministic): {line.strip()}"
                        )
    return problems


def check_daemon_unwraps() -> list[str]:
    path = REPO / DAEMON
    problems = []
    in_tests = False
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        if line.startswith("mod tests"):
            in_tests = True  # module blocks start at column 0; tests run to EOF
        if in_tests or is_comment(line) or allowed(path, line):
            continue
        if ".unwrap()" in line:
            problems.append(
                f"{DAEMON}:{lineno}: bare `.unwrap()` in daemon protocol code "
                f"(answer with an error line instead): {line.strip()}"
            )
    return problems


def main() -> int:
    problems = check_cache_key_paths() + check_daemon_unwraps()
    for p in problems:
        print(p, file=sys.stderr)
    if problems:
        print(f"lint_sources: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("lint_sources: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
