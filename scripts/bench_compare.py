#!/usr/bin/env python3
"""Compare a fresh smoke-bench JSON dump against the committed baseline.

Usage: bench_compare.py BASELINE.json FRESH.json [FRESH2.json ...]
                        [--threshold 1.25]

All files are `CRITERION_JSON` dumps (a list of {"id", "ns_per_iter",
"iters"} records). When several fresh files are given (CI runs the smoke
bench twice), the per-benchmark *minimum* is compared — one-sided noise
(a scheduler hiccup, a thermal dip) inflates a single run but almost
never two, while a genuine regression survives any number of reruns.
The job fails if any benchmark present in both the baseline and the
fresh set regressed by more than the threshold ratio — this is what
turns the per-push `BENCH_<sha>.json` artifacts from a write-only perf
log into a gate on the perf trajectory.

Ratios are *normalized by the suite's median ratio* before gating: the
baseline was recorded on one machine and CI runs on another, so a
uniform speed gap (slower runner, different CPU) shifts every benchmark
by the same factor — the median — and must not fail the gate. What the
gate catches is a benchmark regressing relative to the rest of the
suite, which is exactly what a code-level perf bug looks like. Both raw
and normalized ratios are printed.

Caveats, by design:
  * Benchmarks only in one file are reported but never fail the job
    (adding/removing a bench must not break CI).
  * The threshold is deliberately loose (default +25%) because smoke
    runs are short and CI machines are noisy. A real perf investigation
    re-runs locally with a longer CRITERION_MEASUREMENT_MS.
  * The baseline is a committed artifact: regenerate it (see
    EXPERIMENTS.md) whenever a PR deliberately moves a benchmark, the
    same way schedule pins are deliberately re-pinned.
"""

import argparse
import json
import statistics
import sys


def load(path):
    with open(path) as f:
        return {r["id"]: float(r["ns_per_iter"]) for r in json.load(f)}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("fresh", nargs="+",
                    help="one or more fresh runs; the per-bench minimum is compared")
    ap.add_argument("--threshold", type=float, default=1.25,
                    help="fail when fresh/baseline exceeds this ratio (default 1.25)")
    args = ap.parse_args()

    base = load(args.baseline)
    fresh = {}
    for path in args.fresh:
        for bench_id, nanos in load(path).items():
            fresh[bench_id] = min(nanos, fresh.get(bench_id, float("inf")))
    common = sorted(base.keys() & fresh.keys())
    median = statistics.median(fresh[i] / base[i] for i in common) if common else 1.0
    print(f"suite median ratio (machine-speed normalizer): {median:.2f}x")
    regressions = []
    width = max((len(i) for i in base), default=10)
    print(f"{'benchmark':<{width}}  {'baseline':>12}  {'fresh':>12}  ratio  normalized")
    for bench_id in sorted(base.keys() | fresh.keys()):
        if bench_id not in base:
            print(f"{bench_id:<{width}}  {'--':>12}  {fresh[bench_id]:>10.0f}ns  (new)")
            continue
        if bench_id not in fresh:
            print(f"{bench_id:<{width}}  {base[bench_id]:>10.0f}ns  {'--':>12}  (removed)")
            continue
        ratio = fresh[bench_id] / base[bench_id]
        normalized = ratio / median
        flag = ""
        if normalized > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((bench_id, normalized))
        print(f"{bench_id:<{width}}  {base[bench_id]:>10.0f}ns  {fresh[bench_id]:>10.0f}ns"
              f"  {ratio:5.2f}x  {normalized:5.2f}x{flag}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.2f}x:", file=sys.stderr)
        for bench_id, ratio in regressions:
            print(f"  {bench_id}: {ratio:.2f}x", file=sys.stderr)
        print("If the slowdown is intentional, regenerate BENCH_baseline.json "
              "(see EXPERIMENTS.md).", file=sys.stderr)
        return 1
    print("\nbench-compare OK: no benchmark regressed beyond "
          f"{args.threshold:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
