//! Reimplementations of the paper's two state-of-the-art baselines.
//!
//! * [`AutoBraid`] (Hua et al., MICRO '21) for the double-defect model:
//!   criticality-driven scheduling of braiding paths. Two properties the
//!   Ecmas paper singles out are modeled faithfully:
//!   1. **No cut-type awareness** — all tiles are created with the same
//!      cut type, so *every* CNOT is a 3-cycle direct execution. This is
//!      the source of the `≈ 3α` signature visible in the paper's Table I
//!      AutoBraid column.
//!   2. **Whole-channel path occupation** — channels are used as a single
//!      lane no matter how wide they are (the motivating observation of
//!      the Ecmas paper), so extra chip resources do not help.
//! * [`Edpci`] (Beverland et al., PRX Quantum 3, 020342) for lattice
//!   surgery: long-range CNOTs in one clock cycle via edge-disjoint
//!   Bell-state paths, with the *trivial snake mapping* the Ecmas paper
//!   criticizes — which is why EDPCI sometimes gets *worse* when the chip
//!   grows (the qubits just move farther apart).
//!
//! Both reuse the workspace's scheduling engine and routing substrate, so
//! their outputs pass the same independent [`validate_encoded`] checker as
//! Ecmas itself — and both implement the workspace-wide
//! [`ecmas::Compiler`] trait, so harnesses (and
//! [`ecmas::compile_batch`]) drive all three compilers through one
//! interface.
//!
//! [`validate_encoded`]: ecmas::encoded::validate_encoded
//!
//! # Example
//!
//! ```
//! use ecmas_baselines::AutoBraid;
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_circuit::benchmarks::ghz;
//!
//! let circuit = ghz(9);
//! let chip = Chip::min_viable(CodeModel::DoubleDefect, 9, 3)?;
//! let encoded = AutoBraid::new().compile(&circuit, &chip)?;
//! // Every CNOT costs 3 cycles on the chain: the 3α signature.
//! assert_eq!(encoded.cycles() as usize, 3 * circuit.depth());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Instant;

use ecmas::cut::CutType;
use ecmas::encoded::EncodedCircuit;
use ecmas::engine::{schedule_limited_with_stats, CutPolicy, GateOrder, ScheduleConfig};
use ecmas::error::CompileError;
use ecmas::mapping::snake_mapping;
use ecmas::session::{
    Algorithm, BandwidthDecision, CacheInfo, CompileReport, RouterStats, StageTimings,
};
use ecmas::ResourceEstimate;
use ecmas::{CompileOutcome, Compiler};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::Circuit;

/// Assembles the baseline [`CompileReport`]: baselines run no profiling
/// and no bandwidth adjusting, so `gpm`/`placement_restarts` are 0 and the
/// adjust decision is [`BandwidthDecision::Disabled`]; the router counters
/// and stage timings are real. `capacity` is the *target* chip's
/// communication capacity (not the internal clamped/dense view's), so
/// reports stay comparable across compilers on the same hardware — and
/// the [`ResourceEstimate`] is likewise computed against the target
/// chip, so per-job footprints are comparable too.
fn baseline_outcome(
    circuit: &Circuit,
    chip: &Chip,
    encoded: EncodedCircuit,
    stats: RouterStats,
    capacity: usize,
    map_time: std::time::Duration,
    schedule_time: std::time::Duration,
) -> CompileOutcome {
    let resources = ResourceEstimate::compute(
        chip,
        circuit.qubits(),
        circuit.cnot_count(),
        0,
        encoded.cycles(),
        &stats,
    );
    let report = CompileReport {
        algorithm: Algorithm::Limited,
        timings: StageTimings {
            profile: std::time::Duration::ZERO,
            map: map_time,
            schedule: schedule_time,
        },
        gpm: 0,
        capacity,
        placement_restarts: 0,
        bandwidth_adjust: BandwidthDecision::Disabled,
        router: stats,
        cycles: encoded.cycles(),
        events: encoded.events().len(),
        cut_modifications: encoded.modification_count(),
        cache: CacheInfo::disabled(),
        resources,
        diagnostics: Vec::new(),
        attempts: 1,
        last_fault: None,
    };
    CompileOutcome { encoded, report }
}

/// The AutoBraid baseline compiler (double defect).
///
/// See the [module docs](self) for the modeling choices.
#[derive(Clone, Copy, Debug, Default)]
pub struct AutoBraid {
    _private: (),
}

impl AutoBraid {
    /// Creates the baseline with its canonical settings.
    #[must_use]
    pub fn new() -> Self {
        AutoBraid { _private: () }
    }

    /// Compiles `circuit` for the double-defect model on `chip`.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] when the circuit does not
    /// fit, or an internal scheduling error.
    pub fn compile(&self, circuit: &Circuit, chip: &Chip) -> Result<EncodedCircuit, CompileError> {
        Ok(self.compile_outcome(circuit, chip)?.encoded)
    }
}

impl Compiler for AutoBraid {
    fn name(&self) -> &'static str {
        "autobraid"
    }

    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        let n = circuit.qubits();
        if n > chip.tile_slots() {
            return Err(CompileError::TooManyQubits { qubits: n, slots: chip.tile_slots() });
        }
        let t_map = Instant::now();
        // Whole-channel occupation: operate on a bandwidth-1 view of the
        // chip regardless of its real channel widths.
        let clamped = Chip::uniform(
            CodeModel::DoubleDefect,
            chip.tile_rows(),
            chip.tile_cols(),
            1,
            chip.code_distance(),
        )?;
        let mapping = snake_mapping(n, clamped.tile_rows(), clamped.tile_cols());
        let cuts = vec![CutType::X; n];
        let map_time = t_map.elapsed();
        let t_schedule = Instant::now();
        let (encoded, stats) = schedule_limited_with_stats(
            &circuit.dag(),
            &clamped,
            &mapping,
            Some(&cuts),
            ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::NeverModify },
        )?;
        let capacity = chip.communication_capacity();
        Ok(baseline_outcome(
            circuit,
            chip,
            encoded,
            stats,
            capacity,
            map_time,
            t_schedule.elapsed(),
        ))
    }
}

/// The EDPCI baseline compiler (lattice surgery).
///
/// See the [module docs](self) for the modeling choices.
#[derive(Clone, Copy, Debug, Default)]
pub struct Edpci {
    _private: (),
}

impl Edpci {
    /// Creates the baseline with its canonical settings.
    #[must_use]
    pub fn new() -> Self {
        Edpci { _private: () }
    }

    /// Compiles `circuit` for the lattice-surgery model on `chip`.
    ///
    /// EDPC has no notion of software-defined channel widths: every tile of
    /// the chip is uniformly a data slot or an ancilla. A chip with wide
    /// channels is therefore re-read as a *denser* array of unit-bandwidth
    /// tiles covering the same physical area, and the snake spreads the
    /// qubits across all of it — which is exactly why the Ecmas paper
    /// observes that EDPCI fails to capitalize on (and can even lose from)
    /// extra chip resources.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] when the circuit does not
    /// fit, or an internal scheduling error.
    pub fn compile(&self, circuit: &Circuit, chip: &Chip) -> Result<EncodedCircuit, CompileError> {
        Ok(self.compile_outcome(circuit, chip)?.encoded)
    }

    /// Converts a chip into the equivalent-area array of tiles with
    /// unit-bandwidth channels: in tile-width units one side measures
    /// `R + Σ bandwidths`, and a dense array of `R'` slots with b=1
    /// channels measures `2·R' + 1`.
    fn dense_view(chip: &Chip) -> Result<Chip, CompileError> {
        let width_units = |tiles: usize, lanes: u32| tiles + lanes as usize;
        let h: u32 = chip.h_bandwidths().iter().sum();
        let v: u32 = chip.v_bandwidths().iter().sum();
        let rows = (width_units(chip.tile_rows(), h).saturating_sub(1)) / 2;
        let cols = (width_units(chip.tile_cols(), v).saturating_sub(1)) / 2;
        Ok(Chip::uniform(
            CodeModel::LatticeSurgery,
            rows.max(chip.tile_rows()),
            cols.max(chip.tile_cols()),
            1,
            chip.code_distance(),
        )?)
    }
}

impl Compiler for Edpci {
    fn name(&self) -> &'static str {
        "edpci"
    }

    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        let n = circuit.qubits();
        if n > chip.tile_slots() {
            return Err(CompileError::TooManyQubits { qubits: n, slots: chip.tile_slots() });
        }
        let t_map = Instant::now();
        let dense = Self::dense_view(chip)?;
        let mapping = snake_mapping(n, dense.tile_rows(), dense.tile_cols());
        let map_time = t_map.elapsed();
        let t_schedule = Instant::now();
        let (encoded, stats) = schedule_limited_with_stats(
            &circuit.dag(),
            &dense,
            &mapping,
            None,
            ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::NeverModify },
        )?;
        let capacity = chip.communication_capacity();
        Ok(baseline_outcome(
            circuit,
            chip,
            encoded,
            stats,
            capacity,
            map_time,
            t_schedule.elapsed(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas::encoded::validate_encoded;
    use ecmas_circuit::benchmarks;

    #[test]
    fn autobraid_is_three_alpha_on_serial_circuits() {
        for c in [benchmarks::ghz(9), benchmarks::bv(10, 5)] {
            let chip = Chip::min_viable(CodeModel::DoubleDefect, c.qubits(), 3).unwrap();
            let enc = AutoBraid::new().compile(&c, &chip).unwrap();
            assert_eq!(
                enc.cycles() as usize,
                3 * c.depth(),
                "{}: serial circuits show the exact 3α signature",
                c.name()
            );
            validate_encoded(&c, &enc).unwrap();
        }
    }

    #[test]
    fn autobraid_ignores_extra_bandwidth() {
        let c = benchmarks::dnn_n8();
        let min = Chip::min_viable(CodeModel::DoubleDefect, 8, 3).unwrap();
        let wide = Chip::four_x(CodeModel::DoubleDefect, 8, 3).unwrap();
        let on_min = AutoBraid::new().compile(&c, &min).unwrap();
        let on_wide = AutoBraid::new().compile(&c, &wide).unwrap();
        assert_eq!(
            on_min.cycles(),
            on_wide.cycles(),
            "whole-channel occupation: wider channels change nothing"
        );
    }

    #[test]
    fn autobraid_never_modifies_cut_types() {
        let c = benchmarks::qft(8);
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 8, 3).unwrap();
        let enc = AutoBraid::new().compile(&c, &chip).unwrap();
        assert_eq!(enc.modification_count(), 0);
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn edpci_handles_snake_friendly_circuits_optimally() {
        // The ising chain is exactly the snake's best case: all CNOT pairs
        // adjacent after mapping.
        let c = benchmarks::ising_n10();
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 10, 3).unwrap();
        let enc = Edpci::new().compile(&c, &chip).unwrap();
        assert_eq!(enc.cycles() as usize, c.depth(), "snake-friendly ising runs at α");
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn edpci_validates_on_nontrivial_benchmarks() {
        for c in [benchmarks::qft_n10(), benchmarks::swap_test_n25()] {
            let chip = Chip::min_viable(CodeModel::LatticeSurgery, c.qubits(), 3).unwrap();
            let enc = Edpci::new().compile(&c, &chip).unwrap();
            validate_encoded(&c, &enc).unwrap();
            assert!(enc.cycles() as usize >= c.depth());
        }
    }

    #[test]
    fn trait_outcomes_match_inherent_compiles_and_carry_stats() {
        let c = benchmarks::qft(8);
        let dd = Chip::min_viable(CodeModel::DoubleDefect, 8, 3).unwrap();
        let ls = Chip::min_viable(CodeModel::LatticeSurgery, 8, 3).unwrap();
        let compilers: [(&dyn Compiler, &Chip); 2] =
            [(&AutoBraid::new(), &dd), (&Edpci::new(), &ls)];
        for (compiler, chip) in compilers {
            let outcome = compiler.compile_outcome(&c, chip).unwrap();
            validate_encoded(&c, &outcome.encoded).unwrap();
            assert_eq!(outcome.report.cycles, outcome.encoded.cycles());
            assert!(outcome.report.router.paths_found > 0, "{}", compiler.name());
            assert_eq!(outcome.report.gpm, 0, "baselines do not profile");
        }
        assert_eq!(AutoBraid::new().name(), "autobraid");
        assert_eq!(Edpci::new().name(), "edpci");
    }

    #[test]
    fn both_reject_oversized_circuits() {
        let c = benchmarks::qft_n10();
        let tiny_dd = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let tiny_ls = Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3).unwrap();
        assert!(matches!(
            AutoBraid::new().compile(&c, &tiny_dd),
            Err(CompileError::TooManyQubits { .. })
        ));
        assert!(matches!(
            Edpci::new().compile(&c, &tiny_ls),
            Err(CompileError::TooManyQubits { .. })
        ));
    }
}
