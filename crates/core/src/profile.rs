//! Circuit profiling: Algorithm Para-Finding (§IV-A1).
//!
//! The Circuit Parallelism Degree `PM` is the smallest possible maximum
//! layer width over all depth-optimal layerings of the gate DAG — the
//! circuit's peak demand for simultaneous CNOT paths. Computing it exactly
//! is NP-complete (machine minimization under minimum-length schedules,
//! Finke et al.), so the paper's Para-Finding heuristic assigns gates in
//! increasing slack order to the emptiest feasible layer, yielding an
//! estimate `ĝPM` plus the layered execution scheme that Ecmas-ReSu
//! consumes.

use ecmas_circuit::{GateDag, GateId};

/// A depth-`α` layered execution scheme: `layers[t]` are the gates of clock
/// layer `t + 1`, and `gpm` is the maximum layer width (the estimated
/// Circuit Parallelism Degree `ĝPM`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecutionScheme {
    layers: Vec<Vec<GateId>>,
    gpm: usize,
}

impl ExecutionScheme {
    /// The layers in execution order; every gate appears exactly once and
    /// parents appear in strictly earlier layers than children.
    #[must_use]
    pub fn layers(&self) -> &[Vec<GateId>] {
        &self.layers
    }

    /// The estimated Circuit Parallelism Degree `ĝPM`.
    #[must_use]
    pub fn gpm(&self) -> usize {
        self.gpm
    }

    /// Number of layers (equals the circuit depth `α`).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.layers.len()
    }
}

/// Algorithm Para-Finding: balances gates across the `α` layers.
///
/// Every gate `i` tracks the interval `[Low_i, High_i]` of layers it can
/// legally occupy (ASAP/ALAP under the depth-`α` horizon). Gates are
/// scheduled in increasing order of slack `High − Low`; each goes to the
/// emptiest layer in its interval, after which its children's `Low` and
/// parents' `High` tighten. The maximum resulting layer width is `ĝPM`.
///
/// # Example
///
/// ```
/// use ecmas_circuit::benchmarks::dnn_n8;
/// use ecmas::para_finding;
///
/// let scheme = para_finding(&dnn_n8().dag());
/// assert_eq!(scheme.depth(), 48);
/// assert_eq!(scheme.gpm(), 4); // 4 disjoint CNOTs per layer by design
/// ```
#[must_use]
pub fn para_finding(dag: &GateDag) -> ExecutionScheme {
    let n = dag.len();
    let depth = dag.depth();
    if n == 0 {
        return ExecutionScheme { layers: Vec::new(), gpm: 0 };
    }

    // Mutable Low/High bounds, 1-based.
    let mut low: Vec<usize> = (0..n).map(|g| dag.level(g)).collect();
    let mut high: Vec<usize> = (0..n).map(|g| dag.alap_level(g)).collect();
    let mut layer_of: Vec<usize> = vec![0; n]; // 0 = unscheduled
    let mut load: Vec<usize> = vec![0; depth + 1];

    // Simple priority scan: repeatedly take the unscheduled gate with the
    // smallest slack (ties: program order). O(g²) worst case but with the
    // early-exit scan on slack 0 this is fast for all our benchmarks.
    let mut remaining: Vec<GateId> = (0..n).collect();
    while !remaining.is_empty() {
        let mut best_idx = 0;
        let mut best_slack = usize::MAX;
        for (i, &g) in remaining.iter().enumerate() {
            let slack = high[g] - low[g];
            if slack < best_slack {
                best_slack = slack;
                best_idx = i;
                if slack == 0 {
                    break;
                }
            }
        }
        let g = remaining.swap_remove(best_idx);

        // Emptiest feasible layer in [low, high]; ties: earliest.
        debug_assert!(low[g] <= high[g], "window invariant");
        let mut target = low[g];
        for l in low[g]..=high[g] {
            if load[l] < load[target] {
                target = l;
            }
        }
        layer_of[g] = target;
        load[target] += 1;

        // Tighten the relatives' windows, cascading transitively so the
        // invariant low[child] > low[parent] (and symmetrically for high)
        // holds across unscheduled chains — a one-hop update can otherwise
        // strand a parent and child in the same layer.
        let mut stack: Vec<(GateId, usize)> =
            dag.children(g).iter().map(|&c| (c, target + 1)).collect();
        while let Some((v, min_low)) = stack.pop() {
            if layer_of[v] == 0 && low[v] < min_low {
                low[v] = min_low;
                stack.extend(dag.children(v).iter().map(|&c| (c, min_low + 1)));
            }
        }
        let mut stack: Vec<(GateId, usize)> =
            dag.parents(g).iter().map(|&p| (p, target - 1)).collect();
        while let Some((v, max_high)) = stack.pop() {
            if layer_of[v] == 0 && high[v] > max_high {
                high[v] = max_high;
                stack.extend(dag.parents(v).iter().map(|&p| (p, max_high - 1)));
            }
        }
    }

    // Rebalancing sweeps: pull gates out of the widest layers into the
    // emptiest feasible layer (bounded by the layers of their placed
    // parents and children). Keeps ĝPM close to the averaging bound.
    for _ in 0..4 {
        let mut moved = false;
        let max_load = *load[1..=depth].iter().max().unwrap_or(&0);
        if max_load * depth <= n {
            break; // already at the averaging bound
        }
        for g in 0..n {
            if load[layer_of[g]] < max_load {
                continue;
            }
            let lo = dag.parents(g).iter().map(|&p| layer_of[p] + 1).max().unwrap_or(1);
            let hi = dag.children(g).iter().map(|&c| layer_of[c] - 1).min().unwrap_or(depth);
            let best = (lo..=hi).min_by_key(|&l| (load[l], l)).unwrap_or(layer_of[g]);
            if load[best] + 1 < load[layer_of[g]] {
                load[layer_of[g]] -= 1;
                load[best] += 1;
                layer_of[g] = best;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }

    let mut layers = vec![Vec::new(); depth];
    // Keep program order within layers for determinism.
    for g in 0..n {
        layers[layer_of[g] - 1].push(g);
    }
    let gpm = layers.iter().map(Vec::len).max().unwrap_or(0);
    let slack_scheme = ExecutionScheme { layers, gpm };

    // Refinement: binary-search the smallest per-layer capacity for which
    // deadline-driven list scheduling (earliest-ALAP-first) fits the DAG in
    // α layers. Whichever of the two heuristics yields the smaller maximum
    // width wins; exact PM is NP-complete (Finke et al.), both are
    // estimates from above.
    let mut best = slack_scheme;
    let mut lo = n.div_ceil(depth);
    let mut hi = best.gpm;
    while lo < hi {
        let mid = usize::midpoint(lo, hi);
        match edf_layers(dag, mid, depth) {
            Some(scheme) => {
                hi = scheme.gpm;
                debug_assert!(scheme.gpm <= mid);
                best = scheme;
            }
            None => lo = mid + 1,
        }
    }
    best
}

/// Deadline-driven list scheduling: fills the `depth` layers front to back,
/// taking up to `capacity` available gates per layer in increasing ALAP
/// order. Returns `None` if some gate misses its deadline.
fn edf_layers(dag: &GateDag, capacity: usize, depth: usize) -> Option<ExecutionScheme> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    let n = dag.len();
    let mut pending_parents: Vec<usize> = (0..n).map(|g| dag.parents(g).len()).collect();
    // Gates whose parents are all scheduled, keyed by (alap, id).
    let mut ready: BinaryHeap<Reverse<(usize, GateId)>> = BinaryHeap::new();
    // Gates released for layers > current (children of the current layer).
    let mut next_release: Vec<GateId> = Vec::new();
    for (g, &pending) in pending_parents.iter().enumerate() {
        if pending == 0 {
            ready.push(Reverse((dag.alap_level(g), g)));
        }
    }
    let mut layers = vec![Vec::new(); depth];
    let mut gpm = 0;
    for (l, layer) in layers.iter_mut().enumerate() {
        let layer_no = l + 1;
        while layer.len() < capacity {
            let Some(&Reverse((alap, g))) = ready.peek() else { break };
            if alap < layer_no {
                return None; // deadline already missed
            }
            ready.pop();
            layer.push(g);
            for &child in dag.children(g) {
                pending_parents[child] -= 1;
                if pending_parents[child] == 0 {
                    next_release.push(child);
                }
            }
        }
        // Urgency check: anything left in `ready` with deadline == this
        // layer can no longer make it.
        if let Some(&Reverse((alap, _))) = ready.peek() {
            if alap <= layer_no {
                return None;
            }
        }
        for g in next_release.drain(..) {
            ready.push(Reverse((dag.alap_level(g), g)));
        }
        gpm = gpm.max(layer.len());
    }
    if layers.iter().map(Vec::len).sum::<usize>() != n {
        return None;
    }
    Some(ExecutionScheme { layers, gpm })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_circuit::{benchmarks, random, Circuit};

    /// Every gate exactly once; parents strictly before children.
    fn assert_valid_scheme(dag: &GateDag, scheme: &ExecutionScheme) {
        let mut layer_of = vec![usize::MAX; dag.len()];
        let mut seen = 0;
        for (l, layer) in scheme.layers().iter().enumerate() {
            for &g in layer {
                assert_eq!(layer_of[g], usize::MAX, "gate {g} scheduled twice");
                layer_of[g] = l;
                seen += 1;
            }
        }
        assert_eq!(seen, dag.len(), "all gates scheduled");
        for g in 0..dag.len() {
            for &p in dag.parents(g) {
                assert!(layer_of[p] < layer_of[g], "parent after child");
            }
        }
        // No layer may contain two gates sharing a qubit.
        for layer in scheme.layers() {
            let mut used = std::collections::HashSet::new();
            for &g in layer {
                let gate = dag.gate(g);
                assert!(used.insert(gate.control), "qubit reused in layer");
                assert!(used.insert(gate.target), "qubit reused in layer");
            }
        }
    }

    #[test]
    fn chain_has_gpm_one() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(2, 3);
        let dag = c.dag();
        let scheme = para_finding(&dag);
        assert_eq!(scheme.gpm(), 1);
        assert_eq!(scheme.depth(), 3);
        assert_valid_scheme(&dag, &scheme);
    }

    #[test]
    fn balances_slack_gates_away_from_busy_layers() {
        // Three parallel 1-gate chains of depth 1 and one chain of depth 3:
        // the three loose gates should spread across layers, giving ĝPM 2.
        let mut c = Circuit::new(10);
        c.cnot(0, 1); // chain
        c.cnot(1, 2);
        c.cnot(2, 3);
        c.cnot(4, 5); // loose
        c.cnot(6, 7); // loose
        c.cnot(8, 9); // loose
        let dag = c.dag();
        let scheme = para_finding(&dag);
        assert_eq!(scheme.depth(), 3);
        assert_eq!(scheme.gpm(), 2, "loose gates should spread: {:?}", scheme.layers());
        assert_valid_scheme(&dag, &scheme);
    }

    #[test]
    fn gpm_lower_bound_holds() {
        // ĝPM ≥ ⌈g/α⌉ always.
        for c in [benchmarks::qft_n10(), benchmarks::adder_n10(), benchmarks::swap_test_n25()] {
            let dag = c.dag();
            let scheme = para_finding(&dag);
            let lower = dag.len().div_ceil(dag.depth());
            assert!(scheme.gpm() >= lower, "{}: gpm {} < {lower}", c.name(), scheme.gpm());
            assert_valid_scheme(&dag, &scheme);
        }
    }

    #[test]
    fn dnn_gpm_matches_construction() {
        let scheme = para_finding(&benchmarks::dnn_n16().dag());
        assert_eq!(scheme.gpm(), 8);
        assert_eq!(scheme.depth(), 48);
    }

    #[test]
    fn layered_random_circuits_recover_parallelism() {
        // ĝPM is a heuristic upper estimate: it can never go below the
        // averaging bound ⌈g/α⌉ = pm, and on these layered circuits it
        // should land within one of the constructed parallelism.
        for pm in [2, 5, 9] {
            let c = random::layered(30, 20, pm, 77);
            let dag = c.dag();
            let scheme = para_finding(&dag);
            assert_eq!(scheme.depth(), 20);
            assert!(scheme.gpm() >= pm, "gpm below averaging bound");
            assert!(scheme.gpm() <= pm + 1, "gpm {} far from constructed {pm}", scheme.gpm());
            assert_valid_scheme(&dag, &scheme);
        }
    }

    #[test]
    fn empty_circuit() {
        let scheme = para_finding(&Circuit::new(3).dag());
        assert_eq!(scheme.gpm(), 0);
        assert_eq!(scheme.depth(), 0);
    }

    #[test]
    fn multiplier_scheme_is_valid() {
        // Regression: the one-hop window update used to strand a parent
        // and child in the same layer on this circuit (gates 123/124).
        let c = benchmarks::multiplier_n25();
        let dag = c.dag();
        assert_valid_scheme(&dag, &para_finding(&dag));
    }

    #[test]
    fn all_table1_schemes_are_valid() {
        for c in benchmarks::table1_suite() {
            if c.cnot_count() > 3000 {
                continue; // the two huge rows are covered by the bench harness
            }
            let dag = c.dag();
            assert_valid_scheme(&dag, &para_finding(&dag));
        }
    }

    #[test]
    fn ising_gpm_is_half_the_bonds() {
        // ising_n50: 98 gates in 4 layers ⇒ optimal layering puts ~25/layer.
        let scheme = para_finding(&benchmarks::ising_n50().dag());
        assert_eq!(scheme.depth(), 4);
        assert!(scheme.gpm() <= 25, "gpm {} too large", scheme.gpm());
    }
}
