//! The staged compilation-session API (paper Fig. 9 as typed stages).
//!
//! [`Ecmas::session`] starts a pipeline that advances through three typed
//! stages, each exposing its artifact and accepting overrides before the
//! next stage runs:
//!
//! * [`Profiled`] — the circuit's DAG, communication graph, and
//!   Para-Finding execution scheme (`ĝPM`). Override: [`Profiled::with_chip`].
//! * [`Mapped`] — the qubit → tile mapping and (double defect) the initial
//!   cut types. Overrides: [`Mapped::with_mapping`], [`Mapped::with_cuts`].
//! * [`Scheduled`] — the encoded circuit plus a structured
//!   [`CompileReport`].
//!
//! [`Mapped::schedule_auto`] makes the paper's resource-adaptive choice:
//! Ecmas-ReSu (Algorithm 2) when the chip's communication capacity reaches
//! `ĝPM`, the limited-resources scheduler (Algorithm 1) otherwise.
//!
//! The [`Compiler`] trait is the workspace-wide front door — `Ecmas` and
//! the `AutoBraid`/`Edpci` baselines all implement it, so harnesses drive
//! every compiler through one interface. Fan-out lives a layer up, in
//! `ecmas-serve`: its `CompileService` worker pool runs these stages with
//! a cancellation/deadline checkpoint at every boundary, and its
//! `compile_batch` facade fans independent compilations across scoped
//! threads.
//!
//! # Example
//!
//! ```
//! use ecmas::session::Algorithm;
//! use ecmas::Ecmas;
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_circuit::benchmarks::ghz;
//!
//! let circuit = ghz(9);
//! let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?;
//!
//! // Staged: inspect ĝPM, then the mapping, then schedule.
//! let profiled = Ecmas::default().session(&circuit, &chip)?;
//! assert_eq!(profiled.gpm(), 1); // a chain is fully serial
//! let mapped = profiled.map()?;
//! assert_eq!(mapped.mapping().len(), 9);
//! let outcome = mapped.schedule_auto()?.into_outcome();
//! assert_eq!(outcome.encoded.cycles() as usize, circuit.depth());
//! assert_eq!(outcome.report.algorithm, Algorithm::ReSu); // capacity 3 ≥ ĝPM 1
//! assert!(outcome.report.router.paths_found > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{Circuit, CommGraph, GateDag};
pub use ecmas_route::RouterStats;

use crate::compiler::Ecmas;
use crate::cut::{initialize_cuts, CutType};
use crate::diag::{diagnostics_to_json, Diagnostic};
use crate::encoded::EncodedCircuit;
use crate::engine::{schedule_limited_shared, ScheduleConfig};
use crate::error::CompileError;
use crate::mapping::{adjust_bandwidth, initial_mapping, LocationStrategy};
use crate::profile::{para_finding, ExecutionScheme};
use crate::resources::ResourceEstimate;
use crate::resu::schedule_sufficient_shared;

/// Which scheduling algorithm produced the encoded circuit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum Algorithm {
    /// Algorithm 1 — the limited-resources cycle-driven scheduler.
    Limited,
    /// Algorithm 2 — Ecmas-ReSu on sufficient communication capacity.
    ReSu,
}

impl Algorithm {
    /// Stable lowercase label (used in reports and JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::Limited => "limited",
            Algorithm::ReSu => "resu",
        }
    }
}

/// What the bandwidth-adjusting pre-processing step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum BandwidthDecision {
    /// The config disabled the step.
    Disabled,
    /// The step ran but left the chip unchanged (no slack to move).
    Unchanged,
    /// The adjusted chip was scheduled and won (fewer cycles). Only the
    /// limited-resources path produces this: it schedules both chips and
    /// keeps the cheaper result.
    Adopted,
    /// The adjusted chip was scheduled and lost; the base chip's schedule
    /// was kept (Algorithm 1 treats the adjustment as a candidate).
    Rejected,
    /// The adjusted chip was used without a comparison run — the ReSu
    /// path applies the adjustment up front and schedules once.
    Applied,
}

impl BandwidthDecision {
    /// Stable lowercase label (used in reports and JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BandwidthDecision::Disabled => "disabled",
            BandwidthDecision::Unchanged => "unchanged",
            BandwidthDecision::Adopted => "adopted",
            BandwidthDecision::Rejected => "rejected",
            BandwidthDecision::Applied => "applied",
        }
    }
}

/// Wall time spent in each pipeline stage.
#[derive(Clone, Copy, Debug, Default)]
pub struct StageTimings {
    /// Circuit profiling: DAG + communication graph + Para-Finding.
    pub profile: Duration,
    /// Initial mapping (shape determining + placement restarts) and cut
    /// initialization.
    pub map: Duration,
    /// Scheduling, including the bandwidth-adjust candidate run when one
    /// was made.
    pub schedule: Duration,
}

impl StageTimings {
    /// Sum over all stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.profile + self.map + self.schedule
    }
}

/// Where a compilation's result came from, compile-cache-wise.
///
/// `Disabled` is the default for every compile that never passed through
/// a cache (direct `Ecmas` calls, `compile_batch`, services configured
/// with `cache_bytes: 0`); the other variants are stamped by the
/// `ecmas-cache` integration in `ecmas-serve`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum CacheSource {
    /// No cache in front of this compilation.
    #[default]
    Disabled,
    /// Looked up, not found: compiled from scratch and inserted.
    Miss,
    /// Served verbatim from the cache without compiling.
    Hit,
    /// An identical compile was already in flight; this request waited
    /// for it and shares its result.
    Coalesced,
    /// A cached profile artifact was reused; mapping and scheduling ran.
    ProfileReuse,
    /// A cached map artifact (and its profile) was reused; only
    /// scheduling ran.
    MapReuse,
}

impl CacheSource {
    /// Stable lowercase label (used in reports and JSON).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CacheSource::Disabled => "disabled",
            CacheSource::Miss => "miss",
            CacheSource::Hit => "hit",
            CacheSource::Coalesced => "coalesced",
            CacheSource::ProfileReuse => "profile_reuse",
            CacheSource::MapReuse => "map_reuse",
        }
    }
}

/// Compile-cache observability attached to every [`CompileReport`]:
/// how this result was obtained plus a snapshot of the cache-wide
/// counters at the time it was produced.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheInfo {
    /// How this particular result was obtained.
    pub source: CacheSource,
    /// Full-result cache hits so far (including coalesced waits).
    pub hits: u64,
    /// Full-result cache misses so far.
    pub misses: u64,
    /// Stage-artifact (profile/map) reuses so far.
    pub stage_hits: u64,
    /// Entries evicted by the byte-budget LRU so far.
    pub evictions: u64,
    /// Estimated bytes currently resident in the cache.
    pub resident_bytes: u64,
    /// Requests that waited on an identical in-flight compile so far.
    pub coalesced_waits: u64,
}

impl CacheInfo {
    /// The no-cache placeholder every direct compilation carries.
    #[must_use]
    pub fn disabled() -> Self {
        CacheInfo::default()
    }
}

/// Structured diagnostics for one compilation: what ran, how long each
/// stage took, and how hard the router worked.
#[derive(Clone, Debug)]
pub struct CompileReport {
    /// Which scheduler produced the result.
    pub algorithm: Algorithm,
    /// Per-stage wall time.
    pub timings: StageTimings,
    /// Estimated Circuit Parallelism Degree `ĝPM` from Para-Finding.
    pub gpm: usize,
    /// The chip's communication capacity `⌊(b−1)/2⌋ + 3` (Theorem 2).
    pub capacity: usize,
    /// Randomized placement restarts actually performed (0 when a mapping
    /// was injected or the strategy is deterministic, e.g. the trivial
    /// snake).
    pub placement_restarts: usize,
    /// What the bandwidth-adjusting step did.
    pub bandwidth_adjust: BandwidthDecision,
    /// Router effort/conflict counters, summed over every scheduling run
    /// this compilation performed (including a rejected bandwidth-adjust
    /// candidate).
    pub router: RouterStats,
    /// Clock cycles Δ of the encoded circuit.
    pub cycles: u64,
    /// Scheduled events.
    pub events: usize,
    /// Cut-type modification events.
    pub cut_modifications: usize,
    /// Compile-cache provenance and counters ([`CacheInfo::disabled`]
    /// when no cache fronted this compilation).
    pub cache: CacheInfo,
    /// The job's space–time and channel-pressure footprint, computed
    /// deterministically from the schedule and router counters.
    pub resources: ResourceEstimate,
    /// Findings from the static analyzer, empty unless the caller ran
    /// an analyze pass (`ecmasc --analyze`, the daemon's analyze mode).
    /// The analyzer only observes — populating this never changes the
    /// schedule or its fingerprint.
    pub diagnostics: Vec<Diagnostic>,
    /// Service attempts this result took (1 = succeeded first try).
    /// Only the fault-tolerant compile service retries, so direct
    /// compilation always reports 1. Retried results are bit-identical
    /// to first-try results in everything but this provenance pair.
    pub attempts: u32,
    /// Provenance of the last transient failure the service retried
    /// away (`None` when the job succeeded on its first attempt).
    pub last_fault: Option<String>,
}

impl CompileReport {
    /// Serializes the report as a self-contained JSON object (no external
    /// serializer in this workspace — see `vendor/README.md`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let ms = |d: Duration| d.as_secs_f64() * 1e3;
        format!(
            concat!(
                "{{\"algorithm\":\"{}\",\"cycles\":{},\"events\":{},",
                "\"cut_modifications\":{},\"gpm\":{},\"capacity\":{},",
                "\"placement_restarts\":{},\"bandwidth_adjust\":\"{}\",",
                "\"timings_ms\":{{\"profile\":{:.3},\"map\":{:.3},",
                "\"schedule\":{:.3},\"total\":{:.3}}},",
                "\"router\":{{\"paths_found\":{},\"conflicts\":{},",
                "\"cells_expanded\":{},\"pruned_expansions\":{},",
                "\"path_cells\":{},\"peak_cycle_path_cells\":{},",
                "\"failed_searches\":{},",
                "\"cache_hits\":{},\"recolor_cells\":{}}},",
                "\"cache\":{{\"source\":\"{}\",\"hits\":{},\"misses\":{},",
                "\"stage_hits\":{},\"evictions\":{},\"resident_bytes\":{},",
                "\"coalesced_waits\":{}}},",
                "\"resources\":{},\"diagnostics\":{},",
                "\"attempts\":{},\"last_fault\":{}}}"
            ),
            self.algorithm.label(),
            self.cycles,
            self.events,
            self.cut_modifications,
            self.gpm,
            self.capacity,
            self.placement_restarts,
            self.bandwidth_adjust.label(),
            ms(self.timings.profile),
            ms(self.timings.map),
            ms(self.timings.schedule),
            ms(self.timings.total()),
            self.router.paths_found,
            self.router.conflicts,
            self.router.cells_expanded,
            self.router.pruned_expansions,
            self.router.path_cells,
            self.router.peak_cycle_path_cells,
            self.router.failed_searches,
            self.router.cache_hits,
            self.router.recolor_cells,
            self.cache.source.label(),
            self.cache.hits,
            self.cache.misses,
            self.cache.stage_hits,
            self.cache.evictions,
            self.cache.resident_bytes,
            self.cache.coalesced_waits,
            self.resources.to_json(),
            diagnostics_to_json(&self.diagnostics),
            self.attempts,
            self.last_fault
                .as_deref()
                .map_or_else(|| "null".to_string(), |f| format!("\"{}\"", crate::diag::escape(f)),),
        )
    }
}

/// What a compilation returns: the schedule plus its report.
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// The encoded circuit (mapping + conflict-free event schedule).
    pub encoded: EncodedCircuit,
    /// Structured diagnostics for this run.
    pub report: CompileReport,
}

/// The workspace-wide compiler interface: every compiler — `Ecmas` and
/// the baselines — turns a circuit + chip into a [`CompileOutcome`].
///
/// Object-safe, so harnesses can hold `&dyn Compiler` and benchmark all
/// compilers through one code path; `Sync` implementors work with the
/// `ecmas-serve` service layer (`compile_batch`, `CompileService`).
pub trait Compiler {
    /// Short display name for reports ("ecmas", "autobraid", "edpci").
    fn name(&self) -> &'static str;

    /// Compiles `circuit` for `chip`, returning the schedule and report.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] when the circuit does not
    /// fit, or an internal scheduling error.
    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError>;
}

impl Compiler for Ecmas {
    fn name(&self) -> &'static str {
        "ecmas"
    }

    /// The limited-resources pipeline (Algorithm 1) — the same semantics
    /// as [`Ecmas::compile`], with the report attached. Use
    /// [`Ecmas::compile_auto`] for the paper's resource-adaptive choice.
    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        Ok(self.session(circuit, chip)?.map()?.schedule()?.into_outcome())
    }
}

/// The detachable output of the profiling stage: everything
/// [`Profiled`] computed from the circuit alone, without the borrowed
/// circuit or the target chip.
///
/// Validity domain: an artifact is reusable for any compilation of the
/// *same CNOT stream on the same qubit count* — profiling never looks at
/// the chip or the config, so the chip and every config knob may differ.
/// Captured by [`Profiled::artifact`], resumed by
/// [`Ecmas::resume_session`]; the recorded `profile` timing in a resumed
/// report is the original compute time, not the (near-zero) reuse time.
#[derive(Clone, Debug)]
pub struct ProfileArtifact {
    dag: GateDag,
    comm: CommGraph,
    scheme: ExecutionScheme,
    profile_time: Duration,
}

impl ProfileArtifact {
    /// The estimated Circuit Parallelism Degree `ĝPM`.
    #[must_use]
    pub fn gpm(&self) -> usize {
        self.scheme.gpm()
    }

    /// Qubit count of the circuit this artifact was profiled from (used
    /// to sanity-check a resume against a different circuit).
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.comm.qubits()
    }

    /// Rough resident-size estimate in bytes, for byte-budgeted caches.
    /// Counts the DAG's adjacency (parents + children + per-gate levels),
    /// the communication graph's edge and neighbor lists, and the
    /// execution scheme's layer vectors.
    #[must_use]
    pub fn estimated_bytes(&self) -> u64 {
        let dag = 64 * self.dag.len() as u64;
        let comm = 48 * self.comm.edges().len() as u64 + 16 * self.comm.qubits() as u64;
        let scheme = 8 * self.dag.len() as u64 + 32 * self.scheme.layers().len() as u64;
        128 + dag + comm + scheme
    }
}

/// The detachable output of the mapping stage: the placement plus
/// (double defect) initial cut types, without the borrowed pipeline.
///
/// Validity domain: reusable only for the same circuit *and* the same
/// chip *and* the same mapping-relevant config knobs
/// (`location`, `cut_init` — see `stable::write_mapping_config`);
/// schedule-only knobs (`order`, `cut_policy`, `adjust_bandwidth`) may
/// differ. Captured by [`Mapped::artifact`], resumed by
/// [`Profiled::resume_mapped`], which re-validates the mapping and cuts
/// against the resuming pipeline's circuit and chip.
#[derive(Clone, Debug)]
pub struct MapArtifact {
    mapping: Vec<usize>,
    cuts: Option<Vec<CutType>>,
    cuts_injected: bool,
    placement_restarts: usize,
    map_time: Duration,
}

impl MapArtifact {
    /// The qubit → tile-slot mapping.
    #[must_use]
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// Rough resident-size estimate in bytes, for byte-budgeted caches.
    #[must_use]
    pub fn estimated_bytes(&self) -> u64 {
        let cuts = self.cuts.as_ref().map_or(0, |c| c.len() as u64);
        96 + 8 * self.mapping.len() as u64 + cuts
    }
}

/// Stage 1 — the profiled circuit: DAG, communication graph, and the
/// Para-Finding execution scheme. See the [module docs](self).
#[derive(Clone, Debug)]
pub struct Profiled<'c> {
    config: crate::compiler::EcmasConfig,
    circuit: &'c Circuit,
    // Shared, not owned: this one Arc flows through every scheduling run
    // into the resulting `EncodedCircuit`, so a compilation clones the
    // chip exactly once (here), however many schedule candidates it runs.
    chip: Arc<Chip>,
    dag: GateDag,
    comm: CommGraph,
    scheme: ExecutionScheme,
    profile_time: Duration,
}

impl<'c> Profiled<'c> {
    pub(crate) fn start(
        config: crate::compiler::EcmasConfig,
        circuit: &'c Circuit,
        chip: &Chip,
    ) -> Result<Self, CompileError> {
        check_fit(circuit.qubits(), chip)?;
        let t = Instant::now();
        let dag = circuit.dag();
        let comm = circuit.comm_graph();
        let scheme = para_finding(&dag);
        Ok(Profiled {
            config,
            circuit,
            chip: Arc::new(chip.clone()),
            dag,
            comm,
            scheme,
            profile_time: t.elapsed(),
        })
    }

    pub(crate) fn resume(
        config: crate::compiler::EcmasConfig,
        circuit: &'c Circuit,
        chip: &Chip,
        artifact: &ProfileArtifact,
    ) -> Result<Self, CompileError> {
        check_fit(circuit.qubits(), chip)?;
        if artifact.qubits() != circuit.qubits() {
            return Err(CompileError::InvalidMapping {
                reason: format!(
                    "profile artifact covers {} qubits, circuit has {}",
                    artifact.qubits(),
                    circuit.qubits()
                ),
            });
        }
        Ok(Profiled {
            config,
            circuit,
            chip: Arc::new(chip.clone()),
            dag: artifact.dag.clone(),
            comm: artifact.comm.clone(),
            scheme: artifact.scheme.clone(),
            profile_time: artifact.profile_time,
        })
    }

    /// Detaches the profiling outputs for caching; the stage itself is
    /// untouched. See [`ProfileArtifact`] for the reuse rules.
    #[must_use]
    pub fn artifact(&self) -> ProfileArtifact {
        ProfileArtifact {
            dag: self.dag.clone(),
            comm: self.comm.clone(),
            scheme: self.scheme.clone(),
            profile_time: self.profile_time,
        }
    }

    /// Skips the mapping stage by resuming a cached [`MapArtifact`],
    /// re-validating its mapping and cuts against this pipeline's circuit
    /// and chip. The caller is responsible for the semantic validity
    /// rules (same circuit, chip, `location`, and `cut_init` as the run
    /// that produced the artifact — see [`MapArtifact`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidMapping`] when the mapping does not
    /// assign every qubit a distinct in-range tile slot, or
    /// [`CompileError::CutTypesMismatch`] when the cuts disagree with the
    /// chip's code model.
    pub fn resume_mapped(self, artifact: &MapArtifact) -> Result<Mapped<'c>, CompileError> {
        let cuts_ok = match self.chip.model() {
            CodeModel::DoubleDefect => {
                artifact.cuts.as_ref().is_some_and(|c| c.len() == self.circuit.qubits())
            }
            CodeModel::LatticeSurgery => artifact.cuts.is_none(),
        };
        if !cuts_ok {
            return Err(CompileError::CutTypesMismatch);
        }
        let mapped = Mapped {
            profiled: self,
            mapping: Vec::new(),
            cuts: artifact.cuts.clone(),
            cuts_injected: artifact.cuts_injected,
            placement_restarts: artifact.placement_restarts,
            map_time: artifact.map_time,
        };
        // `with_mapping` re-validates length, range, and uniqueness but
        // zeroes `placement_restarts` (its injected-mapping contract), so
        // restore the artifact's recorded value afterwards.
        let mut mapped = mapped.with_mapping(artifact.mapping.clone())?;
        mapped.placement_restarts = artifact.placement_restarts;
        Ok(mapped)
    }

    /// The circuit being compiled.
    #[must_use]
    pub fn circuit(&self) -> &'c Circuit {
        self.circuit
    }

    /// The target chip.
    #[must_use]
    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    /// The Para-Finding execution scheme (layered, depth `α`).
    #[must_use]
    pub fn scheme(&self) -> &ExecutionScheme {
        &self.scheme
    }

    /// The estimated Circuit Parallelism Degree `ĝPM`.
    #[must_use]
    pub fn gpm(&self) -> usize {
        self.scheme.gpm()
    }

    /// `true` when the chip's communication capacity reaches `ĝPM` — the
    /// condition under which [`Mapped::schedule_auto`] picks Ecmas-ReSu.
    #[must_use]
    pub fn resources_sufficient(&self) -> bool {
        self.chip.communication_capacity() >= self.scheme.gpm()
    }

    /// Replaces the target chip (e.g. to re-plan the same profile on a
    /// wider lattice) and re-checks that the circuit fits.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] if it does not.
    pub fn with_chip(mut self, chip: Chip) -> Result<Self, CompileError> {
        check_fit(self.circuit.qubits(), &chip)?;
        self.chip = Arc::new(chip);
        Ok(self)
    }

    /// Advances to the mapping stage: shape determining + placement (with
    /// the configured restarts) and, for double defect, cut-type
    /// initialization.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] if the circuit does not fit
    /// the chip.
    pub fn map(self) -> Result<Mapped<'c>, CompileError> {
        let t = Instant::now();
        let mapping = initial_mapping(&self.comm, &self.chip, self.config.location)?;
        let cuts = match self.chip.model() {
            CodeModel::DoubleDefect => {
                Some(initialize_cuts(&self.dag, &self.comm, self.config.cut_init))
            }
            CodeModel::LatticeSurgery => None,
        };
        // Randomized placement restarts actually performed: the Ecmas
        // strategy runs its configured multi-start, the partitioner is one
        // run, and the trivial snake performs no placement at all.
        let placement_restarts = match self.config.location {
            LocationStrategy::Ecmas { restarts, .. } => restarts,
            LocationStrategy::Partitioner { .. } => 1,
            _ => 0,
        };
        Ok(Mapped {
            profiled: self,
            mapping,
            cuts,
            cuts_injected: false,
            placement_restarts,
            map_time: t.elapsed(),
        })
    }
}

/// Stage 2 — the mapped circuit: qubit → tile assignment plus (double
/// defect) initial cut types, both overridable before scheduling.
#[derive(Clone, Debug)]
pub struct Mapped<'c> {
    profiled: Profiled<'c>,
    mapping: Vec<usize>,
    cuts: Option<Vec<CutType>>,
    cuts_injected: bool,
    placement_restarts: usize,
    map_time: Duration,
}

impl<'c> Mapped<'c> {
    /// Detaches the mapping outputs for caching; the stage itself is
    /// untouched. See [`MapArtifact`] for the reuse rules.
    #[must_use]
    pub fn artifact(&self) -> MapArtifact {
        MapArtifact {
            mapping: self.mapping.clone(),
            cuts: self.cuts.clone(),
            cuts_injected: self.cuts_injected,
            placement_restarts: self.placement_restarts,
            map_time: self.map_time,
        }
    }

    /// The qubit → tile-slot mapping.
    #[must_use]
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// The pipeline's initial cut types (`None` for lattice surgery).
    ///
    /// These are what [`schedule`](Self::schedule) (Algorithm 1) uses.
    /// [`schedule_resu`](Self::schedule_resu) chooses its own first-batch
    /// coloring — the paper's Algorithm 2 treats it as free — and only
    /// honors cuts explicitly injected via [`with_cuts`](Self::with_cuts),
    /// so on the ReSu path the scheduled `initial_cuts()` may differ from
    /// this accessor.
    #[must_use]
    pub fn cuts(&self) -> Option<&[CutType]> {
        self.cuts.as_deref()
    }

    /// The target chip.
    #[must_use]
    pub fn chip(&self) -> &Chip {
        &self.profiled.chip
    }

    /// The Para-Finding execution scheme.
    #[must_use]
    pub fn scheme(&self) -> &ExecutionScheme {
        &self.profiled.scheme
    }

    /// The estimated Circuit Parallelism Degree `ĝPM`.
    #[must_use]
    pub fn gpm(&self) -> usize {
        self.profiled.gpm()
    }

    /// Injects a mapping (ablation studies, externally computed
    /// placements). The report's `placement_restarts` becomes 0.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::InvalidMapping`] unless `mapping` assigns
    /// every qubit a distinct in-range *live* tile slot (defective slots
    /// cannot hold a qubit).
    pub fn with_mapping(mut self, mapping: Vec<usize>) -> Result<Self, CompileError> {
        let n = self.profiled.circuit.qubits();
        let slots = self.profiled.chip.tile_slots();
        if mapping.len() != n {
            return Err(CompileError::InvalidMapping {
                reason: format!("{} entries for {n} qubits", mapping.len()),
            });
        }
        let mut seen = vec![false; slots];
        for &slot in &mapping {
            if slot >= slots {
                return Err(CompileError::InvalidMapping {
                    reason: format!("tile slot {slot} out of range (chip has {slots})"),
                });
            }
            if self.profiled.chip.is_dead(slot) {
                return Err(CompileError::InvalidMapping {
                    reason: format!("tile slot {slot} is defective"),
                });
            }
            if std::mem::replace(&mut seen[slot], true) {
                return Err(CompileError::InvalidMapping {
                    reason: format!("tile slot {slot} assigned twice"),
                });
            }
        }
        self.mapping = mapping;
        self.placement_restarts = 0;
        Ok(self)
    }

    /// Injects initial cut types (Table III-style ablations).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::CutTypesMismatch`] unless the chip is
    /// double defect and `cuts` has one entry per qubit.
    pub fn with_cuts(mut self, cuts: Vec<CutType>) -> Result<Self, CompileError> {
        if self.profiled.chip.model() != CodeModel::DoubleDefect
            || cuts.len() != self.profiled.circuit.qubits()
        {
            return Err(CompileError::CutTypesMismatch);
        }
        self.cuts = Some(cuts);
        self.cuts_injected = true;
        Ok(self)
    }

    /// Schedules with Algorithm 1 (limited resources), running the
    /// bandwidth-adjust candidate when the config enables it and keeping
    /// whichever schedule is cheaper.
    ///
    /// # Errors
    ///
    /// Returns a scheduling error on internal model violations.
    pub fn schedule(self) -> Result<Scheduled, CompileError> {
        let t = Instant::now();
        let config = ScheduleConfig {
            order: self.profiled.config.order,
            cut_policy: self.profiled.config.cut_policy,
        };
        let chip = &self.profiled.chip;
        let (base, base_stats) = schedule_limited_shared(
            &self.profiled.dag,
            chip,
            &self.mapping,
            self.cuts.as_deref(),
            config,
        )?;
        let (encoded, stats, decision) = if !self.profiled.config.adjust_bandwidth {
            (base, base_stats, BandwidthDecision::Disabled)
        } else {
            // Bandwidth adjusting is a candidate, not a commitment:
            // stealing a lane from a lightly-used channel can cost
            // node-disjoint detours more than the hot channel gains, so
            // the cheaper schedule wins (the paper's
            // select-best-candidate spirit, Fig. 10c).
            let adjusted_chip = adjust_bandwidth(chip, &self.mapping, &self.profiled.comm);
            if adjusted_chip == **chip {
                (base, base_stats, BandwidthDecision::Unchanged)
            } else {
                let (adjusted, adj_stats) = schedule_limited_shared(
                    &self.profiled.dag,
                    &Arc::new(adjusted_chip),
                    &self.mapping,
                    self.cuts.as_deref(),
                    config,
                )?;
                let stats = base_stats.merged(adj_stats);
                if adjusted.cycles() < base.cycles() {
                    (adjusted, stats, BandwidthDecision::Adopted)
                } else {
                    (base, stats, BandwidthDecision::Rejected)
                }
            }
        };
        Ok(self.finish(Algorithm::Limited, encoded, stats, decision, t.elapsed()))
    }

    /// Schedules with Algorithm 2 (Ecmas-ReSu). Intended for chips built
    /// with `Chip::sufficient`; on smaller chips congested layers spill
    /// into extra cycles but the result stays valid.
    ///
    /// Cut types injected with [`with_cuts`](Self::with_cuts) seed the
    /// tiles' starting assignment: the first batch then pays the usual
    /// 3-cycle remap where its bipartition disagrees. Without an
    /// injection Algorithm 2 chooses the initial coloring freely (its
    /// first batch is free), as the paper describes.
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule).
    pub fn schedule_resu(self) -> Result<Scheduled, CompileError> {
        let t = Instant::now();
        let chip = &self.profiled.chip;
        let (chip, decision) = if self.profiled.config.adjust_bandwidth {
            let adjusted = adjust_bandwidth(chip, &self.mapping, &self.profiled.comm);
            if adjusted == **chip {
                (Arc::clone(chip), BandwidthDecision::Unchanged)
            } else {
                // No comparison run on this path (unlike `schedule`): the
                // adjusted chip is simply used.
                (Arc::new(adjusted), BandwidthDecision::Applied)
            }
        } else {
            (Arc::clone(chip), BandwidthDecision::Disabled)
        };
        let injected = if self.cuts_injected { self.cuts.as_deref() } else { None };
        let (encoded, stats) = schedule_sufficient_shared(
            &self.profiled.dag,
            &self.profiled.scheme,
            &chip,
            &self.mapping,
            injected,
        )?;
        Ok(self.finish(Algorithm::ReSu, encoded, stats, decision, t.elapsed()))
    }

    /// The paper's resource-adaptive choice (Fig. 9): Ecmas-ReSu when the
    /// chip's communication capacity reaches `ĝPM`, Algorithm 1 otherwise.
    ///
    /// # Errors
    ///
    /// As [`schedule`](Self::schedule).
    pub fn schedule_auto(self) -> Result<Scheduled, CompileError> {
        if self.profiled.resources_sufficient() {
            self.schedule_resu()
        } else {
            self.schedule()
        }
    }

    fn finish(
        self,
        algorithm: Algorithm,
        encoded: EncodedCircuit,
        router: RouterStats,
        bandwidth_adjust: BandwidthDecision,
        schedule_time: Duration,
    ) -> Scheduled {
        let resources = ResourceEstimate::compute(
            &self.profiled.chip,
            self.mapping.len(),
            self.profiled.circuit.cnot_count(),
            self.placement_restarts,
            encoded.cycles(),
            &router,
        );
        let report = CompileReport {
            algorithm,
            timings: StageTimings {
                profile: self.profiled.profile_time,
                map: self.map_time,
                schedule: schedule_time,
            },
            gpm: self.profiled.scheme.gpm(),
            capacity: self.profiled.chip.communication_capacity(),
            placement_restarts: self.placement_restarts,
            bandwidth_adjust,
            router,
            cycles: encoded.cycles(),
            events: encoded.events().len(),
            cut_modifications: encoded.modification_count(),
            cache: CacheInfo::disabled(),
            resources,
            diagnostics: Vec::new(),
            attempts: 1,
            last_fault: None,
        };
        Scheduled { outcome: CompileOutcome { encoded, report } }
    }
}

/// Stage 3 — the scheduled circuit: the encoded result plus its report.
#[derive(Clone, Debug)]
pub struct Scheduled {
    outcome: CompileOutcome,
}

impl Scheduled {
    /// The encoded circuit.
    #[must_use]
    pub fn encoded(&self) -> &EncodedCircuit {
        &self.outcome.encoded
    }

    /// The structured report.
    #[must_use]
    pub fn report(&self) -> &CompileReport {
        &self.outcome.report
    }

    /// Consumes the stage and returns the outcome.
    #[must_use]
    pub fn into_outcome(self) -> CompileOutcome {
        self.outcome
    }
}

fn check_fit(qubits: usize, chip: &Chip) -> Result<(), CompileError> {
    // Capacity is the *live* tile count: defective slots hold no qubit.
    if qubits > chip.live_tiles() {
        return Err(CompileError::TooManyQubits { qubits, slots: chip.live_tiles() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::EcmasConfig;
    use crate::encoded::validate_encoded;
    use ecmas_circuit::benchmarks;

    #[test]
    fn staged_equals_one_shot() {
        let c = benchmarks::qft_n10();
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
        let compiler = Ecmas::default();
        let one_shot = compiler.compile(&c, &chip).unwrap();
        let staged = compiler.session(&c, &chip).unwrap().map().unwrap().schedule().unwrap();
        assert_eq!(staged.encoded().events(), one_shot.events());
        assert_eq!(staged.encoded().mapping(), one_shot.mapping());
        assert_eq!(staged.report().cycles, one_shot.cycles());
    }

    #[test]
    fn report_is_populated() {
        let c = benchmarks::qft_n10();
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
        let outcome =
            Ecmas::default().session(&c, &chip).unwrap().map().unwrap().schedule().unwrap();
        let report = outcome.report();
        assert_eq!(report.algorithm, Algorithm::Limited);
        assert_eq!(report.capacity, 3);
        assert!(report.gpm >= 1);
        assert_eq!(report.placement_restarts, 8, "the default config's restarts");
        assert!(report.router.paths_found > 0);
        assert_eq!(report.cycles, outcome.encoded().cycles());
        assert_eq!(report.events, outcome.encoded().events().len());
        // Min-viable chips have no slack: the adjust step must be a no-op.
        assert_eq!(report.bandwidth_adjust, BandwidthDecision::Unchanged);
    }

    #[test]
    fn report_json_has_the_contract_keys() {
        let c = benchmarks::ghz(6);
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 6, 3).unwrap();
        let outcome = Ecmas::default().compile_auto(&c, &chip).unwrap();
        let json = outcome.report.to_json();
        for key in [
            "\"algorithm\"",
            "\"cycles\"",
            "\"timings_ms\"",
            "\"router\"",
            "\"gpm\"",
            "\"capacity\"",
            "\"bandwidth_adjust\"",
            "\"placement_restarts\"",
            "\"paths_found\"",
            "\"conflicts\"",
            "\"pruned_expansions\"",
            "\"failed_searches\"",
            "\"cache_hits\"",
            "\"recolor_cells\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn with_chip_replans_on_the_new_lattice() {
        let c = benchmarks::ghz(9);
        let small = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3).unwrap();
        let wide = Chip::four_x(CodeModel::LatticeSurgery, 9, 3).unwrap();
        let outcome = Ecmas::default()
            .session(&c, &small)
            .unwrap()
            .with_chip(wide.clone())
            .unwrap()
            .map()
            .unwrap()
            .schedule()
            .unwrap();
        assert_eq!(outcome.encoded().chip(), &wide);
    }

    #[test]
    fn with_chip_rejects_a_too_small_lattice() {
        let c = benchmarks::qft_n10();
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
        let tiny = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let err = Ecmas::default().session(&c, &chip).unwrap().with_chip(tiny).unwrap_err();
        assert_eq!(err, CompileError::TooManyQubits { qubits: 10, slots: 4 });
    }

    #[test]
    fn injected_mapping_is_validated_and_used() {
        let c = benchmarks::ghz(4);
        let chip = Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3).unwrap();
        let mapped = Ecmas::default().session(&c, &chip).unwrap().map().unwrap();

        // Wrong length.
        let err = mapped.clone().with_mapping(vec![0, 1, 2]).unwrap_err();
        assert!(matches!(err, CompileError::InvalidMapping { .. }));
        // Out of range.
        let err = mapped.clone().with_mapping(vec![0, 1, 2, 4]).unwrap_err();
        assert!(matches!(err, CompileError::InvalidMapping { .. }));
        // Duplicate slot.
        let err = mapped.clone().with_mapping(vec![0, 1, 1, 2]).unwrap_err();
        assert!(matches!(err, CompileError::InvalidMapping { .. }));

        let custom = mapped.with_mapping(vec![3, 2, 1, 0]).unwrap();
        assert_eq!(custom.mapping(), &[3, 2, 1, 0]);
        let outcome = custom.schedule().unwrap();
        assert_eq!(outcome.encoded().mapping(), &[3, 2, 1, 0]);
        assert_eq!(outcome.report().placement_restarts, 0, "injected mapping: no restarts");
        validate_encoded(&c, outcome.encoded()).unwrap();
    }

    #[test]
    fn injected_cuts_are_validated_and_used() {
        let c = benchmarks::ghz(4);
        let dd = Chip::min_viable(CodeModel::DoubleDefect, 4, 3).unwrap();
        let ls = Chip::min_viable(CodeModel::LatticeSurgery, 4, 3).unwrap();

        let err = Ecmas::default()
            .session(&c, &ls)
            .unwrap()
            .map()
            .unwrap()
            .with_cuts(vec![CutType::X; 4])
            .unwrap_err();
        assert_eq!(err, CompileError::CutTypesMismatch, "cuts are a double-defect concept");

        let mapped = Ecmas::default().session(&c, &dd).unwrap().map().unwrap();
        let err = mapped.clone().with_cuts(vec![CutType::X; 3]).unwrap_err();
        assert_eq!(err, CompileError::CutTypesMismatch);

        // All-same cuts force the 3α signature on a chain — visibly worse
        // than the pipeline's greedy bipartite coloring.
        let all_same = mapped.clone().with_cuts(vec![CutType::X; 4]).unwrap().schedule().unwrap();
        let greedy = mapped.schedule().unwrap();
        validate_encoded(&c, all_same.encoded()).unwrap();
        assert!(all_same.report().cycles > greedy.report().cycles);
    }

    #[test]
    fn injected_cuts_seed_the_resu_scheduler() {
        // A bipartite chain: ReSu's free first-batch coloring needs no
        // remap, but seeding it with all-same cuts forces one 3-cycle
        // remap batch before the layers run.
        let c = benchmarks::ghz(6);
        let scheme = para_finding(&c.dag());
        let chip = Chip::sufficient(CodeModel::DoubleDefect, 6, scheme.gpm().max(1), 3).unwrap();
        let mapped = Ecmas::default().session(&c, &chip).unwrap().map().unwrap();

        let free = mapped.clone().schedule_resu().unwrap();
        assert_eq!(free.report().cut_modifications, 0, "free initial coloring");

        let seeded =
            mapped.with_cuts(vec![CutType::X; 6]).unwrap().schedule_resu().unwrap().into_outcome();
        validate_encoded(&c, &seeded.encoded).unwrap();
        assert_eq!(
            seeded.encoded.initial_cuts(),
            Some(&[CutType::X; 6][..]),
            "the injected cuts are the schedule's initial cuts"
        );
        assert!(seeded.report.cut_modifications > 0, "all-same seed forces a remap");
        assert_eq!(seeded.report.cycles, free.report().cycles + 3, "one remap batch: +3 cycles");
    }

    #[test]
    fn auto_picks_resu_exactly_when_capacity_reaches_gpm() {
        let c = benchmarks::dnn_n8();
        let scheme = para_finding(&c.dag());
        assert!(scheme.gpm() > 3, "dnn_n8 must exceed the bandwidth-1 capacity");

        let min = Chip::min_viable(CodeModel::LatticeSurgery, 8, 3).unwrap();
        assert!(min.communication_capacity() < scheme.gpm());
        let limited = Ecmas::default().compile_auto(&c, &min).unwrap();
        assert_eq!(limited.report.algorithm, Algorithm::Limited);

        let sufficient = Chip::sufficient(CodeModel::LatticeSurgery, 8, scheme.gpm(), 3).unwrap();
        assert!(sufficient.communication_capacity() >= scheme.gpm());
        let resu = Ecmas::default().compile_auto(&c, &sufficient).unwrap();
        assert_eq!(resu.report.algorithm, Algorithm::ReSu);
        assert_eq!(resu.encoded.cycles() as usize, c.depth(), "LS ReSu is depth-optimal");
    }

    #[test]
    fn adjust_candidate_is_reported_on_wide_chips() {
        let c = benchmarks::dnn_n8();
        let chip = Chip::four_x(CodeModel::DoubleDefect, 8, 3).unwrap();
        let on = Ecmas::default().compile_outcome(&c, &chip).unwrap();
        assert!(matches!(
            on.report.bandwidth_adjust,
            BandwidthDecision::Adopted | BandwidthDecision::Rejected | BandwidthDecision::Unchanged
        ));
        let off = Ecmas::new(EcmasConfig { adjust_bandwidth: false, ..EcmasConfig::default() })
            .compile_outcome(&c, &chip)
            .unwrap();
        assert_eq!(off.report.bandwidth_adjust, BandwidthDecision::Disabled);
    }
}
