//! The encoded-circuit representation and its independent validator.
//!
//! Every compiler in the workspace emits an [`EncodedCircuit`]; the
//! [`validate_encoded`] oracle re-checks all of the paper's §III
//! constraints against the original circuit and chip, so no scheduler can
//! silently produce an illegal schedule with a flattering cycle count.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{Circuit, GateDag, GateId};
use ecmas_route::{Disjointness, Path};

use crate::cut::CutType;
use crate::diag::{Code, Diagnostic};

/// What a scheduled event physically does on the chip.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A one-cycle braiding operation between tiles of different cut types
    /// (double defect).
    Braid {
        /// The braiding path (tile cell → … → tile cell).
        path: Path,
    },
    /// A three-cycle direct CNOT between tiles of the *same* cut type via
    /// the in-tile ancilla (Fig. 3a). The inter-tile path is held for the
    /// first two cycles.
    DirectSameCut {
        /// The braiding path used by the two inter-tile braids.
        path: Path,
    },
    /// A one-cycle lattice-surgery CNOT through a Bell-state ancilla chain
    /// (Fig. 4).
    LatticeCnot {
        /// The ancilla-tile path.
        path: Path,
    },
    /// A three-cycle cut-type modification of one tile (Fig. 3b); the tile
    /// is busy but no channel is used.
    CutModification {
        /// The logical qubit whose tile flips cut type.
        qubit: usize,
    },
}

impl EventKind {
    /// Total latency of the event in clock cycles.
    #[must_use]
    #[inline]
    pub fn duration(&self) -> u64 {
        match self {
            EventKind::Braid { .. } | EventKind::LatticeCnot { .. } => 1,
            EventKind::DirectSameCut { .. } | EventKind::CutModification { .. } => 3,
        }
    }

    /// How many cycles (from the start) the event's path is held.
    #[must_use]
    #[inline]
    pub fn path_hold(&self) -> u64 {
        match self {
            EventKind::Braid { .. } | EventKind::LatticeCnot { .. } => 1,
            EventKind::DirectSameCut { .. } => 2,
            EventKind::CutModification { .. } => 0,
        }
    }

    /// The event's path, if it uses one.
    #[must_use]
    #[inline]
    pub fn path(&self) -> Option<&Path> {
        match self {
            EventKind::Braid { path }
            | EventKind::DirectSameCut { path }
            | EventKind::LatticeCnot { path } => Some(path),
            EventKind::CutModification { .. } => None,
        }
    }
}

/// One scheduled operation of the encoded circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The CNOT this event implements, or `None` for cut modifications.
    pub gate: Option<GateId>,
    /// Start cycle (0-based).
    pub start: u64,
    /// The physical operation.
    pub kind: EventKind,
}

impl Event {
    /// First cycle after the event completes.
    #[must_use]
    #[inline]
    pub fn end(&self) -> u64 {
        self.start + self.kind.duration()
    }
}

/// The output of a surface-code compiler: an initial mapping plus a
/// conflict-free, dependency-respecting schedule of events. The paper's
/// objective is the cycle count Δ ([`cycles`](Self::cycles)).
#[derive(Clone, Debug)]
pub struct EncodedCircuit {
    chip: Arc<Chip>,
    mapping: Vec<usize>,
    initial_cuts: Option<Vec<CutType>>,
    events: Vec<Event>,
    cycles: u64,
}

impl EncodedCircuit {
    /// Assembles an encoded circuit; Δ is the max event end.
    ///
    /// `mapping[q]` is the tile slot of logical qubit `q`;
    /// `initial_cuts` must be `Some` for the double-defect model.
    #[must_use]
    pub fn new(
        chip: Chip,
        mapping: Vec<usize>,
        initial_cuts: Option<Vec<CutType>>,
        events: Vec<Event>,
    ) -> Self {
        Self::new_shared(Arc::new(chip), mapping, initial_cuts, events)
    }

    /// [`new`](Self::new) over an already-shared chip — the form the
    /// schedulers use, so a compilation carries one `Arc<Chip>` from the
    /// session through every schedule candidate into the result instead
    /// of cloning the chip per run.
    #[must_use]
    pub fn new_shared(
        chip: Arc<Chip>,
        mapping: Vec<usize>,
        initial_cuts: Option<Vec<CutType>>,
        events: Vec<Event>,
    ) -> Self {
        let cycles = events.iter().map(Event::end).max().unwrap_or(0);
        EncodedCircuit { chip, mapping, initial_cuts, events, cycles }
    }

    /// The (possibly bandwidth-adjusted) chip the schedule targets.
    #[must_use]
    pub fn chip(&self) -> &Chip {
        self.chip.as_ref()
    }

    /// Tile slot of each logical qubit.
    #[must_use]
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// Initial cut types (double defect only).
    #[must_use]
    pub fn initial_cuts(&self) -> Option<&[CutType]> {
        self.initial_cuts.as_deref()
    }

    /// The schedule, sorted by start cycle.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The cycle count Δ — the paper's objective.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of cut-modification events (a diagnostic for the ablations).
    #[must_use]
    pub fn modification_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::CutModification { .. })).count()
    }
}

/// A violation found by [`validate_encoded`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ValidateError {
    /// A DAG gate is missing from the schedule or scheduled twice.
    GateCoverage {
        /// The gate in question.
        gate: GateId,
        /// How many times it was scheduled.
        times: usize,
    },
    /// A gate started before one of its DAG parents finished.
    DependencyOrder {
        /// The early gate.
        gate: GateId,
        /// The violated parent.
        parent: GateId,
    },
    /// Two events overlap on the same logical qubit.
    QubitOverlap {
        /// The shared qubit.
        qubit: usize,
    },
    /// A braid ran between equal cut types, or a direct-same-cut CNOT
    /// between different ones.
    CutTypeRule {
        /// The offending gate.
        gate: GateId,
    },
    /// A path is structurally invalid (non-adjacent steps, wrong endpoints,
    /// an interior cell on a mapped tile, or any cell on a defective tile).
    MalformedPath {
        /// The offending gate.
        gate: GateId,
    },
    /// Two simultaneous paths violate the model's disjointness rule.
    PathConflict {
        /// The clock cycle of the conflict.
        cycle: u64,
    },
    /// The event kind does not match the chip's code model.
    WrongModel,
    /// Mapping is malformed (slot out of range, reused, or defective).
    BadMapping,
    /// Per-cycle per-channel bandwidth conservation violated: more
    /// concurrent paths through one channel section than the channel has
    /// lanes. A disabled (bandwidth-0) channel has no lanes at all, so
    /// any path crossing its seam at a tile row/col trips this.
    ChannelOversubscribed {
        /// `true` for a horizontal channel, `false` for a vertical one.
        horizontal: bool,
        /// The channel's index within its orientation.
        channel: usize,
        /// The first cycle at which usage exceeds capacity.
        cycle: u64,
        /// Concurrent paths through the section at that cycle.
        used: u32,
        /// The channel's bandwidth (its lane count).
        capacity: u32,
    },
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidateError::GateCoverage { gate, times } => {
                write!(f, "gate {gate} scheduled {times} times (expected exactly once)")
            }
            ValidateError::DependencyOrder { gate, parent } => {
                write!(f, "gate {gate} starts before its parent {parent} completes")
            }
            ValidateError::QubitOverlap { qubit } => {
                write!(f, "two events overlap on qubit {qubit}")
            }
            ValidateError::CutTypeRule { gate } => {
                write!(f, "gate {gate} violates the cut-type rule for its event kind")
            }
            ValidateError::MalformedPath { gate } => write!(f, "gate {gate} has a malformed path"),
            ValidateError::PathConflict { cycle } => {
                write!(f, "two paths conflict at cycle {cycle}")
            }
            ValidateError::WrongModel => write!(f, "event kind does not match the code model"),
            ValidateError::BadMapping => {
                write!(f, "mapping reuses, overflows, or lands on defective tile slots")
            }
            ValidateError::ChannelOversubscribed { horizontal, channel, cycle, used, capacity } => {
                let orient = if horizontal { "h" } else { "v" };
                write!(
                    f,
                    "{orient}-channel {channel} oversubscribed at cycle {cycle}: \
                     {used} concurrent paths on bandwidth {capacity}"
                )
            }
        }
    }
}

impl Error for ValidateError {}

impl ValidateError {
    /// The stable diagnostic code this violation reports under.
    #[must_use]
    pub fn code(&self) -> Code {
        match self {
            ValidateError::GateCoverage { .. } => Code::GateCoverage,
            ValidateError::DependencyOrder { .. } => Code::DependencyOrder,
            ValidateError::QubitOverlap { .. } => Code::QubitOverlap,
            ValidateError::CutTypeRule { .. } => Code::CutTypeRule,
            ValidateError::MalformedPath { .. } => Code::MalformedPath,
            ValidateError::PathConflict { .. } => Code::PathConflict,
            ValidateError::WrongModel => Code::WrongModel,
            ValidateError::BadMapping => Code::BadMapping,
            ValidateError::ChannelOversubscribed { .. } => Code::ChannelOversubscribed,
        }
    }

    /// This violation as a coded [`Diagnostic`].
    #[must_use]
    pub fn to_diagnostic(&self) -> Diagnostic {
        Diagnostic::new(self.code(), self.to_string())
    }
}

/// Independently checks every constraint the paper places on an encoded
/// circuit (§III) and returns **every** violation found: complete gate
/// coverage, topological order, per-qubit exclusivity, cut-type legality
/// of each event kind, structural path validity, per-cycle path
/// disjointness (node-disjoint for double defect, edge-disjoint for
/// lattice surgery), and per-cycle per-channel bandwidth conservation.
///
/// The returned order is deterministic and section-major — the first
/// element is exactly what [`validate_encoded`] (the first-error facade)
/// reports. Sections run even when earlier ones found violations, except
/// where a violation makes a later check meaningless (an out-of-range
/// mapping slot suppresses path-endpoint checks; an unknown gate id
/// suppresses its dependency and cut-type checks).
#[must_use]
pub fn collect_violations(circuit: &Circuit, enc: &EncodedCircuit) -> Vec<ValidateError> {
    collect_violations_with_dag(circuit, &circuit.dag(), enc)
}

/// [`collect_violations`] against a pre-built dependency DAG, so callers
/// that already hold one ([`analyze_encoded`]) don't pay for a rebuild.
#[allow(clippy::too_many_lines)]
fn collect_violations_with_dag(
    circuit: &Circuit,
    dag: &GateDag,
    enc: &EncodedCircuit,
) -> Vec<ValidateError> {
    let mut out = Vec::new();
    let chip = enc.chip();
    let grid = chip.grid();
    let n = circuit.qubits();

    // Mapping sanity. One violation covers the whole mapping — but keep
    // scanning to learn whether every slot is at least in range, which
    // gates the mapping-dependent checks below.
    let mut used = vec![false; chip.tile_slots()];
    let mut map_bad = enc.mapping().len() != n;
    let mut slots_in_range = true;
    for &slot in enc.mapping() {
        if slot >= used.len() {
            map_bad = true;
            slots_in_range = false;
        } else {
            if used[slot] || chip.is_dead(slot) {
                map_bad = true;
            }
            used[slot] = true;
        }
    }
    if map_bad {
        out.push(ValidateError::BadMapping);
    }
    let mut mapped_cells = vec![false; grid.len()];
    for &s in enc.mapping() {
        if s < chip.tile_slots() {
            mapped_cells[grid.tile_cell(s)] = true;
        }
    }
    // Maps a gate end to its two endpoint tile cells, `None` when the
    // mapping cannot answer (wrong arity or out-of-range slot — already
    // reported as BadMapping above).
    let endpoint_cell = |q: usize| -> Option<usize> {
        let &slot = enc.mapping().get(q)?;
        (slot < chip.tile_slots()).then(|| grid.tile_cell(slot))
    };

    // Gate coverage, per-gate end times, model/event agreement and the
    // per-qubit busy intervals — one fused pass over the events (the
    // checks are independent; only dependency order below needs the
    // completed `end_of` array and so runs as a second pass).
    let mut times = vec![0usize; dag.len()];
    let mut end_of = vec![0u64; dag.len()];
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for e in enc.events() {
        if let Some(g) = e.gate {
            if g >= dag.len() {
                out.push(ValidateError::GateCoverage { gate: g, times: usize::MAX });
            } else {
                times[g] += 1;
                end_of[g] = e.end();
            }
        }
        let ok = matches!(
            (chip.model(), &e.kind),
            (CodeModel::DoubleDefect, EventKind::Braid { .. })
                | (CodeModel::DoubleDefect, EventKind::DirectSameCut { .. })
                | (CodeModel::DoubleDefect, EventKind::CutModification { .. })
                | (CodeModel::LatticeSurgery, EventKind::LatticeCnot { .. })
        );
        if !ok {
            out.push(ValidateError::WrongModel);
        }
        match (&e.kind, e.gate) {
            (EventKind::CutModification { qubit }, _) => {
                if let Some(list) = intervals.get_mut(*qubit) {
                    list.push((e.start, e.end()));
                } else {
                    // A modification of a qubit the circuit doesn't have.
                    out.push(ValidateError::WrongModel);
                }
            }
            (_, Some(g)) if g < dag.len() => {
                let gate = dag.gate(g);
                intervals[gate.control].push((e.start, e.end()));
                intervals[gate.target].push((e.start, e.end()));
            }
            _ => {}
        }
    }
    for (g, &t) in times.iter().enumerate() {
        if t != 1 {
            out.push(ValidateError::GateCoverage { gate: g, times: t });
        }
    }

    // Dependency order.
    for e in enc.events() {
        if let Some(g) = e.gate {
            if g >= dag.len() {
                continue;
            }
            for &p in dag.parents(g) {
                if e.start < end_of[p] {
                    out.push(ValidateError::DependencyOrder { gate: g, parent: p });
                }
            }
        }
    }

    // Per-qubit exclusivity.
    for (q, list) in intervals.iter_mut().enumerate() {
        list.sort_unstable();
        for w in list.windows(2) {
            if w[1].0 < w[0].1 {
                out.push(ValidateError::QubitOverlap { qubit: q });
            }
        }
    }

    // Cut-type legality over time (double defect only).
    if chip.model() == CodeModel::DoubleDefect {
        match enc.initial_cuts() {
            Some(init) if init.len() == n => {
                // Replay events in start order, flipping cuts when
                // modifications complete. Per-qubit exclusivity (already
                // checked) guarantees no gate overlaps a modification on
                // the same qubit.
                let mut cuts = init.to_vec();
                let mut ordered: Vec<&Event> = enc.events().iter().collect();
                ordered.sort_by_key(|e| e.start);
                // Pending flips: (completion cycle, qubit).
                let mut flips: Vec<(u64, usize)> = Vec::new();
                for e in &ordered {
                    flips.sort_unstable();
                    let due: Vec<usize> =
                        flips.iter().filter(|&&(t, _)| t <= e.start).map(|&(_, q)| q).collect();
                    flips.retain(|&(t, _)| t > e.start);
                    for q in due {
                        cuts[q] = cuts[q].flipped();
                    }
                    match (&e.kind, e.gate) {
                        (EventKind::CutModification { qubit }, _) if *qubit < n => {
                            flips.push((e.end(), *qubit));
                        }
                        (EventKind::Braid { .. }, Some(g)) if g < dag.len() => {
                            let gate = dag.gate(g);
                            if cuts[gate.control] == cuts[gate.target] {
                                out.push(ValidateError::CutTypeRule { gate: g });
                            }
                        }
                        (EventKind::DirectSameCut { .. }, Some(g)) if g < dag.len() => {
                            let gate = dag.gate(g);
                            if cuts[gate.control] != cuts[gate.target] {
                                out.push(ValidateError::CutTypeRule { gate: g });
                            }
                        }
                        _ => {}
                    }
                }
            }
            _ => out.push(ValidateError::WrongModel),
        }
    }

    // Structural path validity (one violation per offending path).
    for e in enc.events() {
        let Some(path) = e.kind.path() else { continue };
        let Some(g) = e.gate else {
            out.push(ValidateError::WrongModel);
            continue;
        };
        let cells = path.cells();
        if cells.len() < 2 {
            out.push(ValidateError::MalformedPath { gate: g });
            continue;
        }
        if g < dag.len() && slots_in_range {
            let gate = dag.gate(g);
            let (want_a, want_b) = (endpoint_cell(gate.control), endpoint_cell(gate.target));
            let (first, last) = (Some(cells[0]), Some(cells[cells.len() - 1]));
            if want_a.is_some()
                && want_b.is_some()
                && !((first == want_a && last == want_b) || (first == want_b && last == want_a))
            {
                out.push(ValidateError::MalformedPath { gate: g });
                continue;
            }
        }
        // One fused pass: every cell in range and off defective tiles, no
        // interior cell on a mapped slot, and unit-step adjacency — the
        // latter via index arithmetic (grid-adjacent ⇔ indices differ by
        // `cols`, or by 1 without wrapping a row boundary).
        let cols = grid.cols();
        let last = cells.len() - 1;
        let mut prev = None;
        let mut malformed = false;
        for (i, &c) in cells.iter().enumerate() {
            if c >= grid.len() || grid.is_dead(c) || (i != 0 && i != last && mapped_cells[c]) {
                malformed = true;
                break;
            }
            if let Some(p) = prev {
                let (lo, hi) = if p < c { (p, c) } else { (c, p) };
                let d = hi - lo;
                if d != cols && (d != 1 || lo % cols == cols - 1) {
                    malformed = true;
                    break;
                }
            }
            prev = Some(c);
        }
        if malformed {
            out.push(ValidateError::MalformedPath { gate: g });
        }
    }

    // Spatial disjointness (E008) and per-cycle per-channel bandwidth
    // conservation (E009), fused into a single start-ordered sweep over
    // the path cells — the hottest part of the validator.
    let mode = match chip.model() {
        CodeModel::DoubleDefect => Disjointness::Node,
        CodeModel::LatticeSurgery => Disjointness::Edge,
    };
    let mut order: Vec<usize> = (0..enc.events().len()).collect();
    order.sort_unstable_by_key(|&i| (enc.events()[i].start, i));
    sweep_spatial_conflicts(enc, mode, &order, &mut out);

    out
}

/// The fused spatial sweep behind [`collect_violations`]' E008/E009
/// sections: one start-ordered pass over every path's cells checks both
/// pairwise disjointness (node-disjoint in double defect, edge-disjoint
/// in lattice surgery — a window starting before a prior window on the
/// same cell/lattice-edge ends is an `E008` conflict) and the per-cycle
/// per-channel bandwidth conservation laws (`E009`), all of which hold
/// for every schedule the routers in this workspace emit (see
/// EXPERIMENTS.md for the calibration against real schedules):
///
/// 1. **Seam crossings** (both modes): a step between two tile rows or
///    two tile cols crosses a disabled channel outside any perpendicular
///    lane — capacity 0, always a violation.
/// 2. **Cross-section occupancy** (node mode): the paths concurrently
///    occupying cells of channel `ch` at cross-coordinate `x` may not
///    exceed `bandwidth(ch)` — there are only that many lane rows/cols.
/// 3. **Along-channel flux** (edge mode): the paths concurrently moving
///    *along* channel `ch` across the lane-internal boundary at `x`
///    may not exceed `bandwidth(ch)`. (Cross-section occupancy is not
///    a law in edge mode: the EDPC crossing construction legally stacks
///    a crossing path on top of every lane at one coordinate.)
///
/// Paths with out-of-range cells (already reported as `E007`
/// MalformedPath by the structural section) are skipped entirely.
fn sweep_spatial_conflicts(
    enc: &EncodedCircuit,
    mode: Disjointness,
    order: &[usize],
    out: &mut Vec<ValidateError>,
) {
    let chip = enc.chip();
    let grid = chip.grid();

    // Disjointness state: latest occupancy end per resource (cell in
    // node mode, lattice edge in edge mode). Edge ids: 2·cell for the
    // step toward `cell + 1`, 2·cell + 1 for the step toward
    // `cell + cols` (non-adjacent steps of malformed paths collapse onto
    // these ids harmlessly).
    let resource_count = match mode {
        Disjointness::Node => grid.len(),
        Disjointness::Edge => 2 * grid.len(),
    };
    let mut occupied_until = vec![0u64; resource_count];

    // Hoisted per-row/col lookup tables: the sweep below visits every
    // path cell, and the grid accessors each cost a bounds check plus an
    // Option load — flattening them makes the inner loops pure array
    // arithmetic. (`step_allowed` is exactly a seam-array + channel-array
    // lookup, so the seam law folds into the same walk for free.)
    let (rows, cols) = (grid.rows(), grid.cols());
    let h_ch: Vec<Option<usize>> = (0..rows).map(|r| grid.h_channel_of_row(r)).collect();
    let v_ch: Vec<Option<usize>> = (0..cols).map(|c| grid.v_channel_of_col(c)).collect();
    let h_blocked: Vec<bool> = (0..rows).map(|r| grid.h_seam_blocked(r)).collect();
    let v_blocked: Vec<bool> = (0..cols).map(|c| grid.v_seam_blocked(c)).collect();

    // Section keys are (horizontal, channel, cross-coordinate),
    // dense-indexed so each lives in a flat array with a precomputed
    // capacity; each path contributes one window per section it touches
    // (stamp-deduplicated, so a path snaking within one section still
    // counts once). Events arrive in start order, so per section it
    // suffices to keep the active windows' end cycles: prune the expired
    // ones, add the new window, and the section is oversubscribed the
    // moment more than `bandwidth` remain. Each section reports at most
    // once (the first violating cycle).
    let h_sections = (chip.tile_rows() + 1) * cols;
    let v_sections = (chip.tile_cols() + 1) * rows;
    let cap: Vec<u32> = (0..h_sections + v_sections)
        .map(|s| {
            if s < h_sections {
                chip.h_bandwidth(s / cols)
            } else {
                chip.v_bandwidth((s - h_sections) / rows)
            }
        })
        .collect();
    let mut active: Vec<Vec<u64>> = vec![Vec::new(); h_sections + v_sections];
    let mut reported = vec![false; h_sections + v_sections];
    let mut seen = vec![0u32; h_sections + v_sections];
    let mut stamp = 0u32;
    let mut touched: Vec<usize> = Vec::new();
    for &i in order {
        let e = &enc.events()[i];
        let Some(path) = e.kind.path() else { continue };
        let cells = path.cells();
        // Out-of-range cells were already reported as MalformedPath by
        // the structural section; skip the whole path rather than index
        // the tables with garbage.
        if cells.iter().any(|&c| c >= grid.len()) {
            continue;
        }
        let (start, end) = (e.start, e.start + e.kind.path_hold());
        stamp += 1;
        touched.clear();
        // Unit-step walk: the seam law (1) for both modes, the E008
        // resource claims, the along-channel flux sections (3) in edge
        // mode and the cross-section occupancy cells (2) in node mode —
        // coordinates carried forward so each cell is div/mod-decomposed
        // exactly once.
        let Some((&first, rest)) = cells.split_first() else { continue };
        let last_idx = cells.len() - 1;
        let (mut prev, mut r0, mut c0) = (first, first / cols, first % cols);
        if matches!(mode, Disjointness::Node) {
            // The first cell's sections (the walk below covers the rest).
            if let Some(ch) = h_ch[r0] {
                let s = ch * cols + c0;
                if seen[s] != stamp {
                    seen[s] = stamp;
                    touched.push(s);
                }
            }
            if let Some(ch) = v_ch[c0] {
                let s = h_sections + ch * rows + r0;
                if seen[s] != stamp {
                    seen[s] = stamp;
                    touched.push(s);
                }
            }
        }
        for (k, &cell) in rest.iter().enumerate() {
            let (r1, c1) = (cell / cols, cell % cols);
            if r0 == r1 {
                let cl = c0.min(c1);
                if c0.abs_diff(c1) == 1 && v_blocked[cl] && h_ch[r0].is_none() {
                    // Crossing the disabled v-channel between two tile
                    // cols: that channel's index is the lower tile col's
                    // index + 1.
                    out.push(ValidateError::ChannelOversubscribed {
                        horizontal: false,
                        channel: grid.tile_col_index(cl).map_or(0, |tc| tc + 1),
                        cycle: start,
                        used: 1,
                        capacity: 0,
                    });
                }
                if matches!(mode, Disjointness::Edge) {
                    if let Some(ch) = h_ch[r0] {
                        let s = ch * cols + cl;
                        if seen[s] != stamp {
                            seen[s] = stamp;
                            touched.push(s);
                        }
                    }
                }
            } else {
                let rl = r0.min(r1);
                if c0 == c1 && r0.abs_diff(r1) == 1 && h_blocked[rl] && v_ch[c0].is_none() {
                    out.push(ValidateError::ChannelOversubscribed {
                        horizontal: true,
                        channel: grid.tile_row_index(rl).map_or(0, |tr| tr + 1),
                        cycle: start,
                        used: 1,
                        capacity: 0,
                    });
                }
                if matches!(mode, Disjointness::Edge) {
                    if let Some(ch) = v_ch[c0] {
                        let s = h_sections + ch * rows + rl;
                        if seen[s] != stamp {
                            seen[s] = stamp;
                            touched.push(s);
                        }
                    }
                }
            }
            match mode {
                Disjointness::Edge => {
                    // Claim the lattice edge under this step.
                    let (a, b) = (prev.min(cell), prev.max(cell));
                    let id = 2 * a + usize::from(b != a + 1);
                    if start < occupied_until[id] {
                        out.push(ValidateError::PathConflict { cycle: start });
                    }
                    occupied_until[id] = occupied_until[id].max(end);
                }
                Disjointness::Node => {
                    if let Some(ch) = h_ch[r1] {
                        let s = ch * cols + c1;
                        if seen[s] != stamp {
                            seen[s] = stamp;
                            touched.push(s);
                        }
                    }
                    if let Some(ch) = v_ch[c1] {
                        let s = h_sections + ch * rows + r1;
                        if seen[s] != stamp {
                            seen[s] = stamp;
                            touched.push(s);
                        }
                    }
                    // Claim interior cells (endpoints are the mapped
                    // tiles themselves).
                    if k + 1 != last_idx {
                        if start < occupied_until[cell] {
                            out.push(ValidateError::PathConflict { cycle: start });
                        }
                        occupied_until[cell] = occupied_until[cell].max(end);
                    }
                }
            }
            prev = cell;
            (r0, c0) = (r1, c1);
        }
        for &section in &touched {
            if reported[section] {
                continue;
            }
            let ends = &mut active[section];
            ends.retain(|&t| t > start);
            ends.push(end);
            if ends.len() > cap[section] as usize {
                reported[section] = true;
                let (horizontal, channel) = if section < h_sections {
                    (true, section / cols)
                } else {
                    (false, (section - h_sections) / rows)
                };
                out.push(ValidateError::ChannelOversubscribed {
                    horizontal,
                    channel,
                    cycle: start,
                    used: u32::try_from(ends.len()).unwrap_or(u32::MAX),
                    capacity: cap[section],
                });
            }
        }
    }
}

/// First-error facade over [`collect_violations`]: the historical
/// `validate_encoded` contract every compiler test suite in the
/// workspace (Ecmas, Ecmas-ReSu, AutoBraid, EDPCI) is written against,
/// so a scheduling bug in any of them cannot silently produce an
/// illegal schedule with a flattering cycle count.
///
/// # Errors
///
/// Returns the first violation found.
pub fn validate_encoded(circuit: &Circuit, enc: &EncodedCircuit) -> Result<(), ValidateError> {
    match collect_violations(circuit, enc).into_iter().next() {
        None => Ok(()),
        Some(first) => Err(first),
    }
}

/// Runs every schedule-level analysis: all legality violations as
/// error-severity [`Diagnostic`]s (via [`collect_violations`]) plus the
/// idle-bubble (`H001`) and critical-path-slack (`H002`) hints.
#[must_use]
pub fn analyze_encoded(circuit: &Circuit, enc: &EncodedCircuit) -> Vec<Diagnostic> {
    let dag = circuit.dag();
    let mut out: Vec<Diagnostic> = collect_violations_with_dag(circuit, &dag, enc)
        .iter()
        .map(ValidateError::to_diagnostic)
        .collect();
    let n = circuit.qubits();
    let cycles = enc.cycles();
    if n == 0 || cycles == 0 {
        return out;
    }

    // H001 — idle bubbles: gaps between consecutive busy intervals of
    // the same qubit (time before a qubit's first event or after its
    // last is lead-in/lead-out, not a bubble).
    let mut busy: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for e in enc.events() {
        match (&e.kind, e.gate) {
            (EventKind::CutModification { qubit }, _) => {
                if let Some(list) = busy.get_mut(*qubit) {
                    list.push((e.start, e.end()));
                }
            }
            (_, Some(g)) if g < dag.len() => {
                let gate = dag.gate(g);
                busy[gate.control].push((e.start, e.end()));
                busy[gate.target].push((e.start, e.end()));
            }
            _ => {}
        }
    }
    let mut bubbles: u64 = 0;
    let mut bubble_cycles: u64 = 0;
    let mut busy_cycles: u64 = 0;
    for list in &mut busy {
        list.sort_unstable();
        busy_cycles += list.iter().map(|&(s, e)| e.saturating_sub(s)).sum::<u64>();
        for w in list.windows(2) {
            let gap = w[1].0.saturating_sub(w[0].1);
            if gap > 0 {
                bubbles += 1;
                bubble_cycles += gap;
            }
        }
    }
    if bubbles > 0 {
        let utilization = 100.0 * busy_cycles as f64 / (n as u64 * cycles) as f64;
        out.push(Diagnostic::new(
            Code::IdleBubbles,
            format!(
                "{bubbles} idle bubbles totalling {bubble_cycles} qubit-cycles \
                 (qubit utilization {utilization:.1}%)"
            ),
        ));
    }

    // H002 — critical-path slack: Δ minus the dependency-chain lower
    // bound, using each gate's actual event duration (1 for unscheduled
    // gates — the bound stays a lower bound).
    if !dag.is_empty() {
        let mut duration = vec![1u64; dag.len()];
        for e in enc.events() {
            if let Some(g) = e.gate {
                if g < dag.len() {
                    duration[g] = e.kind.duration();
                }
            }
        }
        let mut earliest_end = vec![0u64; dag.len()];
        for g in 0..dag.len() {
            let ready = dag.parents(g).iter().map(|&p| earliest_end[p]).max().unwrap_or(0);
            earliest_end[g] = ready + duration[g];
        }
        let bound = earliest_end.iter().copied().max().unwrap_or(0);
        let slack = cycles.saturating_sub(bound);
        out.push(Diagnostic::new(
            Code::CriticalPathSlack,
            format!(
                "critical-path lower bound {bound} cycles, schedule Δ {cycles} \
                 (slack {slack})"
            ),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::{Chip, CodeModel};
    use ecmas_circuit::Circuit;
    use ecmas_route::{Disjointness, Router};

    fn two_qubit_setup() -> (Circuit, Chip, Vec<usize>, Path) {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 2, 1, 3).unwrap();
        let mapping = vec![0, 1];
        let mut router = Router::new(chip.grid(), Disjointness::Node);
        router.block_tile(0);
        router.block_tile(1);
        let path = router.find_tile_path(0, 1, 0).unwrap();
        (c, chip, mapping, path)
    }

    #[test]
    fn valid_braid_schedule_passes() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(enc.cycles(), 1);
        validate_encoded(&c, &enc).expect("valid schedule");
    }

    #[test]
    fn braid_between_equal_cuts_rejected() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::CutTypeRule { gate: 0 }));
    }

    #[test]
    fn direct_same_cut_between_equal_cuts_passes() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::DirectSameCut { path } }],
        );
        assert_eq!(enc.cycles(), 3);
        validate_encoded(&c, &enc).expect("valid direct execution");
    }

    #[test]
    fn modification_then_braid_passes() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X]),
            vec![
                Event { gate: None, start: 0, kind: EventKind::CutModification { qubit: 0 } },
                Event { gate: Some(0), start: 3, kind: EventKind::Braid { path } },
            ],
        );
        assert_eq!(enc.cycles(), 4);
        validate_encoded(&c, &enc).expect("modification makes the braid legal");
    }

    #[test]
    fn missing_gate_detected() {
        let (c, chip, mapping, _) = two_qubit_setup();
        let enc = EncodedCircuit::new(chip, mapping, Some(vec![CutType::X, CutType::Z]), vec![]);
        assert_eq!(
            validate_encoded(&c, &enc),
            Err(ValidateError::GateCoverage { gate: 0, times: 0 })
        );
    }

    #[test]
    fn dependency_violation_detected() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(1, 2);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 3, 1, 3).unwrap();
        let mapping = vec![0, 1, 2];
        let mut router = Router::new(chip.grid(), Disjointness::Node);
        for t in 0..3 {
            router.block_tile(t);
        }
        let p01 = router.find_tile_path(0, 1, 0).unwrap();
        let p12 = router.find_tile_path(1, 2, 5).unwrap();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z, CutType::X]),
            vec![
                // Child starts at 0, parent at 5: illegal.
                Event { gate: Some(1), start: 0, kind: EventKind::Braid { path: p12 } },
                Event { gate: Some(0), start: 5, kind: EventKind::Braid { path: p01 } },
            ],
        );
        assert!(matches!(
            validate_encoded(&c, &enc),
            Err(ValidateError::DependencyOrder { .. }) | Err(ValidateError::QubitOverlap { .. })
        ));
    }

    #[test]
    fn qubit_overlap_detected() {
        // A cut modification on qubit 0 spans [0,3); running the braid at
        // cycle 1 overlaps it. (Two *gates* sharing a qubit are always
        // DAG-ordered, so modification-vs-gate is the real overlap case.)
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z]),
            vec![
                Event { gate: None, start: 0, kind: EventKind::CutModification { qubit: 0 } },
                Event { gate: Some(0), start: 1, kind: EventKind::Braid { path } },
            ],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::QubitOverlap { qubit: 0 }));
    }

    #[test]
    fn conflicting_paths_detected() {
        // Two events that (illegally) reuse the same interior cell in the
        // same cycle on independent qubit pairs.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let grid = chip.grid();
        let mapping = vec![0, 3, 1, 2];
        // Hand-build two paths through the central cell (2,2).
        let p03 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(0),
                grid.index(1, 2),
                grid.index(2, 2),
                grid.index(3, 2),
                grid.tile_cell(3),
            ],
        );
        let p12 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(1),
                grid.index(2, 3),
                grid.index(2, 2),
                grid.index(2, 1),
                grid.tile_cell(2),
            ],
        );
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z, CutType::X, CutType::Z]),
            vec![
                Event { gate: Some(0), start: 0, kind: EventKind::Braid { path: p03 } },
                Event { gate: Some(1), start: 0, kind: EventKind::Braid { path: p12 } },
            ],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::PathConflict { cycle: 0 }));
    }

    #[test]
    fn duplicate_mapping_rejected() {
        let (c, chip, _, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            vec![0, 0],
            Some(vec![CutType::X, CutType::Z]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::BadMapping));
    }

    #[test]
    fn wrong_model_event_rejected() {
        let (c, _, mapping, path) = two_qubit_setup();
        let ls_chip = Chip::uniform(CodeModel::LatticeSurgery, 1, 2, 1, 3).unwrap();
        let enc = EncodedCircuit::new(
            ls_chip,
            mapping,
            None,
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::WrongModel));
    }

    #[test]
    fn direct_hold_conflicts_across_cycles() {
        // A direct same-cut CNOT holds its path for two cycles; a braid
        // through the same cell at cycle 1 must be flagged.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let grid = chip.grid();
        let mapping = vec![0, 3, 1, 2];
        let p03 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(0),
                grid.index(1, 2),
                grid.index(2, 2),
                grid.index(3, 2),
                grid.tile_cell(3),
            ],
        );
        let p12 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(1),
                grid.index(2, 3),
                grid.index(2, 2),
                grid.index(2, 1),
                grid.tile_cell(2),
            ],
        );
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X, CutType::X, CutType::Z]),
            vec![
                Event { gate: Some(0), start: 0, kind: EventKind::DirectSameCut { path: p03 } },
                Event { gate: Some(1), start: 1, kind: EventKind::Braid { path: p12 } },
            ],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::PathConflict { cycle: 1 }));
    }
}
