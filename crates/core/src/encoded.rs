//! The encoded-circuit representation and its independent validator.
//!
//! Every compiler in the workspace emits an [`EncodedCircuit`]; the
//! [`validate_encoded`] oracle re-checks all of the paper's §III
//! constraints against the original circuit and chip, so no scheduler can
//! silently produce an illegal schedule with a flattering cycle count.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{Circuit, GateId};
use ecmas_route::{Disjointness, Path};

use crate::cut::CutType;

/// What a scheduled event physically does on the chip.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum EventKind {
    /// A one-cycle braiding operation between tiles of different cut types
    /// (double defect).
    Braid {
        /// The braiding path (tile cell → … → tile cell).
        path: Path,
    },
    /// A three-cycle direct CNOT between tiles of the *same* cut type via
    /// the in-tile ancilla (Fig. 3a). The inter-tile path is held for the
    /// first two cycles.
    DirectSameCut {
        /// The braiding path used by the two inter-tile braids.
        path: Path,
    },
    /// A one-cycle lattice-surgery CNOT through a Bell-state ancilla chain
    /// (Fig. 4).
    LatticeCnot {
        /// The ancilla-tile path.
        path: Path,
    },
    /// A three-cycle cut-type modification of one tile (Fig. 3b); the tile
    /// is busy but no channel is used.
    CutModification {
        /// The logical qubit whose tile flips cut type.
        qubit: usize,
    },
}

impl EventKind {
    /// Total latency of the event in clock cycles.
    #[must_use]
    pub fn duration(&self) -> u64 {
        match self {
            EventKind::Braid { .. } | EventKind::LatticeCnot { .. } => 1,
            EventKind::DirectSameCut { .. } | EventKind::CutModification { .. } => 3,
        }
    }

    /// How many cycles (from the start) the event's path is held.
    #[must_use]
    pub fn path_hold(&self) -> u64 {
        match self {
            EventKind::Braid { .. } | EventKind::LatticeCnot { .. } => 1,
            EventKind::DirectSameCut { .. } => 2,
            EventKind::CutModification { .. } => 0,
        }
    }

    /// The event's path, if it uses one.
    #[must_use]
    pub fn path(&self) -> Option<&Path> {
        match self {
            EventKind::Braid { path }
            | EventKind::DirectSameCut { path }
            | EventKind::LatticeCnot { path } => Some(path),
            EventKind::CutModification { .. } => None,
        }
    }
}

/// One scheduled operation of the encoded circuit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// The CNOT this event implements, or `None` for cut modifications.
    pub gate: Option<GateId>,
    /// Start cycle (0-based).
    pub start: u64,
    /// The physical operation.
    pub kind: EventKind,
}

impl Event {
    /// First cycle after the event completes.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.start + self.kind.duration()
    }
}

/// The output of a surface-code compiler: an initial mapping plus a
/// conflict-free, dependency-respecting schedule of events. The paper's
/// objective is the cycle count Δ ([`cycles`](Self::cycles)).
#[derive(Clone, Debug)]
pub struct EncodedCircuit {
    chip: Arc<Chip>,
    mapping: Vec<usize>,
    initial_cuts: Option<Vec<CutType>>,
    events: Vec<Event>,
    cycles: u64,
}

impl EncodedCircuit {
    /// Assembles an encoded circuit; Δ is the max event end.
    ///
    /// `mapping[q]` is the tile slot of logical qubit `q`;
    /// `initial_cuts` must be `Some` for the double-defect model.
    #[must_use]
    pub fn new(
        chip: Chip,
        mapping: Vec<usize>,
        initial_cuts: Option<Vec<CutType>>,
        events: Vec<Event>,
    ) -> Self {
        Self::new_shared(Arc::new(chip), mapping, initial_cuts, events)
    }

    /// [`new`](Self::new) over an already-shared chip — the form the
    /// schedulers use, so a compilation carries one `Arc<Chip>` from the
    /// session through every schedule candidate into the result instead
    /// of cloning the chip per run.
    #[must_use]
    pub fn new_shared(
        chip: Arc<Chip>,
        mapping: Vec<usize>,
        initial_cuts: Option<Vec<CutType>>,
        events: Vec<Event>,
    ) -> Self {
        let cycles = events.iter().map(Event::end).max().unwrap_or(0);
        EncodedCircuit { chip, mapping, initial_cuts, events, cycles }
    }

    /// The (possibly bandwidth-adjusted) chip the schedule targets.
    #[must_use]
    pub fn chip(&self) -> &Chip {
        self.chip.as_ref()
    }

    /// Tile slot of each logical qubit.
    #[must_use]
    pub fn mapping(&self) -> &[usize] {
        &self.mapping
    }

    /// Initial cut types (double defect only).
    #[must_use]
    pub fn initial_cuts(&self) -> Option<&[CutType]> {
        self.initial_cuts.as_deref()
    }

    /// The schedule, sorted by start cycle.
    #[must_use]
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// The cycle count Δ — the paper's objective.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Number of cut-modification events (a diagnostic for the ablations).
    #[must_use]
    pub fn modification_count(&self) -> usize {
        self.events.iter().filter(|e| matches!(e.kind, EventKind::CutModification { .. })).count()
    }
}

/// A violation found by [`validate_encoded`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ValidateError {
    /// A DAG gate is missing from the schedule or scheduled twice.
    GateCoverage {
        /// The gate in question.
        gate: GateId,
        /// How many times it was scheduled.
        times: usize,
    },
    /// A gate started before one of its DAG parents finished.
    DependencyOrder {
        /// The early gate.
        gate: GateId,
        /// The violated parent.
        parent: GateId,
    },
    /// Two events overlap on the same logical qubit.
    QubitOverlap {
        /// The shared qubit.
        qubit: usize,
    },
    /// A braid ran between equal cut types, or a direct-same-cut CNOT
    /// between different ones.
    CutTypeRule {
        /// The offending gate.
        gate: GateId,
    },
    /// A path is structurally invalid (non-adjacent steps, wrong endpoints,
    /// an interior cell on a mapped tile, or any cell on a defective tile).
    MalformedPath {
        /// The offending gate.
        gate: GateId,
    },
    /// Two simultaneous paths violate the model's disjointness rule.
    PathConflict {
        /// The clock cycle of the conflict.
        cycle: u64,
    },
    /// The event kind does not match the chip's code model.
    WrongModel,
    /// Mapping is malformed (slot out of range, reused, or defective).
    BadMapping,
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ValidateError::GateCoverage { gate, times } => {
                write!(f, "gate {gate} scheduled {times} times (expected exactly once)")
            }
            ValidateError::DependencyOrder { gate, parent } => {
                write!(f, "gate {gate} starts before its parent {parent} completes")
            }
            ValidateError::QubitOverlap { qubit } => {
                write!(f, "two events overlap on qubit {qubit}")
            }
            ValidateError::CutTypeRule { gate } => {
                write!(f, "gate {gate} violates the cut-type rule for its event kind")
            }
            ValidateError::MalformedPath { gate } => write!(f, "gate {gate} has a malformed path"),
            ValidateError::PathConflict { cycle } => {
                write!(f, "two paths conflict at cycle {cycle}")
            }
            ValidateError::WrongModel => write!(f, "event kind does not match the code model"),
            ValidateError::BadMapping => {
                write!(f, "mapping reuses, overflows, or lands on defective tile slots")
            }
        }
    }
}

impl Error for ValidateError {}

/// Independently checks every constraint the paper places on an encoded
/// circuit (§III): complete gate coverage, topological order, per-qubit
/// exclusivity, cut-type legality of each event kind, structural path
/// validity, and per-cycle path disjointness (node-disjoint for double
/// defect, edge-disjoint for lattice surgery).
///
/// This validator is shared by the test suites of *every* compiler in the
/// workspace (Ecmas, Ecmas-ReSu, AutoBraid, EDPCI), so a scheduling bug in
/// any of them cannot silently produce an illegal schedule with a
/// flattering cycle count.
///
/// # Errors
///
/// Returns the first violation found.
#[allow(clippy::too_many_lines)]
pub fn validate_encoded(circuit: &Circuit, enc: &EncodedCircuit) -> Result<(), ValidateError> {
    let chip = enc.chip();
    let grid = chip.grid();
    let dag = circuit.dag();
    let n = circuit.qubits();

    // Mapping sanity.
    if enc.mapping().len() != n {
        return Err(ValidateError::BadMapping);
    }
    let mut used = vec![false; chip.tile_slots()];
    for &slot in enc.mapping() {
        if slot >= used.len() || used[slot] || chip.is_dead(slot) {
            return Err(ValidateError::BadMapping);
        }
        used[slot] = true;
    }
    let mapped_cells: std::collections::HashSet<usize> =
        enc.mapping().iter().map(|&s| grid.tile_cell(s)).collect();

    // Gate coverage and per-gate end times.
    let mut times = vec![0usize; dag.len()];
    let mut end_of = vec![0u64; dag.len()];
    for e in enc.events() {
        if let Some(g) = e.gate {
            if g >= dag.len() {
                return Err(ValidateError::GateCoverage { gate: g, times: usize::MAX });
            }
            times[g] += 1;
            end_of[g] = e.end();
        }
    }
    for (g, &t) in times.iter().enumerate() {
        if t != 1 {
            return Err(ValidateError::GateCoverage { gate: g, times: t });
        }
    }

    // Model/event agreement.
    for e in enc.events() {
        let ok = matches!(
            (chip.model(), &e.kind),
            (CodeModel::DoubleDefect, EventKind::Braid { .. })
                | (CodeModel::DoubleDefect, EventKind::DirectSameCut { .. })
                | (CodeModel::DoubleDefect, EventKind::CutModification { .. })
                | (CodeModel::LatticeSurgery, EventKind::LatticeCnot { .. })
        );
        if !ok {
            return Err(ValidateError::WrongModel);
        }
    }

    // Dependency order.
    for e in enc.events() {
        if let Some(g) = e.gate {
            for &p in dag.parents(g) {
                if e.start < end_of[p] {
                    return Err(ValidateError::DependencyOrder { gate: g, parent: p });
                }
            }
        }
    }

    // Per-qubit exclusivity.
    let mut intervals: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
    for e in enc.events() {
        match (&e.kind, e.gate) {
            (EventKind::CutModification { qubit }, _) => {
                intervals[*qubit].push((e.start, e.end()));
            }
            (_, Some(g)) => {
                let gate = dag.gate(g);
                intervals[gate.control].push((e.start, e.end()));
                intervals[gate.target].push((e.start, e.end()));
            }
            _ => {}
        }
    }
    for (q, list) in intervals.iter_mut().enumerate() {
        list.sort_unstable();
        for w in list.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(ValidateError::QubitOverlap { qubit: q });
            }
        }
    }

    // Cut-type legality over time (double defect only).
    if chip.model() == CodeModel::DoubleDefect {
        let Some(init) = enc.initial_cuts() else {
            return Err(ValidateError::WrongModel);
        };
        if init.len() != n {
            return Err(ValidateError::WrongModel);
        }
        // Replay events in start order, flipping cuts when modifications
        // complete. Per-qubit exclusivity (already checked) guarantees no
        // gate overlaps a modification on the same qubit.
        let mut cuts = init.to_vec();
        let mut ordered: Vec<&Event> = enc.events().iter().collect();
        ordered.sort_by_key(|e| e.start);
        // Pending flips: (completion cycle, qubit).
        let mut flips: Vec<(u64, usize)> = Vec::new();
        for e in &ordered {
            flips.sort_unstable();
            let due: Vec<usize> =
                flips.iter().filter(|&&(t, _)| t <= e.start).map(|&(_, q)| q).collect();
            flips.retain(|&(t, _)| t > e.start);
            for q in due {
                cuts[q] = cuts[q].flipped();
            }
            match (&e.kind, e.gate) {
                (EventKind::CutModification { qubit }, _) => flips.push((e.end(), *qubit)),
                (EventKind::Braid { .. }, Some(g)) => {
                    let gate = dag.gate(g);
                    if cuts[gate.control] == cuts[gate.target] {
                        return Err(ValidateError::CutTypeRule { gate: g });
                    }
                }
                (EventKind::DirectSameCut { .. }, Some(g)) => {
                    let gate = dag.gate(g);
                    if cuts[gate.control] != cuts[gate.target] {
                        return Err(ValidateError::CutTypeRule { gate: g });
                    }
                }
                _ => {}
            }
        }
    }

    // Structural path validity.
    for e in enc.events() {
        let Some(path) = e.kind.path() else { continue };
        let g = e.gate.ok_or(ValidateError::WrongModel)?;
        let gate = dag.gate(g);
        let cells = path.cells();
        if cells.len() < 2 {
            return Err(ValidateError::MalformedPath { gate: g });
        }
        let want_a = grid.tile_cell(enc.mapping()[gate.control]);
        let want_b = grid.tile_cell(enc.mapping()[gate.target]);
        let (first, last) = (cells[0], cells[cells.len() - 1]);
        if !((first == want_a && last == want_b) || (first == want_b && last == want_a)) {
            return Err(ValidateError::MalformedPath { gate: g });
        }
        for w in cells.windows(2) {
            if grid.manhattan(w[0], w[1]) != 1 {
                return Err(ValidateError::MalformedPath { gate: g });
            }
        }
        // No step of any path may touch a defective tile's cell.
        if cells.iter().any(|&c| grid.is_dead(c)) {
            return Err(ValidateError::MalformedPath { gate: g });
        }
        for &c in path.interior() {
            if mapped_cells.contains(&c) {
                return Err(ValidateError::MalformedPath { gate: g });
            }
        }
    }

    // Spatial disjointness via per-resource interval sweep.
    let mode = match chip.model() {
        CodeModel::DoubleDefect => Disjointness::Node,
        CodeModel::LatticeSurgery => Disjointness::Edge,
    };
    let mut by_resource: HashMap<(usize, usize), Vec<(u64, u64)>> = HashMap::new();
    for e in enc.events() {
        let Some(path) = e.kind.path() else { continue };
        let hold = e.kind.path_hold();
        let window = (e.start, e.start + hold);
        match mode {
            Disjointness::Node => {
                for &c in path.interior() {
                    by_resource.entry((c, c)).or_default().push(window);
                }
            }
            Disjointness::Edge => {
                for w in path.cells().windows(2) {
                    let key = (w[0].min(w[1]), w[0].max(w[1]));
                    by_resource.entry(key).or_default().push(window);
                }
            }
        }
    }
    for list in by_resource.values_mut() {
        list.sort_unstable();
        for w in list.windows(2) {
            if w[1].0 < w[0].1 {
                return Err(ValidateError::PathConflict { cycle: w[1].0 });
            }
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::{Chip, CodeModel};
    use ecmas_circuit::Circuit;
    use ecmas_route::{Disjointness, Router};

    fn two_qubit_setup() -> (Circuit, Chip, Vec<usize>, Path) {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 2, 1, 3).unwrap();
        let mapping = vec![0, 1];
        let mut router = Router::new(chip.grid(), Disjointness::Node);
        router.block_tile(0);
        router.block_tile(1);
        let path = router.find_tile_path(0, 1, 0).unwrap();
        (c, chip, mapping, path)
    }

    #[test]
    fn valid_braid_schedule_passes() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(enc.cycles(), 1);
        validate_encoded(&c, &enc).expect("valid schedule");
    }

    #[test]
    fn braid_between_equal_cuts_rejected() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::CutTypeRule { gate: 0 }));
    }

    #[test]
    fn direct_same_cut_between_equal_cuts_passes() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::DirectSameCut { path } }],
        );
        assert_eq!(enc.cycles(), 3);
        validate_encoded(&c, &enc).expect("valid direct execution");
    }

    #[test]
    fn modification_then_braid_passes() {
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X]),
            vec![
                Event { gate: None, start: 0, kind: EventKind::CutModification { qubit: 0 } },
                Event { gate: Some(0), start: 3, kind: EventKind::Braid { path } },
            ],
        );
        assert_eq!(enc.cycles(), 4);
        validate_encoded(&c, &enc).expect("modification makes the braid legal");
    }

    #[test]
    fn missing_gate_detected() {
        let (c, chip, mapping, _) = two_qubit_setup();
        let enc = EncodedCircuit::new(chip, mapping, Some(vec![CutType::X, CutType::Z]), vec![]);
        assert_eq!(
            validate_encoded(&c, &enc),
            Err(ValidateError::GateCoverage { gate: 0, times: 0 })
        );
    }

    #[test]
    fn dependency_violation_detected() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(1, 2);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 3, 1, 3).unwrap();
        let mapping = vec![0, 1, 2];
        let mut router = Router::new(chip.grid(), Disjointness::Node);
        for t in 0..3 {
            router.block_tile(t);
        }
        let p01 = router.find_tile_path(0, 1, 0).unwrap();
        let p12 = router.find_tile_path(1, 2, 5).unwrap();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z, CutType::X]),
            vec![
                // Child starts at 0, parent at 5: illegal.
                Event { gate: Some(1), start: 0, kind: EventKind::Braid { path: p12 } },
                Event { gate: Some(0), start: 5, kind: EventKind::Braid { path: p01 } },
            ],
        );
        assert!(matches!(
            validate_encoded(&c, &enc),
            Err(ValidateError::DependencyOrder { .. }) | Err(ValidateError::QubitOverlap { .. })
        ));
    }

    #[test]
    fn qubit_overlap_detected() {
        // A cut modification on qubit 0 spans [0,3); running the braid at
        // cycle 1 overlaps it. (Two *gates* sharing a qubit are always
        // DAG-ordered, so modification-vs-gate is the real overlap case.)
        let (c, chip, mapping, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z]),
            vec![
                Event { gate: None, start: 0, kind: EventKind::CutModification { qubit: 0 } },
                Event { gate: Some(0), start: 1, kind: EventKind::Braid { path } },
            ],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::QubitOverlap { qubit: 0 }));
    }

    #[test]
    fn conflicting_paths_detected() {
        // Two events that (illegally) reuse the same interior cell in the
        // same cycle on independent qubit pairs.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let grid = chip.grid();
        let mapping = vec![0, 3, 1, 2];
        // Hand-build two paths through the central cell (2,2).
        let p03 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(0),
                grid.index(1, 2),
                grid.index(2, 2),
                grid.index(3, 2),
                grid.tile_cell(3),
            ],
        );
        let p12 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(1),
                grid.index(2, 3),
                grid.index(2, 2),
                grid.index(2, 1),
                grid.tile_cell(2),
            ],
        );
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::Z, CutType::X, CutType::Z]),
            vec![
                Event { gate: Some(0), start: 0, kind: EventKind::Braid { path: p03 } },
                Event { gate: Some(1), start: 0, kind: EventKind::Braid { path: p12 } },
            ],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::PathConflict { cycle: 0 }));
    }

    #[test]
    fn duplicate_mapping_rejected() {
        let (c, chip, _, path) = two_qubit_setup();
        let enc = EncodedCircuit::new(
            chip,
            vec![0, 0],
            Some(vec![CutType::X, CutType::Z]),
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::BadMapping));
    }

    #[test]
    fn wrong_model_event_rejected() {
        let (c, _, mapping, path) = two_qubit_setup();
        let ls_chip = Chip::uniform(CodeModel::LatticeSurgery, 1, 2, 1, 3).unwrap();
        let enc = EncodedCircuit::new(
            ls_chip,
            mapping,
            None,
            vec![Event { gate: Some(0), start: 0, kind: EventKind::Braid { path } }],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::WrongModel));
    }

    #[test]
    fn direct_hold_conflicts_across_cycles() {
        // A direct same-cut CNOT holds its path for two cycles; a braid
        // through the same cell at cycle 1 must be flagged.
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let grid = chip.grid();
        let mapping = vec![0, 3, 1, 2];
        let p03 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(0),
                grid.index(1, 2),
                grid.index(2, 2),
                grid.index(3, 2),
                grid.tile_cell(3),
            ],
        );
        let p12 = Path::from_cells(
            &grid,
            vec![
                grid.tile_cell(1),
                grid.index(2, 3),
                grid.index(2, 2),
                grid.index(2, 1),
                grid.tile_cell(2),
            ],
        );
        let enc = EncodedCircuit::new(
            chip,
            mapping,
            Some(vec![CutType::X, CutType::X, CutType::X, CutType::Z]),
            vec![
                Event { gate: Some(0), start: 0, kind: EventKind::DirectSameCut { path: p03 } },
                Event { gate: Some(1), start: 1, kind: EventKind::Braid { path: p12 } },
            ],
        );
        assert_eq!(validate_encoded(&c, &enc), Err(ValidateError::PathConflict { cycle: 1 }));
    }
}
