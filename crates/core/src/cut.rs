//! Cut types and cut-type initialization for the double-defect model.
//!
//! A double-defect tile is created as either an X-cut or a Z-cut (Fig. 2).
//! Braiding — the one-cycle CNOT — only works between tiles of *different*
//! cut types; equal-cut CNOTs need either three braids through an ancilla
//! (3 cycles, Fig. 3a) or a cut-type modification (3 cycles, then 1 braid,
//! Fig. 3b). Choosing the initial cut types is therefore a 2-coloring
//! problem on the communication graph, optimal exactly when the graph is
//! bipartite and NP-hard otherwise (Theorem 1).

use ecmas_circuit::{CommGraph, GateDag};
use ecmas_partition::{max_cut_one_exchange, ParityDsu, WeightedGraph};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The cut type of a double-defect tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CutType {
    /// X-cut tile (two X-stabilizer defects).
    X,
    /// Z-cut tile.
    Z,
}

impl CutType {
    /// The opposite cut type.
    #[must_use]
    pub fn flipped(self) -> CutType {
        match self {
            CutType::X => CutType::Z,
            CutType::Z => CutType::X,
        }
    }

    /// Maps a 2-coloring side (0/1) to a cut type.
    #[must_use]
    pub fn from_side(side: u8) -> CutType {
        if side == 0 {
            CutType::X
        } else {
            CutType::Z
        }
    }
}

/// How to pick the initial cut types (§IV-C1 and Table III).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CutInitStrategy {
    /// The paper's greedy algorithm: add gates in topological order to a
    /// parity DSU while the prefix communication subgraph stays bipartite,
    /// skip edges that would close an odd cycle, and 2-color the result.
    /// Gates executed earlier get their cut-type wish satisfied first.
    GreedyBipartitePrefix,
    /// Uniformly random assignment (Table III baseline).
    Random {
        /// RNG seed.
        seed: u64,
    },
    /// Max-cut one-exchange on the full weighted communication graph
    /// (Table III baseline): maximizes the *total* number of
    /// different-cut CNOTs, ignoring execution order.
    MaxCut {
        /// RNG seed for the local search start.
        seed: u64,
    },
    /// All tiles share one cut type — what AutoBraid and Braidflash
    /// implicitly assume; every CNOT costs 3 cycles.
    AllSame,
}

/// Computes initial cut types for every logical qubit.
///
/// For [`GreedyBipartitePrefix`](CutInitStrategy::GreedyBipartitePrefix)
/// the gates are visited in topological (program) order; each gate's
/// "endpoints differ" constraint is kept if consistent and skipped
/// otherwise, so the front of the circuit is prioritized — the paper's
/// argument for beating max-cut on circuits like `ghz_state_n23`.
///
/// Qubits left unconstrained are colored opposite their first partner (or
/// X if isolated).
#[must_use]
pub fn initialize_cuts(dag: &GateDag, comm: &CommGraph, strategy: CutInitStrategy) -> Vec<CutType> {
    let n = dag.qubits();
    match strategy {
        CutInitStrategy::AllSame => vec![CutType::X; n],
        CutInitStrategy::Random { seed } => {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..n).map(|_| if rng.gen_bool(0.5) { CutType::X } else { CutType::Z }).collect()
        }
        CutInitStrategy::MaxCut { seed } => {
            let g = WeightedGraph::from_edges(
                n,
                comm.edges().iter().map(|e| (e.a, e.b, u64::from(e.weight))),
            );
            max_cut_one_exchange(&g, seed).into_iter().map(CutType::from_side).collect()
        }
        CutInitStrategy::GreedyBipartitePrefix => {
            let mut dsu = ParityDsu::new(n);
            // Visit gates in layer order (the execution front first), as the
            // paper's greedy does; within a layer, program order.
            let mut order: Vec<usize> = (0..dag.len()).collect();
            order.sort_by_key(|&g| (dag.level(g), g));
            for g in order {
                let gate = dag.gate(g);
                // Skip edges that would make the prefix non-bipartite.
                let _ = dsu.union_different(gate.control, gate.target);
            }
            let sides = dsu.coloring();
            sides.into_iter().map(CutType::from_side).collect()
        }
    }
}

/// Counts how many of the circuit's CNOTs connect different cut types —
/// the quantity max-cut maximizes; useful in tests and diagnostics.
#[must_use]
pub fn different_cut_weight(comm: &CommGraph, cuts: &[CutType]) -> u64 {
    comm.edges().iter().filter(|e| cuts[e.a] != cuts[e.b]).map(|e| u64::from(e.weight)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_circuit::Circuit;

    fn cuts_for(c: &Circuit, strategy: CutInitStrategy) -> Vec<CutType> {
        initialize_cuts(&c.dag(), &c.comm_graph(), strategy)
    }

    #[test]
    fn flipped_is_involution() {
        assert_eq!(CutType::X.flipped(), CutType::Z);
        assert_eq!(CutType::Z.flipped().flipped(), CutType::Z);
    }

    #[test]
    fn bipartite_graph_gets_perfect_coloring() {
        // GHZ chain: path graph; greedy must 2-color it perfectly.
        let mut c = Circuit::new(5);
        for i in 0..4 {
            c.cnot(i, i + 1);
        }
        let cuts = cuts_for(&c, CutInitStrategy::GreedyBipartitePrefix);
        for g in c.cnot_gates() {
            assert_ne!(cuts[g.control], cuts[g.target]);
        }
    }

    #[test]
    fn greedy_prioritizes_early_gates() {
        // Triangle where the (0,1) and (1,2) gates come first: they must be
        // satisfied; the late (0,2) edge is the one sacrificed.
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(0, 2);
        let cuts = cuts_for(&c, CutInitStrategy::GreedyBipartitePrefix);
        assert_ne!(cuts[0], cuts[1]);
        assert_ne!(cuts[1], cuts[2]);
        assert_eq!(cuts[0], cuts[2], "the late edge loses");
    }

    #[test]
    fn all_same_is_uniform() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        let cuts = cuts_for(&c, CutInitStrategy::AllSame);
        assert!(cuts.iter().all(|&x| x == cuts[0]));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let mut c = Circuit::new(16);
        c.cnot(0, 1);
        let a = cuts_for(&c, CutInitStrategy::Random { seed: 7 });
        let b = cuts_for(&c, CutInitStrategy::Random { seed: 7 });
        assert_eq!(a, b);
    }

    #[test]
    fn maxcut_on_bipartite_cuts_everything() {
        let mut c = Circuit::new(6);
        for i in 0..3 {
            c.cnot(i, i + 3);
        }
        let comm = c.comm_graph();
        let cuts = cuts_for(&c, CutInitStrategy::MaxCut { seed: 3 });
        assert_eq!(different_cut_weight(&comm, &cuts), 3);
    }

    #[test]
    fn greedy_beats_or_matches_random_on_front_weight() {
        // On dnn (complete bipartite) greedy is perfect.
        let c = ecmas_circuit::benchmarks::dnn_n8();
        let comm = c.comm_graph();
        let greedy = cuts_for(&c, CutInitStrategy::GreedyBipartitePrefix);
        assert_eq!(
            different_cut_weight(&comm, &greedy),
            u64::from(comm.total_weight()),
            "dnn communication graph is bipartite; greedy must cut all gates"
        );
    }
}
