//! Per-job resource estimation: the space–time and channel-pressure
//! footprint of one compilation, computed from artifacts every compile
//! already produces (the chip's capability description, the encoded
//! schedule, and the router's effort counters).
//!
//! The estimate is deliberately integer-only (utilizations are reported
//! in parts-per-million) so it is bit-stable across platforms and can be
//! hashed, diffed, and carried through the daemon protocol verbatim.
//! [`ResourceEstimate::compute`] is deterministic: two runs that produce
//! the same schedule and router counters produce the same estimate.

use ecmas_chip::Chip;
use ecmas_route::RouterStats;

/// Deterministic per-stage cost model in abstract work units.
///
/// These are *work* proxies, not wall times: they depend only on the
/// job (circuit, chip, config), never on the machine, so they can be
/// used to rank jobs for fleet selection and admission control.
///
/// * `profile` — CNOT gates examined by Para-Finding.
/// * `map` — placement restarts × live tile slots searched.
/// * `schedule` — router cells expanded + path cells committed +
///   cells recolored.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageCost {
    /// Profiling work units (CNOT gates examined).
    pub profile: u64,
    /// Mapping work units (restarts × live slots).
    pub map: u64,
    /// Scheduling work units (router cell traffic).
    pub schedule: u64,
}

/// The space–time and channel-pressure footprint of one compiled job.
///
/// Attached to every [`CompileReport`](crate::session::CompileReport)
/// and serialized in its JSON (`"resources"` object); the daemon
/// aggregates these per-job estimates in its `stats` line.
///
/// Channel utilizations divide committed path cells by the chip's
/// routable channel cells. Paths also traverse their endpoint tiles, so
/// a fully saturated chip can nominally exceed 1 000 000 ppm; the figure
/// is a pressure proxy for comparing jobs and chips, not an occupancy
/// percentage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ResourceEstimate {
    /// Logical qubits the job maps onto tiles.
    pub logical_qubits: usize,
    /// Non-defective tile slots on the target chip.
    pub live_tiles: usize,
    /// Absolute physical qubits of the target at its code distance.
    pub physical_qubits: u64,
    /// Clock cycles Δ of the schedule.
    pub cycles: u64,
    /// Space–time volume: logical qubits × cycles.
    pub space_time_volume: u64,
    /// Routable channel cells on the chip (free routing-grid cells;
    /// disabled channels and dead tiles contribute none).
    pub channel_cells: u64,
    /// Mean channel utilization in parts-per-million: committed path
    /// cells / (channel cells × cycles).
    pub channel_mean_utilization_ppm: u64,
    /// Peak single-cycle channel utilization in parts-per-million:
    /// the busiest cycle's committed path cells / channel cells.
    pub channel_peak_utilization_ppm: u64,
    /// Per-stage deterministic work units.
    pub stage_cost: StageCost,
}

impl ResourceEstimate {
    /// Computes the estimate for one job from artifacts the pipeline
    /// already has. Deterministic and integer-only.
    #[must_use]
    pub fn compute(
        chip: &Chip,
        logical_qubits: usize,
        cnot_gates: usize,
        placement_restarts: usize,
        cycles: u64,
        router: &RouterStats,
    ) -> Self {
        let live_tiles = chip.live_tiles();
        let channel_cells = chip.grid().free_cells() as u64;
        let ppm = |cells: u64, denom: u64| {
            if denom == 0 {
                0
            } else {
                u64::try_from(u128::from(cells) * 1_000_000 / u128::from(denom)).unwrap_or(u64::MAX)
            }
        };
        ResourceEstimate {
            logical_qubits,
            live_tiles,
            physical_qubits: chip.physical_qubits(),
            cycles,
            space_time_volume: logical_qubits as u64 * cycles,
            channel_cells,
            channel_mean_utilization_ppm: ppm(
                router.path_cells,
                channel_cells.saturating_mul(cycles),
            ),
            channel_peak_utilization_ppm: ppm(router.peak_cycle_path_cells, channel_cells),
            stage_cost: StageCost {
                profile: cnot_gates as u64,
                map: placement_restarts as u64 * live_tiles as u64,
                schedule: router.cells_expanded + router.path_cells + router.recolor_cells,
            },
        }
    }

    /// Serializes the estimate as a self-contained JSON object (no
    /// external serializer in this workspace — see `vendor/README.md`).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            concat!(
                "{{\"logical_qubits\":{},\"live_tiles\":{},",
                "\"physical_qubits\":{},\"cycles\":{},",
                "\"space_time_volume\":{},\"channel_cells\":{},",
                "\"channel_mean_utilization_ppm\":{},",
                "\"channel_peak_utilization_ppm\":{},",
                "\"stage_cost\":{{\"profile\":{},\"map\":{},\"schedule\":{}}}}}"
            ),
            self.logical_qubits,
            self.live_tiles,
            self.physical_qubits,
            self.cycles,
            self.space_time_volume,
            self.channel_cells,
            self.channel_mean_utilization_ppm,
            self.channel_peak_utilization_ppm,
            self.stage_cost.profile,
            self.stage_cost.map,
            self.stage_cost.schedule,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::CodeModel;

    #[test]
    fn estimate_arithmetic_is_exact() {
        let chip = Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3).unwrap();
        let channel_cells = chip.grid().free_cells() as u64;
        let stats = RouterStats {
            path_cells: 2 * channel_cells,
            peak_cycle_path_cells: channel_cells,
            cells_expanded: 7,
            recolor_cells: 5,
            ..RouterStats::default()
        };
        let est = ResourceEstimate::compute(&chip, 3, 11, 4, 8, &stats);
        assert_eq!(est.logical_qubits, 3);
        assert_eq!(est.live_tiles, 4);
        assert_eq!(est.physical_qubits, chip.physical_qubits());
        assert_eq!(est.cycles, 8);
        assert_eq!(est.space_time_volume, 24);
        assert_eq!(est.channel_cells, channel_cells);
        // path_cells = 2 * channel_cells over 8 cycles -> 2/8 of capacity.
        assert_eq!(est.channel_mean_utilization_ppm, 250_000);
        // Busiest cycle filled every channel cell.
        assert_eq!(est.channel_peak_utilization_ppm, 1_000_000);
        assert_eq!(
            est.stage_cost,
            StageCost { profile: 11, map: 16, schedule: 7 + 2 * channel_cells + 5 }
        );
    }

    #[test]
    fn zero_denominators_do_not_panic() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 2, 1, 3).unwrap();
        let est = ResourceEstimate::compute(&chip, 0, 0, 0, 0, &RouterStats::default());
        assert_eq!(est.channel_mean_utilization_ppm, 0);
        assert_eq!(est.channel_peak_utilization_ppm, 0);
        assert_eq!(est.space_time_volume, 0);
    }

    #[test]
    fn json_shape_is_stable() {
        let est = ResourceEstimate::default();
        let json = est.to_json();
        for key in [
            "logical_qubits",
            "live_tiles",
            "physical_qubits",
            "cycles",
            "space_time_volume",
            "channel_cells",
            "channel_mean_utilization_ppm",
            "channel_peak_utilization_ppm",
            "stage_cost",
        ] {
            assert!(json.contains(&format!("\"{key}\":")), "missing {key} in {json}");
        }
    }
}
