//! Compiler error types.

use std::error::Error;
use std::fmt;

use ecmas_chip::ChipError;

/// Error produced by the Ecmas compiler pipeline.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CompileError {
    /// The circuit has more logical qubits than the chip has tile slots.
    TooManyQubits {
        /// Logical qubits in the circuit.
        qubits: usize,
        /// Tile slots on the chip.
        slots: usize,
    },
    /// The scheduler made no progress for an implausibly long stretch —
    /// a defensive bound that indicates a routing-model bug rather than a
    /// legitimate compilation outcome.
    ScheduleStuck {
        /// The cycle at which progress stopped.
        cycle: u64,
        /// Gates still unscheduled.
        pending: usize,
    },
    /// The double-defect scheduler was invoked without initial cut types,
    /// or the lattice-surgery scheduler with them.
    CutTypesMismatch,
    /// A mapping injected into the session pipeline is unusable: wrong
    /// length, out-of-range tile slot, or a slot used twice.
    InvalidMapping {
        /// What is wrong with the injected mapping.
        reason: String,
    },
    /// An underlying chip construction failed.
    Chip(ChipError),
    /// Every candidate chip in a fleet was rejected: none had the live
    /// capacity for the circuit, or every one that fit failed to compile.
    FleetExhausted {
        /// Candidate chips considered.
        candidates: usize,
        /// Logical qubits in the circuit.
        qubits: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::TooManyQubits { qubits, slots } => {
                write!(f, "{qubits} logical qubits do not fit on a chip with {slots} tile slots")
            }
            CompileError::ScheduleStuck { cycle, pending } => {
                write!(f, "scheduler stalled at cycle {cycle} with {pending} gates pending")
            }
            CompileError::CutTypesMismatch => {
                write!(f, "initial cut types must be supplied exactly for the double-defect model")
            }
            CompileError::InvalidMapping { reason } => {
                write!(f, "injected mapping is unusable: {reason}")
            }
            CompileError::Chip(e) => write!(f, "chip error: {e}"),
            CompileError::FleetExhausted { candidates, qubits } => {
                write!(
                    f,
                    "no chip in a fleet of {candidates} candidates could \
                     compile the {qubits}-qubit circuit"
                )
            }
        }
    }
}

impl Error for CompileError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CompileError::Chip(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ChipError> for CompileError {
    fn from(e: ChipError) -> Self {
        CompileError::Chip(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CompileError::TooManyQubits { qubits: 10, slots: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("4"));
    }

    #[test]
    fn chip_error_converts_and_chains() {
        let e: CompileError = ChipError::EmptyTileArray.into();
        assert!(matches!(e, CompileError::Chip(_)));
        assert!(e.source().is_some());
    }
}
