//! Initial tile-location mapping (§IV-B1) and bandwidth adjusting.
//!
//! Three steps, mirroring the paper's Fig. 10:
//!
//! 1. **Shape determining** — pick the minimum-perimeter sub-array of tile
//!    slots that can host all logical qubits.
//! 2. **Mapping establishing** — place qubits in the sub-array minimizing
//!    the communication cost `f = Σ γ_ij · l_ij` (recursive-bisection
//!    placement, multi-start, best-of).
//! 3. **Bandwidth adjusting** — pre-route every gate on the unloaded chip,
//!    count per-channel crossings, and redistribute any channel-lane slack
//!    toward the hottest channels.

use ecmas_chip::Chip;
use ecmas_circuit::CommGraph;
use ecmas_partition::{place_masked, WeightedGraph};

use crate::error::CompileError;

/// How to produce the initial qubit → tile mapping (Table II ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LocationStrategy {
    /// The full Ecmas pipeline: shape determining, multi-start placement,
    /// swap refinement, select best by cost.
    Ecmas {
        /// Number of randomized placements to generate.
        restarts: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A bare recursive-bisection mapping over the whole chip array: one
    /// run, no shape determining, no refinement (the paper's "Metis"
    /// baseline).
    Partitioner {
        /// RNG seed.
        seed: u64,
    },
    /// The twisting/snake layout over the whole chip array (EDPCI's
    /// trivial mapping): row 0 left-to-right, row 1 right-to-left, ….
    Trivial,
}

/// Shape-search ranking key: lexicographic (primary, secondary, tiebreak).
type ShapeKey = (usize, usize, usize);

/// Picks the minimum-perimeter `a × b` sub-array with `a·b ≥ n` that fits
/// the chip (ties: smaller area, then fewer rows), and returns it with its
/// centered offset — the paper's *shape determining* step.
///
/// On a chip with defective tiles the region must hold `n` *live* slots:
/// each candidate shape may grow its width past `⌈n/a⌉` and slide off
/// center to clear the defects (the offset nearest the centered one
/// wins). Defect-free chips take the paper's exact search, so the chosen
/// region — and everything downstream — is bit-identical.
///
/// # Errors
///
/// Returns [`CompileError::TooManyQubits`] if even the full array is too
/// small.
pub fn determine_shape(chip: &Chip, n: usize) -> Result<SubArray, CompileError> {
    let (rows, cols) = (chip.tile_rows(), chip.tile_cols());
    if n > chip.live_tiles() {
        return Err(CompileError::TooManyQubits { qubits: n, slots: chip.live_tiles() });
    }
    if chip.defect_count() == 0 {
        let mut best: Option<(usize, usize, usize)> = None; // (perimeter, area, rows)
        let mut shape = (rows, cols);
        for a in 1..=rows {
            let b = n.div_ceil(a);
            if b > cols {
                continue;
            }
            let key = (2 * (a + b), a * b, a);
            if best.is_none_or(|k| key < k) {
                best = Some(key);
                shape = (a, b);
            }
        }
        let (a, b) = shape;
        return Ok(SubArray {
            rows: a,
            cols: b,
            row_offset: (rows - a) / 2,
            col_offset: (cols - b) / 2,
        });
    }

    // Defect-aware search: for each height `a`, the narrowest width `b`
    // for which *some* placement of the window contains `n` live slots;
    // among window positions the one closest to the centered offset wins
    // (then top-most, then left-most), so a mask with conveniently-placed
    // defects still yields a near-centered region.
    let live_at = |r0: usize, c0: usize, a: usize, b: usize| -> usize {
        (r0..r0 + a).map(|r| (c0..c0 + b).filter(|&c| !chip.is_dead(r * cols + c)).count()).sum()
    };
    let mut best: Option<(ShapeKey, SubArray)> = None;
    for a in 1..=rows {
        for b in n.div_ceil(a)..=cols {
            let centered = ((rows - a) / 2, (cols - b) / 2);
            let mut chosen: Option<(ShapeKey, (usize, usize))> = None;
            for ro in 0..=(rows - a) {
                for co in 0..=(cols - b) {
                    if live_at(ro, co, a, b) < n {
                        continue;
                    }
                    let key = (ro.abs_diff(centered.0) + co.abs_diff(centered.1), ro, co);
                    if chosen.is_none_or(|(k, _)| key < k) {
                        chosen = Some((key, (ro, co)));
                    }
                }
            }
            if let Some((_, (ro, co))) = chosen {
                let key = (2 * (a + b), a * b, a);
                if best.as_ref().is_none_or(|&(k, _)| key < k) {
                    best =
                        Some((key, SubArray { rows: a, cols: b, row_offset: ro, col_offset: co }));
                }
                break; // wider windows for this height only cost perimeter
            }
        }
    }
    // The full array qualifies (live_tiles >= n), so a region always exists.
    best.map(|(_, region)| region)
        .ok_or(CompileError::TooManyQubits { qubits: n, slots: chip.live_tiles() })
}

/// A rectangular region of tile slots within the chip array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubArray {
    /// Region height in tiles.
    pub rows: usize,
    /// Region width in tiles.
    pub cols: usize,
    /// Top row of the region within the chip array.
    pub row_offset: usize,
    /// Left column of the region within the chip array.
    pub col_offset: usize,
}

impl SubArray {
    /// Converts a region-local slot to a chip slot index.
    #[must_use]
    pub fn to_chip_slot(&self, local: usize, chip: &Chip) -> usize {
        let (r, c) = (local / self.cols, local % self.cols);
        (r + self.row_offset) * chip.tile_cols() + (c + self.col_offset)
    }
}

/// Computes the qubit → chip-tile-slot mapping under `strategy`.
///
/// # Errors
///
/// Returns [`CompileError::TooManyQubits`] if the circuit does not fit.
pub fn initial_mapping(
    comm: &CommGraph,
    chip: &Chip,
    strategy: LocationStrategy,
) -> Result<Vec<usize>, CompileError> {
    let n = comm.qubits();
    let (rows, cols) = (chip.tile_rows(), chip.tile_cols());
    if n > chip.live_tiles() {
        return Err(CompileError::TooManyQubits { qubits: n, slots: chip.live_tiles() });
    }
    let graph =
        WeightedGraph::from_edges(n, comm.edges().iter().map(|e| (e.a, e.b, u64::from(e.weight))));
    let mapping = match strategy {
        LocationStrategy::Ecmas { restarts, seed } => {
            let region = determine_shape(chip, n)?;
            // Region-local defect mask: all-false on a defect-free chip,
            // in which case `place_masked` is `place_opts` bit for bit.
            let forbidden: Vec<bool> = (0..region.rows * region.cols)
                .map(|local| chip.is_dead(region.to_chip_slot(local, chip)))
                .collect();
            let placement =
                place_masked(&graph, region.rows, region.cols, restarts, seed, true, &forbidden);
            placement.slot_of().iter().map(|&local| region.to_chip_slot(local, chip)).collect()
        }
        LocationStrategy::Partitioner { seed } => {
            let forbidden: Vec<bool> = (0..rows * cols).map(|s| chip.is_dead(s)).collect();
            let placement = place_masked(&graph, rows, cols, 1, seed, false, &forbidden);
            placement.slot_of().to_vec()
        }
        LocationStrategy::Trivial if chip.defect_count() == 0 => snake_mapping(n, rows, cols),
        LocationStrategy::Trivial => snake_mapping_live(n, chip),
    };
    Ok(mapping)
}

/// The twisting layout of the paper's Table II / EDPCI: qubit `q` goes to
/// row `q / cols`, sweeping left-to-right on even rows and right-to-left on
/// odd rows, so consecutive qubits stay adjacent.
///
/// # Panics
///
/// Panics if `n > rows * cols`.
#[must_use]
pub fn snake_mapping(n: usize, rows: usize, cols: usize) -> Vec<usize> {
    assert!(n <= rows * cols, "snake mapping does not fit");
    (0..n)
        .map(|q| {
            let r = q / cols;
            let c = q % cols;
            let c = if r.is_multiple_of(2) { c } else { cols - 1 - c };
            r * cols + c
        })
        .collect()
}

/// [`snake_mapping`] on a chip with defective tiles: walks the same snake
/// order but skips dead slots, so consecutive qubits stay as adjacent as
/// the defects allow. With no defects this is exactly [`snake_mapping`].
///
/// # Panics
///
/// Panics if `n` exceeds the chip's live-tile count.
#[must_use]
pub fn snake_mapping_live(n: usize, chip: &Chip) -> Vec<usize> {
    assert!(n <= chip.live_tiles(), "snake mapping does not fit the live tiles");
    let (rows, cols) = (chip.tile_rows(), chip.tile_cols());
    (0..rows * cols)
        .map(|q| {
            let r = q / cols;
            let c = q % cols;
            let c = if r.is_multiple_of(2) { c } else { cols - 1 - c };
            r * cols + c
        })
        .filter(|&slot| !chip.is_dead(slot))
        .take(n)
        .collect()
}

/// The *bandwidth adjusting* step (§IV-B1, Fig. 10c): pre-routes every
/// communication-graph edge as an L-path between its mapped tiles, counts
/// how often each channel is crossed, and redistributes the chip's spare
/// lanes (anything above bandwidth 1 per channel) to the most-crossed
/// channels, holding the per-dimension lane totals constant.
///
/// On a minimum-viable chip every channel already sits at the bandwidth-1
/// floor, so the chip is returned unchanged — matching the paper, where
/// adjusting only pays off once the chip has slack.
#[must_use]
pub fn adjust_bandwidth(chip: &Chip, mapping: &[usize], comm: &CommGraph) -> Chip {
    let cols = chip.tile_cols();
    let h_channels = chip.tile_rows() + 1;
    let v_channels = cols + 1;
    let mut h_usage = vec![0u64; h_channels];
    let mut v_usage = vec![0u64; v_channels];
    for e in comm.edges() {
        let (sa, sb) = (mapping[e.a], mapping[e.b]);
        let (ra, ca) = (sa / cols, sa % cols);
        let (rb, cb) = (sb / cols, sb % cols);
        let w = u64::from(e.weight);
        // An L-path from tile (ra,ca) to (rb,cb) *crosses* the channels
        // strictly between the rows/columns (weight 2) and *runs along*
        // the channels bordering its endpoints (weight 1) — the latter
        // keeps boundary channels from being starved of detour lanes.
        for usage in &mut h_usage[ra.min(rb) + 1..=ra.max(rb)] {
            *usage += 2 * w;
        }
        for usage in &mut v_usage[ca.min(cb) + 1..=ca.max(cb)] {
            *usage += 2 * w;
        }
        for r in [ra, rb] {
            h_usage[r] += w;
            h_usage[r + 1] += w;
        }
        for c in [ca, cb] {
            v_usage[c] += w;
            v_usage[c + 1] += w;
        }
    }

    let mut adjusted = chip.clone();
    redistribute(&mut adjusted, true, &h_usage);
    redistribute(&mut adjusted, false, &v_usage);
    adjusted
}

/// Moves one dimension's lanes from cold channels to hot ones — but only
/// under strong imbalance (3× usage-per-lane), so near-uniform traffic
/// keeps the uniform allocation. Stealing a lane from a lightly-used
/// channel is not free: node-disjoint detours need it, so the threshold
/// errs conservative.
fn redistribute(chip: &mut Chip, horizontal: bool, usage: &[u64]) {
    let mut lanes: Vec<u32> =
        if horizontal { chip.h_bandwidths().to_vec() } else { chip.v_bandwidths().to_vec() };
    let channels = lanes.len();
    if channels < 2 || usage.iter().all(|&u| u == 0) {
        return;
    }
    let total: u32 = lanes.iter().sum();
    for _ in 0..total {
        // Usage per lane, scaled to integers to avoid float compare.
        let ratio = |i: usize, lanes: &[u32]| -> u64 { usage[i] * 1000 / u64::from(lanes[i]) };
        // Disabled (0-lane) channels are physically broken: they can
        // neither receive lanes nor enter the ratio (division by zero).
        let recipient = (0..channels)
            .filter(|&i| lanes[i] > 0)
            .max_by_key(|&i| ratio(i, &lanes))
            .expect("at least one channel per orientation stays open");
        let donor = (0..channels)
            .filter(|&i| lanes[i] > 1 && i != recipient)
            .min_by_key(|&i| ratio(i, &lanes));
        let Some(donor) = donor else { break };
        if ratio(recipient, &lanes) > 3 * ratio(donor, &lanes).max(1) {
            lanes[donor] -= 1;
            lanes[recipient] += 1;
        } else {
            break;
        }
    }
    for (i, &b) in lanes.iter().enumerate() {
        if horizontal {
            chip.set_h_bandwidth(i, b).expect("index in range");
        } else {
            chip.set_v_bandwidth(i, b).expect("index in range");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::CodeModel;
    use ecmas_circuit::Circuit;

    fn chip(rows: usize, cols: usize, b: u32) -> Chip {
        Chip::uniform(CodeModel::DoubleDefect, rows, cols, b, 3).unwrap()
    }

    #[test]
    fn shape_prefers_min_perimeter() {
        // 8 qubits on a 4×4 chip: candidates 2×4 (perimeter 12) and 3×3
        // (12, area 9) and 4×2 (12): tie broken by smaller area ⇒ 2×4.
        let region = determine_shape(&chip(4, 4, 1), 8).unwrap();
        assert_eq!((region.rows, region.cols), (2, 4));
        // 9 qubits: 3×3 (perimeter 12) beats 2×5 (impossible, cols=4) and
        // 3×4 (14).
        let region = determine_shape(&chip(4, 4, 1), 9).unwrap();
        assert_eq!((region.rows, region.cols), (3, 3));
    }

    #[test]
    fn shape_is_centered() {
        let region = determine_shape(&chip(5, 5, 1), 9).unwrap();
        assert_eq!((region.rows, region.cols), (3, 3));
        assert_eq!((region.row_offset, region.col_offset), (1, 1));
    }

    #[test]
    fn shape_rejects_overflow() {
        assert!(matches!(
            determine_shape(&chip(2, 2, 1), 5),
            Err(CompileError::TooManyQubits { qubits: 5, slots: 4 })
        ));
    }

    #[test]
    fn snake_keeps_consecutive_adjacent() {
        let m = snake_mapping(9, 3, 3);
        assert_eq!(m, vec![0, 1, 2, 5, 4, 3, 6, 7, 8]);
        for w in m.windows(2) {
            let (r0, c0) = (w[0] / 3, w[0] % 3);
            let (r1, c1) = (w[1] / 3, w[1] % 3);
            assert_eq!(r0.abs_diff(r1) + c0.abs_diff(c1), 1, "snake neighbors adjacent");
        }
    }

    #[test]
    fn mappings_are_injective() {
        let c = ecmas_circuit::benchmarks::qft_n10();
        let comm = c.comm_graph();
        let chip = chip(4, 4, 1);
        for strategy in [
            LocationStrategy::Ecmas { restarts: 4, seed: 1 },
            LocationStrategy::Partitioner { seed: 1 },
            LocationStrategy::Trivial,
        ] {
            let m = initial_mapping(&comm, &chip, strategy).unwrap();
            let set: std::collections::HashSet<_> = m.iter().collect();
            assert_eq!(set.len(), m.len(), "{strategy:?} reuses a slot");
            assert!(m.iter().all(|&s| s < 16));
        }
    }

    #[test]
    fn ecmas_mapping_beats_trivial_on_star() {
        // A hub talking to everyone: placement should center it, snake
        // cannot.
        let mut c = Circuit::new(9);
        for q in 1..9 {
            c.cnot(0, q);
            c.cnot(0, q);
        }
        let comm = c.comm_graph();
        let chip = chip(3, 3, 1);
        let cost = |m: &[usize]| -> u64 {
            comm.edges()
                .iter()
                .map(|e| u64::from(e.weight) * chip.tile_distance(m[e.a], m[e.b]) as u64)
                .sum()
        };
        let ecmas = initial_mapping(&comm, &chip, LocationStrategy::Ecmas { restarts: 4, seed: 2 })
            .unwrap();
        let trivial = initial_mapping(&comm, &chip, LocationStrategy::Trivial).unwrap();
        assert!(cost(&ecmas) < cost(&trivial), "{} !< {}", cost(&ecmas), cost(&trivial));
    }

    #[test]
    fn adjust_keeps_minimum_viable_unchanged() {
        let c = ecmas_circuit::benchmarks::qft_n10();
        let comm = c.comm_graph();
        let base = chip(4, 4, 1);
        let mapping = initial_mapping(&comm, &base, LocationStrategy::Trivial).unwrap();
        assert_eq!(adjust_bandwidth(&base, &mapping, &comm), base);
    }

    #[test]
    fn adjust_preserves_lane_totals() {
        let c = ecmas_circuit::benchmarks::qft_n10();
        let comm = c.comm_graph();
        let base = chip(4, 4, 2);
        let mapping = initial_mapping(&comm, &base, LocationStrategy::Trivial).unwrap();
        let adjusted = adjust_bandwidth(&base, &mapping, &comm);
        let sum = |v: &[u32]| v.iter().sum::<u32>();
        assert_eq!(sum(adjusted.h_bandwidths()), sum(base.h_bandwidths()));
        assert_eq!(sum(adjusted.v_bandwidths()), sum(base.v_bandwidths()));
        assert!(adjusted.h_bandwidths().iter().all(|&b| b >= 1));
        assert!(adjusted.v_bandwidths().iter().all(|&b| b >= 1));
    }

    #[test]
    fn adjust_feeds_the_hot_channel() {
        // All traffic crosses the single middle vertical channel of a 1×2
        // array: with slack, that channel should gain lanes.
        let mut c = Circuit::new(2);
        for _ in 0..10 {
            c.cnot(0, 1);
        }
        let comm = c.comm_graph();
        let base = chip(1, 2, 2);
        let mapping = vec![0, 1];
        let adjusted = adjust_bandwidth(&base, &mapping, &comm);
        assert!(
            adjusted.v_bandwidth(1) > base.v_bandwidth(1),
            "middle channel should widen, got {:?}",
            adjusted.v_bandwidths()
        );
    }
}

#[cfg(test)]
mod shape_edge_cases {
    use super::*;
    use ecmas_chip::CodeModel;

    #[test]
    fn single_qubit_shape() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 1, 3).unwrap();
        let region = determine_shape(&chip, 1).unwrap();
        assert_eq!((region.rows, region.cols), (1, 1));
    }

    #[test]
    fn full_chip_shape() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 3, 4, 1, 3).unwrap();
        let region = determine_shape(&chip, 12).unwrap();
        assert_eq!((region.rows, region.cols), (3, 4));
        assert_eq!((region.row_offset, region.col_offset), (0, 0));
    }

    #[test]
    fn wide_chip_prefers_square_region() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 8, 1, 3).unwrap();
        let region = determine_shape(&chip, 4).unwrap();
        assert_eq!((region.rows, region.cols), (2, 2));
    }

    #[test]
    fn to_chip_slot_round_trips() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 4, 4, 1, 3).unwrap();
        let region = determine_shape(&chip, 4).unwrap();
        let slots: Vec<usize> = (0..4).map(|local| region.to_chip_slot(local, &chip)).collect();
        let unique: std::collections::HashSet<_> = slots.iter().collect();
        assert_eq!(unique.len(), 4);
        assert!(slots.iter().all(|&s| s < 16));
    }

    #[test]
    fn snake_full_coverage_is_permutation() {
        let m = snake_mapping(12, 3, 4);
        let mut sorted = m.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..12).collect::<Vec<_>>());
    }
}
