//! **Ecmas** — efficient circuit mapping and scheduling for surface code.
//!
//! A from-scratch reproduction of the CGO 2024 paper by Zhu et al.
//! (arXiv:2312.15254): a fault-tolerant compiler pass that maps a logical
//! circuit's qubits onto surface-code tiles and schedules its CNOTs as
//! braiding operations (double-defect model) or Bell-state ancilla paths
//! (lattice surgery), minimizing the clock-cycle count Δ. Finding the
//! optimum is NP-hard (Theorem 1, reconstructed in [`hardness`]); Ecmas is
//! the paper's resource-adaptive heuristic answer.
//!
//! # Pipeline (paper Fig. 9)
//!
//! 1. **Circuit profiling** ([`profile`]) — Algorithm Para-Finding
//!    estimates the Circuit Parallelism Degree `ĝPM` and produces a
//!    balanced depth-`α` execution scheme.
//! 2. **Chip analyzing** — Theorem 2's Chip Communication Capacity
//!    `⌊(b−1)/2⌋ + 3` decides whether resources are "limited" or
//!    "sufficient" (see `ecmas_chip::Chip::communication_capacity`).
//! 3. **Initial mapping** ([`mapping`]) — shape determining, placement by
//!    communication cost `f = Σ γ_ij · l_ij`, bandwidth adjusting.
//! 4. **Cut-type initialization** ([`cut`]) — greedy bipartite-prefix
//!    2-coloring (double defect only).
//! 5. **Scheduling** — [`engine`] (Algorithm 1, limited resources, with
//!    the M-value cut-modification policy) or [`resu`] (Algorithm 2,
//!    Ecmas-ReSu, performance-guaranteed on sufficient resources).
//!
//! The [`Ecmas`] facade runs the whole pipeline. [`Ecmas::session`] exposes
//! it as typed stages ([`session::Profiled`] → [`session::Mapped`] →
//! [`session::Scheduled`]) whose artifacts can be inspected and overridden
//! mid-flight; every run can return a structured [`session::CompileReport`]
//! (per-stage wall time, router effort, the limited-vs-ReSu choice), and
//! every ablation knob of the paper's Tables II–V is a field of
//! [`EcmasConfig`]. The [`session::Compiler`] trait is the workspace-wide
//! interface baselines implement too; batch and service-style fan-out
//! (`compile_batch`, `CompileService`, the `ecmasd` daemon) live a layer
//! up in `ecmas-serve`.
//!
//! # Example
//!
//! ```
//! use ecmas::Ecmas;
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_circuit::benchmarks::ising_n10;
//!
//! let circuit = ising_n10();
//! let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3)?;
//! let encoded = Ecmas::default().compile(&circuit, &chip)?;
//! // The ising chain's communication graph is bipartite, so every CNOT
//! // braids in one cycle and the schedule hits the depth lower bound.
//! assert_eq!(encoded.cycles() as usize, circuit.depth());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Every compiler in the workspace — including the AutoBraid and EDPCI
//! baselines in `ecmas-baselines` — emits the same
//! [`encoded::EncodedCircuit`], checked by the independent
//! [`encoded::validate_encoded`] oracle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compiler;
pub mod cut;
pub mod diag;
pub mod encoded;
pub mod engine;
pub mod error;
pub mod hardness;
pub mod mapping;
pub mod profile;
pub mod resources;
pub mod resu;
pub mod session;
pub mod stable;
pub mod viz;

pub use compiler::{ChipFleet, Ecmas, EcmasConfig, FleetSelection};
pub use cut::{CutInitStrategy, CutType};
pub use diag::{diagnostics_to_json, Code, Diagnostic, Severity, Span};
pub use encoded::{
    analyze_encoded, collect_violations, validate_encoded, EncodedCircuit, Event, EventKind,
    ValidateError,
};
pub use engine::{schedule_limited, CutPolicy, GateOrder, ScheduleConfig};
pub use error::CompileError;
pub use mapping::LocationStrategy;
pub use profile::{para_finding, ExecutionScheme};
pub use resources::{ResourceEstimate, StageCost};
pub use resu::schedule_sufficient;
pub use session::{
    Algorithm, CacheInfo, CacheSource, CompileOutcome, CompileReport, Compiler, MapArtifact,
    ProfileArtifact,
};
pub use stable::{fingerprint_encoded, StableHasher};
