//! Platform-stable content hashing for cache keys and schedule pins.
//!
//! Everything here is FNV-1a over an explicitly spelled-out byte stream:
//! no `DefaultHasher` (whose output may change between Rust releases), no
//! pointer- or layout-dependent input, every multi-byte value mixed in
//! little-endian order. The same routine therefore produces the same hash
//! on every platform and toolchain — the property both consumers need:
//!
//! * `tests/schedule_pins.rs` pins complete event schedules as
//!   [`fingerprint_encoded`] values that must survive compiler rework;
//! * `ecmas-cache` derives content-addressed compile-cache keys from
//!   circuits, chips, and configs via the `write_*` helpers, and those
//!   keys must agree across daemon restarts and machines.
//!
//! The hash is *not* cryptographic. Cache keys mitigate collisions by
//! combining two independent passes (different offset bases) into a
//! 128-bit key; the pins are compared against exact expected values, so
//! collision resistance is irrelevant there.

use ecmas_chip::Chip;
use ecmas_circuit::Circuit;

use crate::compiler::EcmasConfig;
use crate::cut::CutInitStrategy;
use crate::encoded::{EncodedCircuit, EventKind};
use crate::engine::{CutPolicy, GateOrder};
use crate::mapping::LocationStrategy;

/// The standard FNV-1a 64-bit offset basis.
pub const FNV_OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// An alternative offset basis (the standard one with its halves swapped)
/// for a second, independent pass over the same bytes — two passes give a
/// 128-bit key without a second hash function.
pub const FNV_ALT_BASIS: u64 = 0x8422_2325_cbf2_9ce4;

const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher over an explicit byte stream.
///
/// # Example
///
/// ```
/// use ecmas::stable::StableHasher;
///
/// let mut h = StableHasher::new();
/// h.write_u64(42);
/// h.write_bytes(b"ecmas");
/// let a = h.finish();
/// // Deterministic: the same stream always hashes the same.
/// let mut h2 = StableHasher::new();
/// h2.write_u64(42);
/// h2.write_bytes(b"ecmas");
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Clone, Debug)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StableHasher {
    /// A hasher seeded with the standard FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Self::with_basis(FNV_OFFSET_BASIS)
    }

    /// A hasher seeded with an arbitrary basis (see [`FNV_ALT_BASIS`]).
    #[must_use]
    pub fn with_basis(basis: u64) -> Self {
        StableHasher { state: basis }
    }

    /// Mixes raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state ^= u64::from(byte);
            self.state = self.state.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mixes one byte.
    pub fn write_u8(&mut self, value: u8) {
        self.write_bytes(&[value]);
    }

    /// Mixes a `u32` as 4 little-endian bytes.
    pub fn write_u32(&mut self, value: u32) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Mixes a `u64` as 8 little-endian bytes.
    pub fn write_u64(&mut self, value: u64) {
        self.write_bytes(&value.to_le_bytes());
    }

    /// Mixes a `usize` widened to `u64` (stable across pointer widths).
    pub fn write_usize(&mut self, value: usize) {
        self.write_u64(value as u64);
    }

    /// Mixes a bool as one byte.
    pub fn write_bool(&mut self, value: bool) {
        self.write_u8(u8::from(value));
    }

    /// Mixes a string as its length followed by its UTF-8 bytes.
    pub fn write_str(&mut self, value: &str) {
        self.write_usize(value.len());
        self.write_bytes(value.as_bytes());
    }

    /// The current hash value.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

/// FNV-1a fingerprint of a complete event schedule: gate ids, start
/// cycles, event kinds, every path cell, and the cycle count.
///
/// This is the exact byte stream `tests/schedule_pins.rs` has pinned
/// since PR 3 — changing it invalidates every recorded pin, so any
/// adjustment must be a conscious re-pin recorded in EXPERIMENTS.md.
#[must_use]
pub fn fingerprint_encoded(enc: &EncodedCircuit) -> u64 {
    let mut h = StableHasher::new();
    for event in enc.events() {
        h.write_u64(event.gate.map_or(u64::MAX, |g| g as u64));
        h.write_u64(event.start);
        let (tag, qubit) = match &event.kind {
            EventKind::Braid { .. } => (1, 0),
            EventKind::DirectSameCut { .. } => (2, 0),
            EventKind::LatticeCnot { .. } => (3, 0),
            EventKind::CutModification { qubit } => (4, *qubit as u64),
        };
        h.write_u64(tag);
        h.write_u64(qubit);
        if let Some(path) = event.kind.path() {
            for &cell in path.cells() {
                h.write_usize(cell);
            }
        }
    }
    h.write_u64(enc.cycles());
    h.finish()
}

/// Mixes everything about a circuit that the compiler's *output* can
/// depend on: the qubit count and the CNOT stream.
///
/// Deliberately excluded: the circuit's display name (two stress jobs
/// with different names but identical gates must collide) and
/// single-qubit gates (the scheduler only places CNOTs; singles never
/// change the mapping, the schedule, or the report).
pub fn write_circuit(h: &mut StableHasher, circuit: &Circuit) {
    h.write_usize(circuit.qubits());
    h.write_usize(circuit.cnot_gates().len());
    for gate in circuit.cnot_gates() {
        h.write_usize(gate.control);
        h.write_usize(gate.target);
    }
}

/// Mixes a chip's full compile-relevant identity: code model, tile-array
/// shape, code distance, every per-channel bandwidth, and the defect
/// mask (count + ascending dead-slot indices — a defect-free chip mixes
/// a bare 0, so a masked chip with no defects hashes identically to the
/// equivalent uniform chip).
pub fn write_chip(h: &mut StableHasher, chip: &Chip) {
    h.write_str(chip.model().label());
    h.write_usize(chip.tile_rows());
    h.write_usize(chip.tile_cols());
    h.write_u32(chip.code_distance());
    h.write_usize(chip.h_bandwidths().len());
    for &b in chip.h_bandwidths() {
        h.write_u32(b);
    }
    h.write_usize(chip.v_bandwidths().len());
    for &b in chip.v_bandwidths() {
        h.write_u32(b);
    }
    h.write_usize(chip.defect_count());
    for slot in chip.defect_slots() {
        h.write_usize(slot);
    }
}

fn write_location(h: &mut StableHasher, location: LocationStrategy) {
    match location {
        LocationStrategy::Ecmas { restarts, seed } => {
            h.write_u8(0);
            h.write_usize(restarts);
            h.write_u64(seed);
        }
        LocationStrategy::Partitioner { seed } => {
            h.write_u8(1);
            h.write_u64(seed);
        }
        LocationStrategy::Trivial => h.write_u8(2),
    }
}

fn write_cut_init(h: &mut StableHasher, cut_init: CutInitStrategy) {
    match cut_init {
        CutInitStrategy::GreedyBipartitePrefix => h.write_u8(0),
        CutInitStrategy::Random { seed } => {
            h.write_u8(1);
            h.write_u64(seed);
        }
        CutInitStrategy::MaxCut { seed } => {
            h.write_u8(2);
            h.write_u64(seed);
        }
        CutInitStrategy::AllSame => h.write_u8(3),
    }
}

/// Mixes the parts of an [`EcmasConfig`] that the *mapping* stage
/// depends on — the validity domain of a cached map artifact: the
/// location strategy (placement) and cut-init strategy (initial cut
/// types are computed during mapping).
///
/// `order`, `cut_policy`, and `adjust_bandwidth` only steer scheduling,
/// so two configs differing solely in those can share a mapping.
pub fn write_mapping_config(h: &mut StableHasher, config: &EcmasConfig) {
    write_location(h, config.location);
    write_cut_init(h, config.cut_init);
}

/// Mixes a complete [`EcmasConfig`] — every knob that can change the
/// compiled schedule or its report.
pub fn write_config(h: &mut StableHasher, config: &EcmasConfig) {
    write_mapping_config(h, config);
    h.write_u8(match config.order {
        GateOrder::Priority => 0,
        GateOrder::CircuitOrder => 1,
    });
    h.write_u8(match config.cut_policy {
        CutPolicy::Adaptive => 0,
        CutPolicy::TimeFirst => 1,
        CutPolicy::ChannelFirst => 2,
        CutPolicy::NeverModify => 3,
    });
    h.write_bool(config.adjust_bandwidth);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::CodeModel;

    #[test]
    fn empty_hash_is_the_offset_basis() {
        assert_eq!(StableHasher::new().finish(), FNV_OFFSET_BASIS);
    }

    #[test]
    fn known_fnv1a_vector() {
        // FNV-1a("a") = 0xaf63dc4c8601ec8c — the published test vector.
        let mut h = StableHasher::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn bases_give_independent_streams() {
        let mut a = StableHasher::new();
        let mut b = StableHasher::with_basis(FNV_ALT_BASIS);
        a.write_u64(7);
        b.write_u64(7);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn circuit_hash_ignores_name_and_singles() {
        let mut a = Circuit::with_name(4, "alpha");
        a.cnot(0, 1);
        a.h(2);
        a.cnot(2, 3);
        let mut b = Circuit::with_name(4, "beta");
        b.cnot(0, 1);
        b.cnot(2, 3);
        b.t(0);
        let hash = |c: &Circuit| {
            let mut h = StableHasher::new();
            write_circuit(&mut h, c);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b), "name and single gates are not compile inputs");

        let mut c = Circuit::with_name(4, "alpha");
        c.cnot(1, 0);
        c.cnot(2, 3);
        assert_ne!(hash(&a), hash(&c), "control/target orientation is");
    }

    #[test]
    fn chip_hash_separates_models_and_bandwidths() {
        let dd = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 1, 3).unwrap();
        let ls = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3).unwrap();
        let wide = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 3).unwrap();
        let hash = |chip: &Chip| {
            let mut h = StableHasher::new();
            write_chip(&mut h, chip);
            h.finish()
        };
        assert_ne!(hash(&dd), hash(&ls));
        assert_ne!(hash(&dd), hash(&wide));
    }

    #[test]
    fn mapping_config_ignores_schedule_only_knobs() {
        let base = EcmasConfig::default();
        let sched_only = EcmasConfig {
            order: GateOrder::CircuitOrder,
            cut_policy: CutPolicy::NeverModify,
            adjust_bandwidth: false,
            ..base
        };
        let hash = |cfg: &EcmasConfig, full: bool| {
            let mut h = StableHasher::new();
            if full {
                write_config(&mut h, cfg);
            } else {
                write_mapping_config(&mut h, cfg);
            }
            h.finish()
        };
        assert_eq!(hash(&base, false), hash(&sched_only, false));
        assert_ne!(hash(&base, true), hash(&sched_only, true));

        let moved = EcmasConfig { location: LocationStrategy::Trivial, ..base };
        assert_ne!(hash(&base, false), hash(&moved, false));
    }
}
