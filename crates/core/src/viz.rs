//! ASCII rendering of encoded circuits: per-cycle chip occupancy maps and
//! a compact event timeline. Debugging aid used by the examples.

use std::fmt::Write as _;

use ecmas_chip::Cell;

use crate::encoded::{EncodedCircuit, EventKind};

/// Renders the chip occupancy at one clock cycle: `#` mapped tiles, `.`
/// free channel cells, `*` cells held by a path, `o` path endpoints, `M`
/// tiles undergoing cut modification.
///
/// # Example
///
/// ```
/// use ecmas::{viz, Ecmas};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.cnot(0, 1);
/// let chip = Chip::min_viable(CodeModel::LatticeSurgery, 2, 3)?;
/// let enc = Ecmas::default().compile(&c, &chip)?;
/// let frame = viz::render_cycle(&enc, 0);
/// assert!(frame.contains('o') && frame.contains('*'));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[must_use]
pub fn render_cycle(enc: &EncodedCircuit, cycle: u64) -> String {
    let grid = enc.chip().grid();
    let mut glyph: Vec<char> = (0..grid.len())
        .map(|idx| match grid.cell(idx) {
            Cell::Free => '.',
            Cell::Tile(slot) => {
                if enc.mapping().contains(&slot) {
                    '#'
                } else {
                    '.'
                }
            }
        })
        .collect();
    for event in enc.events() {
        let busy = cycle >= event.start && cycle < event.start + event.kind.path_hold().max(1);
        match &event.kind {
            EventKind::CutModification { qubit } => {
                if cycle >= event.start && cycle < event.end() {
                    let cell = grid.tile_cell(enc.mapping()[*qubit]);
                    glyph[cell] = 'M';
                }
            }
            kind => {
                if !busy {
                    continue;
                }
                if let Some(path) = kind.path() {
                    for &cell in path.interior() {
                        glyph[cell] = '*';
                    }
                    let cells = path.cells();
                    glyph[cells[0]] = 'o';
                    glyph[cells[cells.len() - 1]] = 'o';
                }
            }
        }
    }
    let mut out = String::with_capacity(grid.len() + grid.rows());
    for r in 0..grid.rows() {
        for c in 0..grid.cols() {
            out.push(glyph[grid.index(r, c)]);
        }
        out.push('\n');
    }
    out
}

/// Renders the first `max_cycles` cycles as stacked frames with headers.
#[must_use]
pub fn render_timeline(enc: &EncodedCircuit, max_cycles: u64) -> String {
    let mut out = String::new();
    let last = enc.cycles().min(max_cycles);
    for cycle in 0..last {
        let _ = writeln!(out, "-- cycle {cycle} --");
        out.push_str(&render_cycle(enc, cycle));
    }
    if enc.cycles() > last {
        let _ = writeln!(out, "… {} more cycles", enc.cycles() - last);
    }
    out
}

/// One-line-per-event schedule summary, sorted by start cycle.
#[must_use]
pub fn event_summary(enc: &EncodedCircuit) -> String {
    let mut events: Vec<_> = enc.events().iter().collect();
    events.sort_by_key(|e| (e.start, e.gate));
    let mut out = String::new();
    for e in events {
        let desc = match &e.kind {
            EventKind::Braid { path } => format!("braid len={}", path.len()),
            EventKind::DirectSameCut { path } => format!("direct-same-cut len={}", path.len()),
            EventKind::LatticeCnot { path } => format!("lattice-cnot len={}", path.len()),
            EventKind::CutModification { qubit } => format!("cut-modify q{qubit}"),
        };
        match e.gate {
            Some(g) => {
                let _ = writeln!(out, "[{:>4}..{:<4}] g{:<4} {desc}", e.start, e.end(), g);
            }
            None => {
                let _ = writeln!(out, "[{:>4}..{:<4}]       {desc}", e.start, e.end());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::Ecmas;
    use ecmas_chip::{Chip, CodeModel};
    use ecmas_circuit::Circuit;

    fn compiled() -> (Circuit, EncodedCircuit) {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        c.cnot(1, 2);
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 4, 3).unwrap();
        let enc = Ecmas::default().compile(&c, &chip).unwrap();
        (c, enc)
    }

    #[test]
    fn render_shows_tiles_and_paths() {
        let (_, enc) = compiled();
        let frame = render_cycle(&enc, 0);
        assert_eq!(frame.matches('#').count() + frame.matches('o').count(), 4);
        assert!(frame.contains('*'), "active paths render as *");
        assert_eq!(frame.lines().count(), enc.chip().grid().rows());
    }

    #[test]
    fn idle_cycle_shows_no_activity() {
        let (_, enc) = compiled();
        let frame = render_cycle(&enc, enc.cycles() + 5);
        assert!(!frame.contains('*'));
        assert!(!frame.contains('o'));
        assert_eq!(frame.matches('#').count(), 4);
    }

    #[test]
    fn timeline_caps_frames() {
        let (_, enc) = compiled();
        let t = render_timeline(&enc, 1);
        assert!(t.contains("-- cycle 0 --"));
        assert!(!t.contains("-- cycle 1 --"));
        assert!(t.contains("more cycles"));
    }

    #[test]
    fn event_summary_lists_all_events() {
        let (_, enc) = compiled();
        let s = event_summary(&enc);
        assert_eq!(s.lines().count(), enc.events().len());
        assert!(s.contains("lattice-cnot"));
    }

    #[test]
    fn modification_renders_as_m() {
        let mut c = Circuit::new(2);
        for _ in 0..3 {
            c.cnot(0, 1); // same pair thrice: adaptive policy flips a tile
        }
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 2, 3).unwrap();
        let enc = crate::compiler::Ecmas::new(crate::compiler::EcmasConfig {
            cut_init: crate::cut::CutInitStrategy::AllSame,
            ..Default::default()
        })
        .compile(&c, &chip)
        .unwrap();
        assert!(enc.modification_count() > 0, "flip expected for a repeated pair");
        let frame = render_cycle(&enc, 0);
        assert!(frame.contains('M'), "modification glyph expected:\n{frame}");
    }
}
