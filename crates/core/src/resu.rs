//! Ecmas-ReSu — the sufficient-resources scheduler (Algorithm 2, §IV-B2
//! and §IV-C3).
//!
//! When the chip's Communication Capacity `⌊(b−1)/2⌋ + 3` reaches the
//! circuit's parallelism degree `ĝPM`, every layer of the Para-Finding
//! execution scheme is guaranteed routable in one clock cycle (Theorem 2).
//!
//! * **Lattice surgery**: one layer per cycle ⇒ Δ = α, which is optimal.
//! * **Double defect**: layers are consumed in *batches* — the longest
//!   prefix whose accumulated communication subgraph stays bipartite
//!   (checked incrementally with a parity DSU). Each batch gets a cut-type
//!   remapping (3 cycles, free for the first batch, and orientation-chosen
//!   per component to minimize flips) and then runs one layer per cycle.
//!   By Lemma 1 every batch spans at least two layers, giving the paper's
//!   5/2-approximation (Theorem 3).

use std::sync::Arc;

use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{GateDag, GateId};
use ecmas_partition::ParityDsu;
use ecmas_route::{Disjointness, Path, RouteRequest, Router, RouterStats};

use crate::cut::CutType;
use crate::encoded::{EncodedCircuit, Event, EventKind};
use crate::error::CompileError;
use crate::profile::ExecutionScheme;

/// Schedules `scheme` on a sufficient-resources chip. See the module docs
/// for the per-model behaviour.
///
/// Routing failures (which Theorem 2 rules out at sufficient bandwidth,
/// but which can occur if the caller supplies a smaller chip) spill the
/// affected gates into extra cycles rather than failing, so the result is
/// always a valid encoded circuit.
///
/// # Errors
///
/// Returns [`CompileError::ScheduleStuck`] only if a single gate cannot be
/// routed even on an otherwise idle chip (a malformed chip/mapping).
pub fn schedule_sufficient(
    dag: &GateDag,
    scheme: &ExecutionScheme,
    chip: &Chip,
    mapping: &[usize],
) -> Result<EncodedCircuit, CompileError> {
    schedule_sufficient_with_stats(dag, scheme, chip, mapping, None).map(|(enc, _)| enc)
}

/// [`schedule_sufficient`] plus the router's effort/conflict counters —
/// the instrumented entry point the session pipeline's `CompileReport`
/// uses.
///
/// `initial_cuts` (double defect only) seeds the tiles' starting cut
/// types: the first batch then pays the usual 3-cycle remap when its
/// bipartition disagrees, instead of choosing the initial coloring
/// freely. `None` keeps Algorithm 2's free choice.
///
/// # Errors
///
/// As [`schedule_sufficient`], plus [`CompileError::CutTypesMismatch`]
/// when `initial_cuts` is supplied for a lattice-surgery chip or has the
/// wrong length.
pub fn schedule_sufficient_with_stats(
    dag: &GateDag,
    scheme: &ExecutionScheme,
    chip: &Chip,
    mapping: &[usize],
    initial_cuts: Option<&[CutType]>,
) -> Result<(EncodedCircuit, RouterStats), CompileError> {
    schedule_sufficient_shared(dag, scheme, &Arc::new(chip.clone()), mapping, initial_cuts)
}

/// [`schedule_sufficient_with_stats`] over an already-shared chip — the
/// session pipeline's entry point, so the result reuses the session's
/// `Arc<Chip>` instead of cloning the chip into the schedule.
///
/// # Errors
///
/// As [`schedule_sufficient_with_stats`].
pub fn schedule_sufficient_shared(
    dag: &GateDag,
    scheme: &ExecutionScheme,
    chip: &Arc<Chip>,
    mapping: &[usize],
    initial_cuts: Option<&[CutType]>,
) -> Result<(EncodedCircuit, RouterStats), CompileError> {
    match (chip.model(), initial_cuts) {
        (CodeModel::LatticeSurgery, Some(_)) => Err(CompileError::CutTypesMismatch),
        (CodeModel::DoubleDefect, Some(cuts)) if cuts.len() != dag.qubits() => {
            Err(CompileError::CutTypesMismatch)
        }
        (CodeModel::LatticeSurgery, None) => schedule_sufficient_ls(dag, scheme, chip, mapping),
        (CodeModel::DoubleDefect, _) => {
            schedule_sufficient_dd(dag, scheme, chip, mapping, initial_cuts)
        }
    }
}

fn schedule_sufficient_ls(
    dag: &GateDag,
    scheme: &ExecutionScheme,
    chip: &Arc<Chip>,
    mapping: &[usize],
) -> Result<(EncodedCircuit, RouterStats), CompileError> {
    let mut router = Router::new(chip.grid(), Disjointness::Edge);
    for &slot in mapping {
        router.block_tile(slot);
    }
    let mut events = Vec::new();
    let mut cycle: u64 = 0;
    let mut scratch = LayerScratch::default();
    for layer in scheme.layers() {
        // The whole layer goes to the router as one batch per cycle; the
        // router serves it shortest-estimated-distance first, so a long
        // greedy path laid down early cannot block several short ones
        // (Theorem 2 guarantees the paths exist; the order determines
        // whether greedy finds them).
        cycle = route_layer_batched(
            &mut router,
            dag,
            mapping,
            layer,
            cycle,
            &mut events,
            &mut scratch,
            |path| EventKind::LatticeCnot { path },
        )?;
    }
    let encoded = EncodedCircuit::new_shared(Arc::clone(chip), mapping.to_vec(), None, events);
    Ok((encoded, router.stats()))
}

/// Reusable buffers for [`route_layer_batched`]: the pending/spill gate
/// lists, the per-cycle request batch, and the outcome scratch — reused
/// across every layer of a schedule so the steady-state layer loop
/// allocates nothing but the paths it emits.
#[derive(Default)]
struct LayerScratch {
    pending: Vec<GateId>,
    still: Vec<GateId>,
    requests: Vec<RouteRequest>,
    outcomes: Vec<Option<Path>>,
}

/// Routes every gate of `layer` starting at `cycle`, one
/// [`Router::route_ready_by_distance`] batch per cycle, spilling blocked
/// gates into follow-up cycles. Returns the first cycle after the layer.
///
/// An empty layer (identity padding in the execution scheme) still
/// consumes its clock cycle.
#[allow(clippy::too_many_arguments)]
fn route_layer_batched(
    router: &mut Router,
    dag: &GateDag,
    mapping: &[usize],
    layer: &[GateId],
    mut cycle: u64,
    events: &mut Vec<Event>,
    scratch: &mut LayerScratch,
    kind: impl Fn(Path) -> EventKind,
) -> Result<u64, CompileError> {
    scratch.pending.clear();
    scratch.pending.extend_from_slice(layer);
    while !scratch.pending.is_empty() {
        scratch.requests.clear();
        scratch.requests.extend(scratch.pending.iter().map(|&g| {
            let gate = dag.gate(g);
            RouteRequest::route(mapping[gate.control], mapping[gate.target], 1)
        }));
        router.route_ready_by_distance_into(&scratch.requests, cycle, &mut scratch.outcomes);
        scratch.still.clear();
        for (&g, outcome) in scratch.pending.iter().zip(scratch.outcomes.drain(..)) {
            match outcome {
                Some(path) => events.push(Event { gate: Some(g), start: cycle, kind: kind(path) }),
                None => scratch.still.push(g),
            }
        }
        if scratch.still.len() == scratch.pending.len() {
            return Err(CompileError::ScheduleStuck { cycle, pending: scratch.still.len() });
        }
        std::mem::swap(&mut scratch.pending, &mut scratch.still);
        cycle += 1;
    }
    if layer.is_empty() {
        cycle += 1;
    }
    Ok(cycle)
}

#[allow(clippy::too_many_lines)]
fn schedule_sufficient_dd(
    dag: &GateDag,
    scheme: &ExecutionScheme,
    chip: &Arc<Chip>,
    mapping: &[usize],
    initial_cuts: Option<&[CutType]>,
) -> Result<(EncodedCircuit, RouterStats), CompileError> {
    let n = dag.qubits();
    let mut router = Router::new(chip.grid(), Disjointness::Node);
    for &slot in mapping {
        router.block_tile(slot);
    }
    let layers = scheme.layers();
    let mut events = Vec::new();
    let mut cycle: u64 = 0;
    let mut scratch = LayerScratch::default();
    // Seeded cuts make the first batch pay for any remap it needs; `None`
    // lets the first batch's coloring come for free.
    let mut cuts: Option<Vec<CutType>> = initial_cuts.map(<[CutType]>::to_vec);
    let mut initial: Option<Vec<CutType>> = initial_cuts.map(<[CutType]>::to_vec);

    let mut i = 0;
    while i < layers.len() {
        // Grow the batch while the accumulated comm subgraph is bipartite.
        let mut dsu = ParityDsu::new(n);
        let mut j = i;
        while j < layers.len() {
            let mut trial = dsu.clone();
            let consistent = layers[j].iter().all(|&g| {
                let gate = dag.gate(g);
                trial.union_different(gate.control, gate.target)
            });
            if !consistent {
                break;
            }
            dsu = trial;
            j += 1;
        }
        debug_assert!(j > i, "a single layer is a matching and always bipartite");

        // Target cut assignment: per DSU component pick the orientation
        // that flips the fewest tiles relative to the current cuts.
        let sides = dsu.coloring();
        let target = match &cuts {
            None => sides.iter().map(|&s| CutType::from_side(s)).collect::<Vec<_>>(),
            Some(current) => {
                let mut by_root: std::collections::HashMap<usize, (usize, usize)> =
                    std::collections::HashMap::new();
                let mut dsu_roots = dsu.clone();
                for q in 0..n {
                    let root = dsu_roots.root(q);
                    let entry = by_root.entry(root).or_insert((0, 0));
                    // Count flips if the component keeps its parity (side as
                    // is) vs inverts it.
                    if CutType::from_side(sides[q]) != current[q] {
                        entry.0 += 1;
                    }
                    if CutType::from_side(1 - sides[q]) != current[q] {
                        entry.1 += 1;
                    }
                }
                let mut target = Vec::with_capacity(n);
                for (q, &side) in sides.iter().enumerate() {
                    let root = dsu_roots.root(q);
                    let (keep, invert) = by_root[&root];
                    let side = if invert < keep { 1 - side } else { side };
                    target.push(CutType::from_side(side));
                }
                target
            }
        };

        match &mut cuts {
            None => {
                initial = Some(target.clone());
                cuts = Some(target);
            }
            Some(current) => {
                let flips: Vec<usize> = (0..n).filter(|&q| current[q] != target[q]).collect();
                if !flips.is_empty() {
                    for &q in &flips {
                        events.push(Event {
                            gate: None,
                            start: cycle,
                            kind: EventKind::CutModification { qubit: q },
                        });
                        current[q] = current[q].flipped();
                    }
                    cycle += 3;
                }
            }
        }

        // Execute the batch, one layer per cycle (spilling on congestion),
        // each layer a distance-ordered router batch — see the
        // lattice-surgery scheduler.
        for layer in &layers[i..j] {
            cycle = route_layer_batched(
                &mut router,
                dag,
                mapping,
                layer,
                cycle,
                &mut events,
                &mut scratch,
                |path| EventKind::Braid { path },
            )?;
        }
        i = j;
    }

    let encoded = EncodedCircuit::new_shared(Arc::clone(chip), mapping.to_vec(), initial, events);
    Ok((encoded, router.stats()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::validate_encoded;
    use crate::profile::para_finding;
    use ecmas_circuit::{benchmarks, random, Circuit};

    fn sufficient_chip(model: CodeModel, c: &Circuit, gpm: usize) -> Chip {
        Chip::sufficient(model, c.qubits(), gpm, 3).unwrap()
    }

    fn identity(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn lattice_surgery_resu_is_depth_optimal() {
        for c in [benchmarks::ghz(9), benchmarks::qft(8), benchmarks::ising_chain(9, 3)] {
            let dag = c.dag();
            let scheme = para_finding(&dag);
            let chip = sufficient_chip(CodeModel::LatticeSurgery, &c, scheme.gpm());
            let enc = schedule_sufficient(&dag, &scheme, &chip, &identity(c.qubits())).unwrap();
            assert_eq!(enc.cycles() as usize, dag.depth(), "{}: LS ReSu must hit α", c.name());
            validate_encoded(&c, &enc).unwrap();
        }
    }

    #[test]
    fn double_defect_resu_respects_approximation_bound() {
        for c in [benchmarks::qft(8), benchmarks::ising_chain(9, 3), benchmarks::ghz(9)] {
            let dag = c.dag();
            let scheme = para_finding(&dag);
            let chip = sufficient_chip(CodeModel::DoubleDefect, &c, scheme.gpm());
            let enc = schedule_sufficient(&dag, &scheme, &chip, &identity(c.qubits())).unwrap();
            validate_encoded(&c, &enc).unwrap();
            let bound = (5 * dag.depth()).div_ceil(2) + 3;
            assert!(
                enc.cycles() as usize <= bound,
                "{}: {} cycles exceeds 5/2·α bound {}",
                c.name(),
                enc.cycles(),
                bound
            );
        }
    }

    #[test]
    fn bipartite_circuit_needs_no_remapping() {
        let c = benchmarks::ising_chain(9, 3);
        let dag = c.dag();
        let scheme = para_finding(&dag);
        let chip = sufficient_chip(CodeModel::DoubleDefect, &c, scheme.gpm());
        let enc = schedule_sufficient(&dag, &scheme, &chip, &identity(c.qubits())).unwrap();
        assert_eq!(enc.modification_count(), 0, "bipartite comm graph: single batch");
        assert_eq!(enc.cycles() as usize, dag.depth());
    }

    #[test]
    fn non_bipartite_circuit_gets_batched_remaps() {
        // A triangle of gates repeated: must remap at least once.
        let mut c = Circuit::new(3);
        for _ in 0..4 {
            c.cnot(0, 1);
            c.cnot(1, 2);
            c.cnot(2, 0);
        }
        let dag = c.dag();
        let scheme = para_finding(&dag);
        let chip = sufficient_chip(CodeModel::DoubleDefect, &c, scheme.gpm().max(2));
        let enc = schedule_sufficient(&dag, &scheme, &chip, &identity(3)).unwrap();
        validate_encoded(&c, &enc).unwrap();
        assert!(enc.modification_count() > 0, "odd cycles force remapping");
        assert!(enc.cycles() as usize > dag.depth());
    }

    #[test]
    fn random_high_parallelism_routes_at_capacity() {
        let c = random::layered(16, 10, 6, 5);
        let dag = c.dag();
        let scheme = para_finding(&dag);
        let chip = sufficient_chip(CodeModel::LatticeSurgery, &c, scheme.gpm());
        assert!(chip.communication_capacity() >= scheme.gpm());
        let enc = schedule_sufficient(&dag, &scheme, &chip, &identity(16)).unwrap();
        assert_eq!(enc.cycles() as usize, 10, "sufficient bandwidth ⇒ no spill");
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(4);
        let dag = c.dag();
        let scheme = para_finding(&dag);
        let chip = sufficient_chip(CodeModel::LatticeSurgery, &c, 1);
        let enc = schedule_sufficient(&dag, &scheme, &chip, &identity(4)).unwrap();
        assert_eq!(enc.cycles(), 0);
    }
}

#[cfg(test)]
mod orientation_tests {
    use super::*;
    use crate::encoded::validate_encoded;
    use crate::profile::para_finding;
    use ecmas_circuit::Circuit;

    /// A circuit whose batches share most of their bipartition: the
    /// per-component orientation choice should keep flips sparse.
    #[test]
    fn remap_flips_are_minimized_per_component() {
        let mut c = Circuit::new(6);
        // Batch 1: a path (bipartite).
        for i in 0..5 {
            c.cnot(i, i + 1);
        }
        // Close an odd cycle so a second batch is forced…
        c.cnot(0, 2);
        // …then repeat the same path, which is consistent with the FIRST
        // coloring again.
        for i in 0..5 {
            c.cnot(i, i + 1);
        }
        let dag = c.dag();
        let scheme = para_finding(&dag);
        let chip = Chip::sufficient(CodeModel::DoubleDefect, 6, scheme.gpm().max(2), 3).unwrap();
        let mapping: Vec<usize> = (0..6).collect();
        let enc = schedule_sufficient(&dag, &scheme, &chip, &mapping).unwrap();
        validate_encoded(&c, &enc).unwrap();
        // The odd-cycle edge forces at least one remap, but never a
        // wholesale flip of all six tiles.
        assert!(enc.modification_count() >= 1);
        assert!(enc.modification_count() < 6, "orientation choice should keep flips sparse");
    }

    #[test]
    fn batches_never_split_below_two_layers() {
        // Lemma 1 corollary: with ≥2 layers remaining, each batch spans ≥2.
        let mut c = Circuit::new(4);
        for _ in 0..6 {
            c.cnot(0, 1);
            c.cnot(1, 2);
            c.cnot(2, 0); // triangle: every batch hits the odd cycle
            c.cnot(2, 3);
        }
        let dag = c.dag();
        let scheme = para_finding(&dag);
        let chip = Chip::sufficient(CodeModel::DoubleDefect, 4, scheme.gpm().max(2), 3).unwrap();
        let mapping: Vec<usize> = (0..4).collect();
        let enc = schedule_sufficient(&dag, &scheme, &chip, &mapping).unwrap();
        validate_encoded(&c, &enc).unwrap();
        // Remap batches cost 3 cycles each; with L layers and batches of
        // ≥2 layers, total ≤ L + 3·⌈L/2⌉ (Theorem 3's counting).
        let layers = scheme.depth() as u64;
        assert!(enc.cycles() <= layers + 3 * layers.div_ceil(2));
    }
}
