//! The 3-SAT → cut-type-initialization reduction of Theorem 1
//! (Appendix A).
//!
//! The paper proves NP-hardness of the double-defect initialization
//! problem by compiling a 3-SAT instance into a circuit whose optimal
//! schedule length reveals satisfiability: each clause becomes an 8-qubit
//! gadget whose CNOTs run in one cycle exactly when the literal tiles'
//! cut types encode a satisfying assignment (cut type ↔ truth value), and
//! consistency sub-circuits tie each variable's occurrences to a shared
//! "ideal literal" tile. Placeholder gates keep the tiles too busy to
//! cheat by modifying their cut type mid-gadget.
//!
//! This module reconstructs that gadget from the paper's prose: the exact
//! padding constants of Fig. 13 are not fully specified, so the
//! reconstruction preserves the *semantic* property (tested below: cut
//! initializations that encode satisfying assignments schedule strictly
//! faster than ones that falsify the clause) rather than the literal
//! `10 + 3n` threshold.

use ecmas_circuit::Circuit;

/// A literal: variable index plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: usize,
    /// `true` for a positive occurrence.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    #[must_use]
    pub fn pos(var: usize) -> Self {
        Lit { var, positive: true }
    }

    /// Negative literal of `var`.
    #[must_use]
    pub fn neg(var: usize) -> Self {
        Lit { var, positive: false }
    }
}

/// A 3-SAT instance.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SatInstance {
    /// Number of variables.
    pub vars: usize,
    /// Three-literal clauses.
    pub clauses: Vec<[Lit; 3]>,
}

impl SatInstance {
    /// Evaluates the instance under `assignment` (indexed by variable).
    ///
    /// # Panics
    ///
    /// Panics if `assignment.len() < self.vars`.
    #[must_use]
    pub fn satisfied_by(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|clause| clause.iter().any(|l| assignment[l.var] == l.positive))
    }
}

/// Qubit roles within the reduction circuit. Offsets into the clause
/// gadget: `[qa, qa', qb, qb', qc, qc', qT, qF]`.
const GADGET_WIDTH: usize = 8;

/// Layout of the reduction circuit's qubits.
#[derive(Clone, Debug)]
pub struct ReductionLayout {
    /// Number of clauses.
    pub clauses: usize,
    /// Number of variables.
    pub vars: usize,
}

impl ReductionLayout {
    /// The literal qubit of clause `c`, literal position `k ∈ 0..3`.
    #[must_use]
    pub fn literal(&self, c: usize, k: usize) -> usize {
        c * GADGET_WIDTH + 2 * k
    }

    /// The ancilla partner of a literal qubit.
    #[must_use]
    pub fn literal_ancilla(&self, c: usize, k: usize) -> usize {
        c * GADGET_WIDTH + 2 * k + 1
    }

    /// Clause `c`'s X-cut reference tile `qT`.
    #[must_use]
    pub fn q_true(&self, c: usize) -> usize {
        c * GADGET_WIDTH + 6
    }

    /// Clause `c`'s Z-cut reference tile `qF`.
    #[must_use]
    pub fn q_false(&self, c: usize) -> usize {
        c * GADGET_WIDTH + 7
    }

    /// The shared "ideal literal" qubit of variable `v`.
    #[must_use]
    pub fn ideal(&self, v: usize) -> usize {
        self.clauses * GADGET_WIDTH + 2 * v
    }

    /// The ideal literal's placeholder ancilla.
    #[must_use]
    pub fn ideal_ancilla(&self, v: usize) -> usize {
        self.clauses * GADGET_WIDTH + 2 * v + 1
    }

    /// Total qubit count.
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.clauses * GADGET_WIDTH + 2 * self.vars
    }
}

/// Builds the Theorem-1 reduction circuit for `inst`.
///
/// Per clause: three serialized literal stages, each braiding the literal
/// qubit with `qT` (positive occurrence) or `qF` (negative), followed by a
/// `qT`–`qF` braid, while the other two literal pairs run placeholder
/// CNOTs. Then each literal qubit runs a consistency CNOT with its
/// variable's shared ideal-literal qubit, and the ideal pairs run
/// placeholder CNOTs so they cannot flip cut type for free.
#[must_use]
pub fn reduction_circuit(inst: &SatInstance) -> (Circuit, ReductionLayout) {
    let layout = ReductionLayout { clauses: inst.clauses.len(), vars: inst.vars };
    let mut c = Circuit::with_name(layout.qubits(), "sat_reduction");

    for (ci, clause) in inst.clauses.iter().enumerate() {
        for (k, lit) in clause.iter().enumerate() {
            let lq = layout.literal(ci, k);
            let target = if lit.positive { layout.q_true(ci) } else { layout.q_false(ci) };
            c.cnot(lq, target);
            c.cnot(layout.q_true(ci), layout.q_false(ci));
            // Placeholders on the two idle literal pairs: keeps their tiles
            // busy so cut-type modification cannot hide in this stage.
            for other in 0..3 {
                if other != k {
                    c.cnot(layout.literal(ci, other), layout.literal_ancilla(ci, other));
                }
            }
        }
    }

    // Consistency: every occurrence must agree with the ideal literal.
    for (ci, clause) in inst.clauses.iter().enumerate() {
        for (k, lit) in clause.iter().enumerate() {
            let lq = layout.literal(ci, k);
            c.cnot(lq, layout.ideal(lit.var));
            // Placeholder on the ideal pair between uses.
            c.cnot(layout.ideal(lit.var), layout.ideal_ancilla(lit.var));
        }
    }

    (c, layout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::CutType;
    use crate::engine::{schedule_limited, ScheduleConfig};
    use ecmas_chip::{Chip, CodeModel};

    fn one_clause() -> SatInstance {
        SatInstance { vars: 3, clauses: vec![[Lit::pos(0), Lit::neg(1), Lit::pos(2)]] }
    }

    #[test]
    fn satisfied_by_checks_all_clauses() {
        let inst = SatInstance {
            vars: 2,
            clauses: vec![
                [Lit::pos(0), Lit::pos(0), Lit::neg(1)],
                [Lit::neg(0), Lit::pos(1), Lit::pos(1)],
            ],
        };
        assert!(inst.satisfied_by(&[true, true]));
        assert!(!inst.satisfied_by(&[true, false]));
        assert!(inst.satisfied_by(&[false, false]));
    }

    #[test]
    fn layout_is_contiguous() {
        let (c, layout) = reduction_circuit(&one_clause());
        assert_eq!(layout.qubits(), 8 + 6);
        assert_eq!(c.qubits(), layout.qubits());
        assert_eq!(layout.q_true(0), 6);
        assert_eq!(layout.ideal(2), 12);
    }

    #[test]
    fn gate_count_formula() {
        let inst = SatInstance {
            vars: 3,
            clauses: vec![
                [Lit::pos(0), Lit::neg(1), Lit::pos(2)],
                [Lit::neg(0), Lit::pos(1), Lit::neg(2)],
            ],
        };
        let (c, _) = reduction_circuit(&inst);
        // Per clause: 3 stages × (1 literal + 1 TF + 2 placeholders) = 12,
        // plus 3 × (1 consistency + 1 ideal placeholder) = 6.
        assert_eq!(c.cnot_count(), 2 * (12 + 6));
    }

    /// Schedule the reduction circuit under a given cut assignment derived
    /// from a truth assignment, on a generous chip, and return Δ.
    fn cycles_under(inst: &SatInstance, assignment: &[bool]) -> u64 {
        let (c, layout) = reduction_circuit(inst);
        let n = c.qubits();
        // Encode: qT = X, qF = Z; literal qubit "true" ⇒ opposite of qT so
        // a positive occurrence braids in one cycle; ancillas opposite
        // their partner so placeholders are 1-cycle.
        let mut cuts = vec![CutType::X; n];
        for ci in 0..layout.clauses {
            cuts[layout.q_true(ci)] = CutType::X;
            cuts[layout.q_false(ci)] = CutType::Z;
            for (k, lit) in inst.clauses[ci].iter().enumerate() {
                let value = assignment[lit.var];
                let lq = layout.literal(ci, k);
                // A "true" variable should braid cheaply with qT when
                // positive (needs cut ≠ X ⇒ Z) and with qF when negative.
                cuts[lq] = if value { CutType::Z } else { CutType::X };
                cuts[layout.literal_ancilla(ci, k)] = cuts[lq].flipped();
            }
        }
        for v in 0..layout.vars {
            cuts[layout.ideal(v)] = if assignment[v] { CutType::X } else { CutType::Z };
            cuts[layout.ideal_ancilla(v)] = cuts[layout.ideal(v)].flipped();
        }
        let chip = Chip::sufficient(CodeModel::DoubleDefect, n, 8, 3).unwrap();
        let mapping: Vec<usize> = (0..n).collect();
        let enc =
            schedule_limited(&c.dag(), &chip, &mapping, Some(&cuts), ScheduleConfig::default())
                .unwrap();
        enc.cycles()
    }

    #[test]
    fn satisfying_assignments_schedule_faster() {
        // Clause (x0 ∨ ¬x1 ∨ x2): compare a satisfying assignment against
        // the unique falsifying one (F, T, F). The reduction's semantic
        // core: truth ↔ cut type, satisfied clauses run on the fast path.
        let inst = one_clause();
        let falsifying = cycles_under(&inst, &[false, true, false]);
        for sat in [[true, true, true], [true, false, false], [false, false, true]] {
            assert!(inst.satisfied_by(&sat));
            let fast = cycles_under(&inst, &sat);
            assert!(fast < falsifying, "satisfying {sat:?} took {fast} ≥ falsifying {falsifying}");
        }
    }

    #[test]
    fn reduction_scales_linearly() {
        let mut clauses = Vec::new();
        for i in 0..5 {
            clauses.push([Lit::pos(i % 3), Lit::neg((i + 1) % 3), Lit::pos((i + 2) % 3)]);
        }
        let inst = SatInstance { vars: 3, clauses };
        let (c, layout) = reduction_circuit(&inst);
        assert_eq!(c.qubits(), 5 * 8 + 6);
        assert_eq!(layout.qubits(), c.qubits());
    }
}
