//! The Ecmas compiler facade: pre-processing + transforming (Fig. 9).

use ecmas_chip::Chip;
use ecmas_circuit::Circuit;

use crate::cut::CutInitStrategy;
use crate::encoded::EncodedCircuit;
use crate::engine::{CutPolicy, GateOrder};
use crate::error::CompileError;
use crate::mapping::LocationStrategy;
use crate::session::{CompileOutcome, ProfileArtifact, Profiled};

/// Compiler configuration: every knob the paper ablates, with the paper's
/// choices as [`Default`].
///
/// # Example
///
/// ```
/// use ecmas::{Ecmas, EcmasConfig};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::benchmarks::ghz;
///
/// let circuit = ghz(9);
/// let chip = Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?;
/// let encoded = Ecmas::new(EcmasConfig::default()).compile(&circuit, &chip)?;
/// assert_eq!(encoded.cycles() as usize, circuit.depth()); // Δ = α here
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EcmasConfig {
    /// Initial tile-location strategy (Table II).
    pub location: LocationStrategy,
    /// Initial cut-type strategy for double defect (Table III).
    pub cut_init: CutInitStrategy,
    /// Gate ordering within a cycle (Table IV).
    pub order: GateOrder,
    /// Same-cut-type decision policy (Table V).
    pub cut_policy: CutPolicy,
    /// Whether to run the bandwidth-adjusting pre-processing step.
    pub adjust_bandwidth: bool,
}

impl Default for EcmasConfig {
    fn default() -> Self {
        EcmasConfig {
            location: LocationStrategy::Ecmas { restarts: 8, seed: 0xEC4A5 },
            cut_init: CutInitStrategy::GreedyBipartitePrefix,
            order: GateOrder::Priority,
            cut_policy: CutPolicy::Adaptive,
            adjust_bandwidth: true,
        }
    }
}

/// An ordered set of heterogeneous candidate target chips for
/// [`Ecmas::compile_auto_fleet`].
///
/// A fleet models a hardware pool: several chips of different sizes,
/// bandwidths, code models, or defect masks, any of which could host a
/// job. Selection is cheapest-first by [`Chip::physical_qubits`] (ties
/// broken by insertion order), so a job lands on the smallest target
/// whose live capacity fits it — larger chips are held for jobs that
/// need them.
///
/// # Example
///
/// ```
/// use ecmas::{ChipFleet, Ecmas};
/// use ecmas_chip::{Chip, CodeModel};
/// use ecmas_circuit::benchmarks::ghz;
///
/// let fleet = ChipFleet::new(vec![
///     Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3)?, // too small
///     Chip::min_viable(CodeModel::LatticeSurgery, 9, 3)?,
/// ]);
/// let selected = Ecmas::default().compile_auto_fleet(&ghz(9), &fleet)?;
/// assert_eq!(selected.chip_index, 1); // the 2x2 chip cannot hold 9 qubits
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct ChipFleet {
    chips: Vec<Chip>,
    by_cost: Vec<usize>,
}

impl ChipFleet {
    /// Builds a fleet from candidate chips (insertion order is the
    /// identity callers see in [`FleetSelection::chip_index`]). An empty
    /// fleet is allowed; compiling against it reports
    /// [`CompileError::FleetExhausted`].
    #[must_use]
    pub fn new(chips: Vec<Chip>) -> Self {
        let mut by_cost: Vec<usize> = (0..chips.len()).collect();
        by_cost.sort_by_key(|&i| chips[i].physical_qubits());
        ChipFleet { chips, by_cost }
    }

    /// The candidate chips in insertion order.
    #[must_use]
    pub fn chips(&self) -> &[Chip] {
        &self.chips
    }

    /// Candidate indices cheapest-first (the order
    /// [`Ecmas::compile_auto_fleet`] tries them).
    #[must_use]
    pub fn cost_order(&self) -> &[usize] {
        &self.by_cost
    }

    /// Number of candidate chips.
    #[must_use]
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the fleet has no candidates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }
}

/// What [`Ecmas::compile_auto_fleet`] returns: which candidate won and
/// the compilation outcome on it.
#[derive(Clone, Debug)]
pub struct FleetSelection {
    /// Index of the winning chip in [`ChipFleet::chips`] (insertion
    /// order, not cost order).
    pub chip_index: usize,
    /// The outcome compiled on that chip.
    pub outcome: CompileOutcome,
}

/// The resource-adaptive mapping-and-scheduling compiler (§IV).
///
/// [`session`](Self::session) starts the staged pipeline (profile → map →
/// schedule, with per-stage artifacts and overrides — see
/// [`crate::session`]). The one-shot entry points are thin wrappers over
/// it: [`compile`](Self::compile) runs the limited-resources pipeline
/// (Algorithm 1), [`compile_resu`](Self::compile_resu) runs Ecmas-ReSu
/// (Algorithm 2) and expects a sufficient-resources chip (see
/// [`Chip::sufficient`]), and [`compile_auto`](Self::compile_auto) makes
/// the paper's limited-vs-ReSu choice from the chip's communication
/// capacity and returns the outcome with its structured report.
#[derive(Clone, Debug, Default)]
pub struct Ecmas {
    config: EcmasConfig,
}

impl Ecmas {
    /// Creates a compiler with the given configuration.
    #[must_use]
    pub fn new(config: EcmasConfig) -> Self {
        Ecmas { config }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &EcmasConfig {
        &self.config
    }

    /// Starts a staged compilation session: profiling runs immediately and
    /// the returned [`Profiled`] stage exposes the execution scheme and
    /// accepts overrides before mapping and scheduling (see
    /// [`crate::session`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] if the circuit does not fit
    /// the chip.
    pub fn session<'c>(
        &self,
        circuit: &'c Circuit,
        chip: &Chip,
    ) -> Result<Profiled<'c>, CompileError> {
        Profiled::start(self.config, circuit, chip)
    }

    /// Starts a session from a cached [`ProfileArtifact`] instead of
    /// re-profiling: the fit check runs, the DAG / communication graph /
    /// execution scheme are taken from the artifact, and the pipeline
    /// continues exactly as after [`session`](Self::session). The caller
    /// must supply an artifact profiled from the *same CNOT stream* —
    /// profiling ignores the chip and config, so those may differ (see
    /// [`ProfileArtifact`]).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] if the circuit does not
    /// fit the chip, or [`CompileError::InvalidMapping`] when the
    /// artifact's qubit count disagrees with the circuit.
    ///
    /// [`CompileError::InvalidMapping`]: crate::error::CompileError::InvalidMapping
    pub fn resume_session<'c>(
        &self,
        circuit: &'c Circuit,
        chip: &Chip,
        artifact: &ProfileArtifact,
    ) -> Result<Profiled<'c>, CompileError> {
        Profiled::resume(self.config, circuit, chip, artifact)
    }

    /// Full pipeline for limited resources: profile, map, adjust
    /// bandwidth, initialize cut types, schedule with Algorithm 1. A thin
    /// wrapper over [`session`](Self::session) that discards the report.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::TooManyQubits`] if the circuit does not fit
    /// the chip, or a scheduling error on internal model violations.
    pub fn compile(&self, circuit: &Circuit, chip: &Chip) -> Result<EncodedCircuit, CompileError> {
        Ok(self.session(circuit, chip)?.map()?.schedule()?.into_outcome().encoded)
    }

    /// Ecmas-ReSu: Para-Finding layering plus Algorithm 2 batching.
    /// Intended for chips built with [`Chip::sufficient`]; on smaller chips
    /// congested layers spill into extra cycles but the result stays valid.
    /// A thin wrapper over [`session`](Self::session).
    ///
    /// # Errors
    ///
    /// As [`compile`](Self::compile).
    pub fn compile_resu(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<EncodedCircuit, CompileError> {
        Ok(self.session(circuit, chip)?.map()?.schedule_resu()?.into_outcome().encoded)
    }

    /// The paper's resource-adaptive entry point (Fig. 9): compares the
    /// chip's communication capacity against the profiled `ĝPM` and runs
    /// Ecmas-ReSu when resources are sufficient, Algorithm 1 otherwise.
    /// Returns the encoded circuit together with its [`CompileReport`]
    /// (which records the choice).
    ///
    /// [`CompileReport`]: crate::session::CompileReport
    ///
    /// # Errors
    ///
    /// As [`compile`](Self::compile).
    pub fn compile_auto(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        Ok(self.session(circuit, chip)?.map()?.schedule_auto()?.into_outcome())
    }

    /// Heterogeneous target selection: tries the fleet's candidates
    /// cheapest-first (by [`Chip::physical_qubits`]), skips chips whose
    /// live tile capacity cannot hold the circuit, and runs
    /// [`compile_auto`](Self::compile_auto) on each remaining candidate
    /// until one succeeds. A candidate that fails to compile (e.g. a
    /// routing stall on a heavily defective chip) is fallen through, not
    /// fatal — the next-cheapest chip gets the job.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::FleetExhausted`] when no candidate fits or
    /// every fitting candidate failed to compile.
    pub fn compile_auto_fleet(
        &self,
        circuit: &Circuit,
        fleet: &ChipFleet,
    ) -> Result<FleetSelection, CompileError> {
        let qubits = circuit.qubits();
        for &chip_index in fleet.cost_order() {
            let chip = &fleet.chips()[chip_index];
            if qubits > chip.live_tiles() {
                continue;
            }
            if let Ok(outcome) = self.compile_auto(circuit, chip) {
                return Ok(FleetSelection { chip_index, outcome });
            }
        }
        Err(CompileError::FleetExhausted { candidates: fleet.len(), qubits })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoded::validate_encoded;
    use ecmas_chip::CodeModel;
    use ecmas_circuit::benchmarks;

    #[test]
    fn default_pipeline_compiles_and_validates_dd() {
        let c = benchmarks::ising_n10();
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
        let enc = Ecmas::default().compile(&c, &chip).unwrap();
        validate_encoded(&c, &enc).unwrap();
        assert_eq!(enc.cycles() as usize, c.depth(), "bipartite ising hits α");
    }

    #[test]
    fn default_pipeline_compiles_and_validates_ls() {
        let c = benchmarks::ising_n10();
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 10, 3).unwrap();
        let enc = Ecmas::default().compile(&c, &chip).unwrap();
        validate_encoded(&c, &enc).unwrap();
        assert!(enc.cycles() as usize >= c.depth());
    }

    #[test]
    fn resu_ls_hits_alpha() {
        let c = benchmarks::dnn_n8();
        let scheme = crate::para_finding(&c.dag());
        let chip = Chip::sufficient(CodeModel::LatticeSurgery, 8, scheme.gpm(), 3).unwrap();
        let enc = Ecmas::default().compile_resu(&c, &chip).unwrap();
        validate_encoded(&c, &enc).unwrap();
        assert_eq!(enc.cycles() as usize, c.depth());
    }

    #[test]
    fn qubits_overflow_is_reported() {
        let c = benchmarks::qft_n10();
        let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        assert!(matches!(
            Ecmas::default().compile(&c, &chip),
            Err(CompileError::TooManyQubits { qubits: 10, slots: 4 })
        ));
    }

    #[test]
    fn fleet_skips_chips_without_live_capacity() {
        let c = benchmarks::ising_n10();
        // Cheapest candidate has 12 slots but only 8 live — it must be
        // skipped even though it is first in cost order.
        let holey = Chip::uniform(CodeModel::LatticeSurgery, 3, 4, 1, 3)
            .unwrap()
            .with_defects(&[(0, 0), (1, 1), (2, 2), (0, 3)])
            .unwrap();
        let big = Chip::uniform(CodeModel::LatticeSurgery, 4, 4, 1, 3).unwrap();
        assert!(holey.physical_qubits() < big.physical_qubits());
        let fleet = ChipFleet::new(vec![holey, big]);
        let selected = Ecmas::default().compile_auto_fleet(&c, &fleet).unwrap();
        assert_eq!(selected.chip_index, 1);
        validate_encoded(&c, &selected.outcome.encoded).unwrap();
    }

    #[test]
    fn fleet_prefers_the_cheapest_fitting_chip() {
        let c = benchmarks::ising_n10();
        let small = Chip::uniform(CodeModel::LatticeSurgery, 3, 4, 1, 3).unwrap();
        let big = Chip::uniform(CodeModel::LatticeSurgery, 8, 8, 2, 3).unwrap();
        // Insertion order is expensive-first; cost order must win.
        let fleet = ChipFleet::new(vec![big, small]);
        assert_eq!(fleet.cost_order(), &[1, 0]);
        let selected = Ecmas::default().compile_auto_fleet(&c, &fleet).unwrap();
        assert_eq!(selected.chip_index, 1);
    }

    #[test]
    fn exhausted_fleet_is_reported() {
        let c = benchmarks::qft_n10();
        let tiny = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        let fleet = ChipFleet::new(vec![tiny]);
        assert!(matches!(
            Ecmas::default().compile_auto_fleet(&c, &fleet),
            Err(CompileError::FleetExhausted { candidates: 1, qubits: 10 })
        ));
        let empty = ChipFleet::new(Vec::new());
        assert!(matches!(
            Ecmas::default().compile_auto_fleet(&c, &empty),
            Err(CompileError::FleetExhausted { candidates: 0, qubits: 10 })
        ));
    }

    #[test]
    fn adjust_bandwidth_helps_or_ties_on_wide_chip() {
        let c = benchmarks::dnn_n8();
        let chip = Chip::four_x(CodeModel::DoubleDefect, 8, 3).unwrap();
        let with = Ecmas::new(EcmasConfig { adjust_bandwidth: true, ..EcmasConfig::default() })
            .compile(&c, &chip)
            .unwrap();
        let without = Ecmas::new(EcmasConfig { adjust_bandwidth: false, ..EcmasConfig::default() })
            .compile(&c, &chip)
            .unwrap();
        validate_encoded(&c, &with).unwrap();
        validate_encoded(&c, &without).unwrap();
        assert!(with.cycles() <= without.cycles() + 2, "adjusting should not hurt much");
    }
}
