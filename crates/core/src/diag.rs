//! Workspace-wide diagnostics: stable-coded findings from the static
//! analyzer.
//!
//! Every analysis in the workspace — the schedule validator in
//! [`encoded`](crate::encoded), the circuit lints and QASM frontend in
//! `ecmas-analyze` — reports through one type: a [`Diagnostic`] carrying
//! a stable [`Code`], a [`Severity`], a human-readable message, and
//! (for source-level findings) a line/column [`Span`]. Codes are a
//! machine-readable contract: `E0xx` legality errors, `W0xx` lints,
//! `H0xx` hints. Tools match on the code, never the message text.
//!
//! The registry lives here, in one enum, so a code can never be reused
//! with two meanings; see ARCHITECTURE.md for the full table and the
//! policy for adding new ones.

use std::fmt;

/// How serious a diagnostic is.
///
/// The severity is a function of the [`Code`] class — every `E` code is
/// an error, every `W` a warning, every `H` a hint — so gating logic
/// ("fail CI on errors") never needs a per-code table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The artifact is illegal: an invalid schedule or unparseable /
    /// unmappable circuit. Gates (CI, the daemon's analyze mode) fail on
    /// these.
    Error,
    /// Legal but suspicious: dead qubits, self-cancelling gate pairs,
    /// congestion predictors. Never fails a gate.
    Warning,
    /// Informational metrics: idle bubbles, critical-path slack.
    Hint,
}

impl Severity {
    /// Lower-case label used in JSON output and CLI rendering.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        }
    }
}

/// A 1-based line/column source location for circuit-text diagnostics.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Span {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column within the line (0 when unknown — e.g. an
    /// end-of-file error after the last token).
    pub col: usize,
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// The stable diagnostic-code registry.
///
/// A code's number is forever: removing a lint retires its code,
/// never frees it for reuse. The enum is `#[non_exhaustive]` so new
/// codes can be added without breaking downstream matches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    /// E001 — mapping malformed: slot out of range, reused, wrong arity,
    /// or on a defective tile.
    BadMapping,
    /// E002 — a DAG gate is missing from the schedule or scheduled twice.
    GateCoverage,
    /// E003 — event kind incompatible with the chip's code model (or the
    /// schedule's qubit bookkeeping does not fit the circuit).
    WrongModel,
    /// E004 — a gate starts before one of its DAG parents finishes.
    DependencyOrder,
    /// E005 — two events overlap on the same logical qubit.
    QubitOverlap,
    /// E006 — braid between equal cut types, or direct-same-cut CNOT
    /// between different ones.
    CutTypeRule,
    /// E007 — structurally invalid path (non-adjacent steps, wrong
    /// endpoints, interior on a mapped tile, any cell on a defect).
    MalformedPath,
    /// E008 — two simultaneous paths violate the model's disjointness
    /// rule.
    PathConflict,
    /// E009 — per-cycle per-channel bandwidth conservation violated
    /// (more concurrent paths through a channel section than it has
    /// lanes; any crossing of a disabled channel's seam).
    ChannelOversubscribed,
    /// E010 — QASM source failed to lex or parse.
    QasmParse,
    /// E011 — a gate references a qubit index outside the circuit's
    /// declared width.
    QubitOutOfRange,
    /// E012 — the circuit is wider than the chip has live tiles.
    WidthExceedsChip,
    /// W001 — a declared qubit is touched by no gate.
    UnusedQubit,
    /// W002 — two adjacent identical CNOTs cancel to the identity.
    SelfCancellingCnots,
    /// W003 — the communication graph splits into multiple components.
    DisconnectedCommGraph,
    /// W004 — a qubit's communication degree is an outlier that predicts
    /// router congestion around its tile.
    DegreeHotspot,
    /// H001 — idle bubbles: cycles where mapped qubits sit between
    /// events.
    IdleBubbles,
    /// H002 — slack between the schedule's Δ and the dependency-chain
    /// lower bound.
    CriticalPathSlack,
}

impl Code {
    /// The stable code string (`"E007"`, `"W002"`, …).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::BadMapping => "E001",
            Code::GateCoverage => "E002",
            Code::WrongModel => "E003",
            Code::DependencyOrder => "E004",
            Code::QubitOverlap => "E005",
            Code::CutTypeRule => "E006",
            Code::MalformedPath => "E007",
            Code::PathConflict => "E008",
            Code::ChannelOversubscribed => "E009",
            Code::QasmParse => "E010",
            Code::QubitOutOfRange => "E011",
            Code::WidthExceedsChip => "E012",
            Code::UnusedQubit => "W001",
            Code::SelfCancellingCnots => "W002",
            Code::DisconnectedCommGraph => "W003",
            Code::DegreeHotspot => "W004",
            Code::IdleBubbles => "H001",
            Code::CriticalPathSlack => "H002",
        }
    }

    /// The severity class the code's prefix letter encodes.
    #[must_use]
    pub fn severity(self) -> Severity {
        match self.as_str().as_bytes()[0] {
            b'E' => Severity::Error,
            b'W' => Severity::Warning,
            _ => Severity::Hint,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding from an analysis pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code (the machine-readable identity of the finding).
    pub code: Code,
    /// Severity, always `code.severity()`.
    pub severity: Severity,
    /// Human-readable description of this particular instance.
    pub message: String,
    /// Source location, for findings anchored in circuit text.
    pub span: Option<Span>,
}

impl Diagnostic {
    /// A diagnostic with the code's canonical severity and no span.
    #[must_use]
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic { code, severity: code.severity(), message: message.into(), span: None }
    }

    /// Attaches a source span.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// `true` for error-severity findings (the gating class).
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Serializes the diagnostic as a self-contained JSON object
    /// (`{"code":"E007","severity":"error","message":"…","span":{"line":3,"col":7}}`;
    /// the `span` key is omitted when absent).
    #[must_use]
    pub fn to_json(&self) -> String {
        let span = self
            .span
            .map(|s| format!(",\"span\":{{\"line\":{},\"col\":{}}}", s.line, s.col))
            .unwrap_or_default();
        format!(
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\"{span}}}",
            self.code,
            self.severity.label(),
            escape(&self.message),
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.severity.label(), self.code)?;
        if let Some(span) = self.span {
            write!(f, " {span}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Serializes a diagnostic list as a JSON array.
#[must_use]
pub fn diagnostics_to_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.to_json());
    }
    out.push(']');
    out
}

/// Minimal JSON string escape (mirrors `ecmas_serve::json::escape`,
/// which this crate cannot depend on without a cycle).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_follows_code_class() {
        assert_eq!(Code::MalformedPath.severity(), Severity::Error);
        assert_eq!(Code::UnusedQubit.severity(), Severity::Warning);
        assert_eq!(Code::IdleBubbles.severity(), Severity::Hint);
    }

    #[test]
    fn code_strings_are_unique() {
        let all = [
            Code::BadMapping,
            Code::GateCoverage,
            Code::WrongModel,
            Code::DependencyOrder,
            Code::QubitOverlap,
            Code::CutTypeRule,
            Code::MalformedPath,
            Code::PathConflict,
            Code::ChannelOversubscribed,
            Code::QasmParse,
            Code::QubitOutOfRange,
            Code::WidthExceedsChip,
            Code::UnusedQubit,
            Code::SelfCancellingCnots,
            Code::DisconnectedCommGraph,
            Code::DegreeHotspot,
            Code::IdleBubbles,
            Code::CriticalPathSlack,
        ];
        let strings: std::collections::HashSet<&str> = all.iter().map(|c| c.as_str()).collect();
        assert_eq!(strings.len(), all.len());
    }

    #[test]
    fn json_escapes_and_spans() {
        let d = Diagnostic::new(Code::QasmParse, "unexpected \"tok\"")
            .with_span(Span { line: 3, col: 7 });
        assert_eq!(
            d.to_json(),
            "{\"code\":\"E010\",\"severity\":\"error\",\
             \"message\":\"unexpected \\\"tok\\\"\",\
             \"span\":{\"line\":3,\"col\":7}}"
        );
        let plain = Diagnostic::new(Code::IdleBubbles, "x");
        assert!(!plain.to_json().contains("span"));
        assert_eq!(plain.to_string(), "hint [H001]: x");
        assert_eq!(d.to_string(), "error [E010] 3:7: unexpected \"tok\"");
    }

    #[test]
    fn diagnostics_array_renders() {
        let list =
            vec![Diagnostic::new(Code::UnusedQubit, "a"), Diagnostic::new(Code::PathConflict, "b")];
        assert_eq!(
            diagnostics_to_json(&list),
            "[{\"code\":\"W001\",\"severity\":\"warning\",\"message\":\"a\"},\
             {\"code\":\"E008\",\"severity\":\"error\",\"message\":\"b\"}]"
        );
        assert_eq!(diagnostics_to_json(&[]), "[]");
    }
}
