//! The limited-resources scheduler — Algorithm 1 of the paper.
//!
//! A cycle-driven event loop over the gate DAG: each clock cycle the ready
//! gates are ordered by priority (criticality, then descendant count — or
//! raw circuit order for the Table IV baseline) and greedily routed on the
//! chip. In the double-defect model a same-cut-type gate additionally
//! chooses between direct 3-cycle execution and a 3-cycle cut-type
//! modification, steered by the M-value `Mt + θ·Ms` (§IV-C2) or by the
//! Table V baseline policies.
//!
//! Routing goes through the router's batched per-cycle API: each cycle's
//! unconditional gates (lattice CNOTs, different-cut braids) accumulate
//! into one [`Router::route_ready`] call, flushed whenever a same-cut
//! gate needs its direct-vs-modify decision (whose M-values read state
//! the batch updates). Because ready gates are pairwise qubit-disjoint
//! and the flush preserves priority order, the batched schedule is
//! bit-identical to the historical per-gate loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::{GateDag, GateId};
use ecmas_route::{Disjointness, RouteRequest, Router, RouterStats};

use crate::cut::CutType;
use crate::encoded::{EncodedCircuit, Event, EventKind};
use crate::error::CompileError;

/// Gate ordering within a cycle (Table IV ablation).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GateOrder {
    /// Criticality first (longest remaining chain), then descendant count,
    /// then program order — the paper's priority function.
    Priority,
    /// Plain program order ("circuit-order" baseline).
    CircuitOrder,
}

/// Policy for same-cut-type CNOTs in the double-defect model (Table V).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CutPolicy {
    /// The paper's adaptive M-value rule, instantiated as remaining-work
    /// latency accounting (the paper's exact constants are underspecified —
    /// see DESIGN.md): for each operand tile `x`, modifying saves
    /// `2·rem(x,q)` cycles for every partner `q` that currently shares
    /// `x`'s cut type (each of their CNOTs drops from 3 cycles to 1) and
    /// costs the same for partners that currently differ. When a direct
    /// path is available the swing must beat the 3-cycle modification
    /// latency; when the gate is congestion-blocked the wait hides that
    /// latency entirely and the policy modifies outright — "leveraging the
    /// waiting time due to path conflicts" (§V-C3).
    Adaptive,
    /// Always finish this gate as early as possible: direct when a path is
    /// available, modify otherwise ("Time-first" baseline).
    TimeFirst,
    /// Always minimize channel occupation: modify whenever the cut types
    /// are equal, since one braid beats two ("Channel-first" baseline).
    ChannelFirst,
    /// Never modify — every same-cut CNOT executes directly in 3 cycles
    /// (what AutoBraid/Braidflash implicitly do).
    NeverModify,
}

/// Configuration of the limited-resources scheduler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ScheduleConfig {
    /// Gate ordering within a cycle.
    pub order: GateOrder,
    /// Same-cut-type policy (ignored for lattice surgery).
    pub cut_policy: CutPolicy,
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::Adaptive }
    }
}

/// Latency of a direct same-cut-type CNOT (Fig. 3a).
const DIRECT_LATENCY: u64 = 3;
/// Cycles the direct CNOT holds its inter-tile path.
const DIRECT_PATH_HOLD: u64 = 2;
/// Latency of a cut-type modification (Fig. 3b, before the closing braid).
const MODIFY_LATENCY: u64 = 3;

/// Runs Algorithm 1: schedules every CNOT of `dag` on `chip` under the
/// given `mapping` and (for double defect) `initial_cuts`.
///
/// # Errors
///
/// * [`CompileError::CutTypesMismatch`] if cut types are supplied for the
///   wrong model.
/// * [`CompileError::ScheduleStuck`] if the scheduler stops making progress
///   (defensive; indicates a model bug, not a user error).
pub fn schedule_limited(
    dag: &GateDag,
    chip: &Chip,
    mapping: &[usize],
    initial_cuts: Option<&[CutType]>,
    config: ScheduleConfig,
) -> Result<EncodedCircuit, CompileError> {
    schedule_limited_with_stats(dag, chip, mapping, initial_cuts, config).map(|(enc, _)| enc)
}

/// [`schedule_limited`] plus the router's effort/conflict counters — the
/// instrumented entry point the session pipeline's `CompileReport` uses.
///
/// # Errors
///
/// As [`schedule_limited`].
pub fn schedule_limited_with_stats(
    dag: &GateDag,
    chip: &Chip,
    mapping: &[usize],
    initial_cuts: Option<&[CutType]>,
    config: ScheduleConfig,
) -> Result<(EncodedCircuit, RouterStats), CompileError> {
    schedule_limited_shared(dag, &Arc::new(chip.clone()), mapping, initial_cuts, config)
}

/// [`schedule_limited_with_stats`] over an already-shared chip — the
/// session pipeline's entry point: the one `Arc<Chip>` taken at session
/// start flows through every schedule candidate into the
/// [`EncodedCircuit`] without another chip clone.
///
/// # Errors
///
/// As [`schedule_limited`].
#[allow(clippy::too_many_lines)]
pub fn schedule_limited_shared(
    dag: &GateDag,
    chip: &Arc<Chip>,
    mapping: &[usize],
    initial_cuts: Option<&[CutType]>,
    config: ScheduleConfig,
) -> Result<(EncodedCircuit, RouterStats), CompileError> {
    let n = dag.qubits();
    let model = chip.model();
    match (model, initial_cuts) {
        (CodeModel::DoubleDefect, Some(cuts)) if cuts.len() == n => {}
        (CodeModel::LatticeSurgery, None) => {}
        _ => return Err(CompileError::CutTypesMismatch),
    }

    let mode = match model {
        CodeModel::DoubleDefect => Disjointness::Node,
        CodeModel::LatticeSurgery => Disjointness::Edge,
    };
    let mut router = Router::new(chip.grid(), mode);
    for &slot in mapping {
        router.block_tile(slot);
    }

    // The per-gate priority key is cycle-invariant — criticality and
    // descendant counts are DAG properties, the tile distance depends
    // only on the fixed mapping — so it is computed once here instead of
    // being rebuilt inside the sort comparator on every one of up to
    // thousands of cycles.
    let priority: Vec<(Reverse<usize>, Reverse<usize>, usize)> =
        if config.order == GateOrder::Priority && !dag.is_empty() {
            let descendants = dag.descendant_counts();
            (0..dag.len())
                .map(|g| {
                    let gate = dag.gate(g);
                    let dist = chip.tile_distance(mapping[gate.control], mapping[gate.target]);
                    (Reverse(dag.criticality(g)), Reverse(descendants[g] as usize), dist)
                })
                .collect()
        } else {
            Vec::new()
        };

    // Remaining CNOT multiplicity per qubit pair: the Adaptive cut policy's
    // look-ahead. Decremented as gates complete.
    let mut remaining = vec![0u32; n * n];
    for g in 0..dag.len() {
        let gate = dag.gate(g);
        remaining[gate.control * n + gate.target] += 1;
        remaining[gate.target * n + gate.control] += 1;
    }

    let mut cuts: Vec<CutType> = initial_cuts.map(<[CutType]>::to_vec).unwrap_or_default();
    let mut qubit_free = vec![0u64; n];
    let mut pending_parents: Vec<usize> = (0..dag.len()).map(|g| dag.parents(g).len()).collect();
    let mut earliest: Vec<u64> = vec![0; dag.len()];
    // (earliest start, gate) min-heap of gates whose parents are all done.
    let mut heap: BinaryHeap<Reverse<(u64, GateId)>> = BinaryHeap::new();
    for (g, &pending) in pending_parents.iter().enumerate() {
        if pending == 0 {
            heap.push(Reverse((0, g)));
        }
    }
    let mut active: Vec<GateId> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    // Per-cycle routing batch, reused across cycles. Ready gates are
    // pairwise qubit-disjoint (sharing a qubit implies a DAG dependency),
    // so a cycle's unconditional gates can be handed to the router as one
    // `route_ready` batch; only a same-cut gate forces a flush, because
    // its modify/direct decision reads state the batch updates.
    let mut batch: Vec<RouteRequest> = Vec::new();
    let mut batch_items: Vec<(usize, GateId)> = Vec::new();
    // More per-cycle scratch, reused so the steady-state cycle loop
    // allocates nothing: batch outcomes and the scheduled-index list.
    let mut outcomes: Vec<Option<ecmas_route::Path>> = Vec::new();
    let mut scheduled: Vec<usize> = Vec::new();
    let mut done = 0usize;
    let mut cycle: u64 = 0;
    // Generous stall bound: every gate needs at most a few cycles once
    // resources free up; 4·g + grid-perimeter slack covers worst cases.
    let stall_limit = 8 * dag.len() as u64 + 4 * (chip.tile_rows() + chip.tile_cols()) as u64 + 64;
    let mut last_progress_cycle: u64 = 0;

    while done < dag.len() {
        while let Some(&Reverse((t, g))) = heap.peek() {
            if t <= cycle {
                heap.pop();
                active.push(g);
            } else {
                break;
            }
        }
        if active.is_empty() {
            // Jump to the next gate-release time.
            if let Some(&Reverse((t, _))) = heap.peek() {
                cycle = cycle.max(t);
                continue;
            }
            // Nothing ready and nothing pending ⇒ inconsistent state.
            return Err(CompileError::ScheduleStuck { cycle, pending: dag.len() - done });
        }

        match config.order {
            // Criticality, then descendant count (the paper's priority
            // function); remaining ties go to shorter gates first so a
            // long greedy path does not block several short ones. The
            // gate id makes the key total, so the allocation-free
            // unstable sort is deterministic.
            GateOrder::Priority => active.sort_unstable_by_key(|&g| (priority[g], g)),
            GateOrder::CircuitOrder => active.sort_unstable(),
        }

        scheduled.clear(); // indices into `active`
        for (idx, &g) in active.iter().enumerate() {
            let gate = dag.gate(g);
            let (a, b) = (gate.control, gate.target);
            if qubit_free[a] > cycle || qubit_free[b] > cycle {
                continue;
            }
            let (sa, sb) = (mapping[a], mapping[b]);
            let unconditional = match model {
                CodeModel::LatticeSurgery => true,
                CodeModel::DoubleDefect => cuts[a] != cuts[b],
            };
            if unconditional {
                // Routed at the next flush; batching preserves the
                // sequential find/commit order because the batch runs in
                // priority order and nothing between here and the flush
                // touches the router.
                batch.push(RouteRequest::route(sa, sb, 1));
                batch_items.push((idx, g));
                continue;
            }
            // Same cut types (double defect): direct vs modify. This is a
            // decision point — the M-values read cut types and remaining
            // counts that earlier gates of this cycle update — so route
            // everything batched so far, then probe and decide.
            flush_routed_batch(FlushCtx {
                router: &mut router,
                dag,
                model,
                n,
                cycle,
                batch: &mut batch,
                batch_items: &mut batch_items,
                outcomes: &mut outcomes,
                events: &mut events,
                qubit_free: &mut qubit_free,
                remaining: &mut remaining,
                pending_parents: &mut pending_parents,
                earliest: &mut earliest,
                heap: &mut heap,
                done: &mut done,
                scheduled: &mut scheduled,
                last_progress_cycle: &mut last_progress_cycle,
            });
            let candidate = router.find_tile_path(sa, sb, cycle);
            let decision = decide_same_cut(
                dag,
                g,
                &cuts,
                &remaining,
                candidate.is_some(),
                n,
                config.cut_policy,
            );
            match decision {
                SameCutDecision::Modify(qubit) => {
                    events.push(Event {
                        gate: None,
                        start: cycle,
                        kind: EventKind::CutModification { qubit },
                    });
                    cuts[qubit] = cuts[qubit].flipped();
                    qubit_free[qubit] = cycle + MODIFY_LATENCY;
                    // The gate stays pending; it retries once the
                    // tile is free and will braid in one cycle.
                    last_progress_cycle = cycle;
                }
                SameCutDecision::Direct => {
                    if let Some(path) = candidate {
                        router.commit(&path, cycle, DIRECT_PATH_HOLD);
                        events.push(Event {
                            gate: Some(g),
                            start: cycle,
                            kind: EventKind::DirectSameCut { path },
                        });
                        let end = cycle + DIRECT_LATENCY;
                        qubit_free[a] = end;
                        qubit_free[b] = end;
                        complete(dag, g, end, &mut pending_parents, &mut earliest, &mut heap);
                        remaining[a * n + b] -= 1;
                        remaining[b * n + a] -= 1;
                        done += 1;
                        scheduled.push(idx);
                        last_progress_cycle = cycle;
                    }
                }
                SameCutDecision::Wait => {}
            }
        }
        flush_routed_batch(FlushCtx {
            router: &mut router,
            dag,
            model,
            n,
            cycle,
            batch: &mut batch,
            batch_items: &mut batch_items,
            outcomes: &mut outcomes,
            events: &mut events,
            qubit_free: &mut qubit_free,
            remaining: &mut remaining,
            pending_parents: &mut pending_parents,
            earliest: &mut earliest,
            heap: &mut heap,
            done: &mut done,
            scheduled: &mut scheduled,
            last_progress_cycle: &mut last_progress_cycle,
        });
        for &idx in scheduled.iter().rev() {
            active.swap_remove(idx);
        }
        if cycle - last_progress_cycle > stall_limit {
            return Err(CompileError::ScheduleStuck { cycle, pending: dag.len() - done });
        }
        cycle += 1;
    }

    let encoded = EncodedCircuit::new_shared(
        Arc::clone(chip),
        mapping.to_vec(),
        initial_cuts.map(<[CutType]>::to_vec),
        events,
    );
    Ok((encoded, router.stats()))
}

/// Mutable scheduler state one routing-batch flush updates — bundled so
/// [`flush_routed_batch`] stays a plain function instead of a closure over
/// a dozen locals.
struct FlushCtx<'a> {
    router: &'a mut Router,
    dag: &'a GateDag,
    model: CodeModel,
    n: usize,
    cycle: u64,
    batch: &'a mut Vec<RouteRequest>,
    batch_items: &'a mut Vec<(usize, GateId)>,
    outcomes: &'a mut Vec<Option<ecmas_route::Path>>,
    events: &'a mut Vec<Event>,
    qubit_free: &'a mut [u64],
    remaining: &'a mut [u32],
    pending_parents: &'a mut [usize],
    earliest: &'a mut [u64],
    heap: &'a mut BinaryHeap<Reverse<(u64, GateId)>>,
    done: &'a mut usize,
    scheduled: &'a mut Vec<usize>,
    last_progress_cycle: &'a mut u64,
}

/// Routes the pending unconditional batch through
/// [`Router::route_ready`] and applies the completions (events, qubit
/// release times, DAG bookkeeping) in batch order — the same order and
/// router-call sequence the per-gate loop used to produce.
fn flush_routed_batch(ctx: FlushCtx<'_>) {
    if ctx.batch.is_empty() {
        return;
    }
    ctx.router.route_ready_into(ctx.batch, ctx.cycle, ctx.outcomes);
    for (&(idx, g), outcome) in ctx.batch_items.iter().zip(ctx.outcomes.drain(..)) {
        let Some(path) = outcome else { continue };
        let gate = ctx.dag.gate(g);
        let (a, b) = (gate.control, gate.target);
        let kind = match ctx.model {
            CodeModel::LatticeSurgery => EventKind::LatticeCnot { path },
            CodeModel::DoubleDefect => EventKind::Braid { path },
        };
        ctx.events.push(Event { gate: Some(g), start: ctx.cycle, kind });
        let end = ctx.cycle + 1;
        ctx.qubit_free[a] = end;
        ctx.qubit_free[b] = end;
        complete(ctx.dag, g, end, ctx.pending_parents, ctx.earliest, ctx.heap);
        // Every completed gate leaves the look-ahead table, braids included:
        // a different-cut braid that skipped this decrement (the latent
        // modeling bug recorded in ROADMAP) left the Adaptive policy's
        // M-values counting work that was already done, so later same-cut
        // decisions over-estimated the channel swing of a flip.
        ctx.remaining[a * ctx.n + b] -= 1;
        ctx.remaining[b * ctx.n + a] -= 1;
        *ctx.done += 1;
        ctx.scheduled.push(idx);
        *ctx.last_progress_cycle = ctx.cycle;
    }
    ctx.batch.clear();
    ctx.batch_items.clear();
}

fn complete(
    dag: &GateDag,
    g: GateId,
    end: u64,
    pending_parents: &mut [usize],
    earliest: &mut [u64],
    heap: &mut BinaryHeap<Reverse<(u64, GateId)>>,
) {
    for &child in dag.children(g) {
        earliest[child] = earliest[child].max(end);
        pending_parents[child] -= 1;
        if pending_parents[child] == 0 {
            heap.push(Reverse((earliest[child], child)));
        }
    }
}

enum SameCutDecision {
    Direct,
    Modify(usize),
    Wait,
}

/// The §IV-C2 decision for a same-cut-type gate.
///
/// `remaining[x·n + q]` holds the not-yet-completed CNOT multiplicity per
/// qubit pair, including the current gate.
fn decide_same_cut(
    dag: &GateDag,
    g: GateId,
    cuts: &[CutType],
    remaining: &[u32],
    routable_now: bool,
    n: usize,
    policy: CutPolicy,
) -> SameCutDecision {
    let gate = dag.gate(g);
    // Immediate-children channel term (used by the baseline policies to
    // pick which operand to flip): −1 for the saved braid on this gate,
    // ±1 per immediate child whose pairing improves/worsens.
    let ms_children = |x: usize| -> i64 {
        let mut ms = -1;
        let new_cut = cuts[x].flipped();
        for &child in dag.children(g) {
            let cg = dag.gate(child);
            if cg.touches(x) {
                if cuts[cg.other(x)] == new_cut {
                    ms += 1;
                } else {
                    ms -= 1;
                }
            }
        }
        ms
    };
    // Adaptive gain of flipping `x`: every remaining CNOT with a partner
    // that currently *shares* x's cut drops from 3 cycles to 1 (+2 each),
    // every one with a partner that currently differs goes the other way
    // (−2 each). When a direct path is available the flip must beat the
    // full MODIFY_LATENCY; when the gate is congestion-blocked the wait
    // hides the modification (the paper's "leverages the waiting time"),
    // so only the channel swing matters.
    let gain = |x: usize| -> i64 {
        let mut swing = 0i64;
        for q in 0..n {
            let rem = i64::from(remaining[x * n + q]);
            if rem == 0 || q == x {
                continue;
            }
            if cuts[q] == cuts[x] {
                swing += 2 * rem;
            } else {
                swing -= 2 * rem;
            }
        }
        let latency = if routable_now {
            i64::try_from(MODIFY_LATENCY).expect("small constant")
        } else {
            // Blocked: the wait hides the modification latency.
            0
        };
        swing - latency
    };
    match policy {
        CutPolicy::NeverModify => {
            if routable_now {
                SameCutDecision::Direct
            } else {
                SameCutDecision::Wait
            }
        }
        CutPolicy::TimeFirst => {
            if routable_now {
                SameCutDecision::Direct
            } else {
                // Modification needs no channel: it always makes progress.
                let (ma, mb) = (ms_children(gate.control), ms_children(gate.target));
                let pick = if ma <= mb { gate.control } else { gate.target };
                SameCutDecision::Modify(pick)
            }
        }
        CutPolicy::ChannelFirst => {
            let (ma, mb) = (ms_children(gate.control), ms_children(gate.target));
            let pick = if ma <= mb { gate.control } else { gate.target };
            SameCutDecision::Modify(pick)
        }
        CutPolicy::Adaptive => {
            let (ga, gb) = (gain(gate.control), gain(gate.target));
            let (g_max, pick) = if ga >= gb { (ga, gate.control) } else { (gb, gate.target) };
            if g_max > 0 {
                SameCutDecision::Modify(pick)
            } else if routable_now {
                SameCutDecision::Direct
            } else {
                // Congestion-blocked: a modification is channel-free
                // progress during a wait that happens anyway (§V-C3
                // "leverages the waiting time due to path conflicts"), so
                // flip the operand with the better remaining-work swing.
                SameCutDecision::Modify(pick)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cut::{initialize_cuts, CutInitStrategy};
    use crate::encoded::validate_encoded;
    use ecmas_circuit::Circuit;

    fn dd_chip(n: usize) -> Chip {
        Chip::min_viable(CodeModel::DoubleDefect, n, 3).unwrap()
    }

    fn ls_chip(n: usize) -> Chip {
        Chip::min_viable(CodeModel::LatticeSurgery, n, 3).unwrap()
    }

    fn identity_mapping(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    fn greedy_cuts(c: &Circuit) -> Vec<CutType> {
        initialize_cuts(&c.dag(), &c.comm_graph(), CutInitStrategy::GreedyBipartitePrefix)
    }

    #[test]
    fn single_gate_different_cuts_takes_one_cycle() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = dd_chip(2);
        let cuts = vec![CutType::X, CutType::Z];
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(2),
            Some(&cuts),
            ScheduleConfig::default(),
        )
        .unwrap();
        assert_eq!(enc.cycles(), 1);
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn single_gate_same_cuts_never_modify_takes_three() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = dd_chip(2);
        let cuts = vec![CutType::X, CutType::X];
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(2),
            Some(&cuts),
            ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::NeverModify },
        )
        .unwrap();
        assert_eq!(enc.cycles(), 3);
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn channel_first_modifies_and_takes_four() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = dd_chip(2);
        let cuts = vec![CutType::X, CutType::X];
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(2),
            Some(&cuts),
            ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::ChannelFirst },
        )
        .unwrap();
        assert_eq!(enc.cycles(), 4);
        assert_eq!(enc.modification_count(), 1);
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn ghz_chain_runs_at_depth_with_greedy_cuts() {
        let c = ecmas_circuit::benchmarks::ghz(8);
        let chip = dd_chip(8);
        let cuts = greedy_cuts(&c);
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(8),
            Some(&cuts),
            ScheduleConfig::default(),
        )
        .unwrap();
        assert_eq!(enc.cycles() as usize, c.depth(), "bipartite chain ⇒ Δ = α");
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn all_same_cuts_cost_three_alpha_on_chain() {
        let c = ecmas_circuit::benchmarks::ghz(6);
        let chip = dd_chip(6);
        let cuts = vec![CutType::X; 6];
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(6),
            Some(&cuts),
            ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::NeverModify },
        )
        .unwrap();
        assert_eq!(enc.cycles() as usize, 3 * c.depth(), "AutoBraid signature: 3α");
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn lattice_surgery_chain_runs_at_depth() {
        let c = ecmas_circuit::benchmarks::ghz(9);
        let chip = ls_chip(9);
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(9),
            None,
            ScheduleConfig::default(),
        )
        .unwrap();
        assert_eq!(enc.cycles() as usize, c.depth());
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn parallel_gates_share_a_cycle_when_bandwidth_allows() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let chip = ls_chip(4);
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &identity_mapping(4),
            None,
            ScheduleConfig::default(),
        )
        .unwrap();
        assert_eq!(enc.cycles(), 1, "two disjoint gates fit one cycle");
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn cut_types_mismatch_is_rejected() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let err = schedule_limited(
            &c.dag(),
            &ls_chip(2),
            &identity_mapping(2),
            Some(&[CutType::X, CutType::Z]),
            ScheduleConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, CompileError::CutTypesMismatch);
        let err = schedule_limited(
            &c.dag(),
            &dd_chip(2),
            &identity_mapping(2),
            None,
            ScheduleConfig::default(),
        )
        .unwrap_err();
        assert_eq!(err, CompileError::CutTypesMismatch);
    }

    #[test]
    fn empty_circuit_compiles_to_zero_cycles() {
        let c = Circuit::new(3);
        let enc = schedule_limited(
            &c.dag(),
            &ls_chip(3),
            &identity_mapping(3),
            None,
            ScheduleConfig::default(),
        )
        .unwrap();
        assert_eq!(enc.cycles(), 0);
        validate_encoded(&c, &enc).unwrap();
    }

    #[test]
    fn circuit_order_vs_priority_both_valid() {
        let c = ecmas_circuit::benchmarks::qft(6);
        let chip = ls_chip(6);
        for order in [GateOrder::Priority, GateOrder::CircuitOrder] {
            let enc = schedule_limited(
                &c.dag(),
                &chip,
                &identity_mapping(6),
                None,
                ScheduleConfig { order, cut_policy: CutPolicy::Adaptive },
            )
            .unwrap();
            validate_encoded(&c, &enc).unwrap();
            assert!(enc.cycles() as usize >= c.depth());
        }
    }

    #[test]
    fn adaptive_never_loses_to_never_modify_on_qft() {
        let c = ecmas_circuit::benchmarks::qft(8);
        let chip = dd_chip(8);
        let cuts = greedy_cuts(&c);
        let run = |policy| {
            schedule_limited(
                &c.dag(),
                &chip,
                &identity_mapping(8),
                Some(&cuts),
                ScheduleConfig { order: GateOrder::Priority, cut_policy: policy },
            )
            .unwrap()
        };
        let adaptive = run(CutPolicy::Adaptive);
        let never = run(CutPolicy::NeverModify);
        validate_encoded(&c, &adaptive).unwrap();
        validate_encoded(&c, &never).unwrap();
        assert!(
            adaptive.cycles() <= never.cycles(),
            "adaptive {} > never-modify {}",
            adaptive.cycles(),
            never.cycles()
        );
    }
}

#[cfg(test)]
mod policy_tests {
    use super::*;
    use crate::cut::CutType;
    use crate::encoded::{validate_encoded, EventKind};
    use ecmas_circuit::Circuit;

    /// A repeated same-cut pair should be flipped once by the adaptive
    /// policy (5 cycles for two CNOTs beats 6 direct), then braid.
    #[test]
    fn adaptive_flips_repeated_pairs() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(0, 1);
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 2, 3).unwrap();
        let cuts = vec![CutType::X, CutType::X];
        let enc =
            schedule_limited(&c.dag(), &chip, &[0, 1], Some(&cuts), ScheduleConfig::default())
                .unwrap();
        validate_encoded(&c, &enc).unwrap();
        assert_eq!(enc.modification_count(), 1);
        assert_eq!(enc.cycles(), 5, "flip(3) + braid(1) + braid(1)");
    }

    /// A one-shot same-cut pair should execute directly (3 < 4).
    #[test]
    fn adaptive_keeps_one_shot_pairs_direct() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 2, 3).unwrap();
        let cuts = vec![CutType::X, CutType::X];
        let enc =
            schedule_limited(&c.dag(), &chip, &[0, 1], Some(&cuts), ScheduleConfig::default())
                .unwrap();
        assert_eq!(enc.modification_count(), 0);
        assert_eq!(enc.cycles(), 3);
    }

    /// The adaptive flip must pick the operand whose other partners are
    /// not hurt: qubit 1 pairs with 2 later (different cut), so flipping
    /// qubit 0 preserves that braid while flipping 1 would break it.
    #[test]
    fn adaptive_picks_the_harmless_operand() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(1, 2);
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 3, 3).unwrap();
        let cuts = vec![CutType::X, CutType::X, CutType::Z];
        let enc =
            schedule_limited(&c.dag(), &chip, &[0, 1, 2], Some(&cuts), ScheduleConfig::default())
                .unwrap();
        validate_encoded(&c, &enc).unwrap();
        let flipped: Vec<usize> = enc
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::CutModification { qubit } => Some(qubit),
                _ => None,
            })
            .collect();
        assert_eq!(flipped, vec![0], "flipping qubit 1 would break the (1,2) braids");
    }

    #[test]
    fn time_first_flips_only_when_blocked() {
        // On an uncongested chip TimeFirst never modifies.
        let c = ecmas_circuit::benchmarks::qft(6);
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 6, 3).unwrap();
        let cuts = crate::cut::initialize_cuts(
            &c.dag(),
            &c.comm_graph(),
            crate::cut::CutInitStrategy::GreedyBipartitePrefix,
        );
        let enc = schedule_limited(
            &c.dag(),
            &chip,
            &[0, 1, 2, 3, 4, 5],
            Some(&cuts),
            ScheduleConfig { order: GateOrder::Priority, cut_policy: CutPolicy::TimeFirst },
        )
        .unwrap();
        validate_encoded(&c, &enc).unwrap();
        // qft on 6 qubits at min-viable rarely congests; if no gate was
        // ever blocked, no modifications occurred.
        assert!(enc.modification_count() <= 2);
    }

    #[test]
    fn priority_order_prefers_critical_chains() {
        // Long chain plus an independent gate: with bandwidth for only one
        // path through the hot region, the chain gate must win the cycle.
        let mut c = Circuit::new(6);
        c.cnot(0, 1); // chain of 3
        c.cnot(1, 2);
        c.cnot(2, 3);
        c.cnot(4, 5); // loose gate
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 6, 3).unwrap();
        let enc =
            schedule_limited(&c.dag(), &chip, &[0, 1, 2, 3, 4, 5], None, ScheduleConfig::default())
                .unwrap();
        validate_encoded(&c, &enc).unwrap();
        assert_eq!(enc.cycles() as usize, c.depth(), "chain must not be delayed");
    }
}
