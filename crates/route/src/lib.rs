//! CNOT path routing on the surface-code routing grid.
//!
//! A CNOT between two tiles is implemented by a path of channel cells
//! connecting them (a braiding path in the double-defect model, a
//! Bell-state ancilla chain in lattice surgery). Paths scheduled in the
//! same clock cycle must not conflict:
//!
//! * **Double defect** — braiding paths are curves in the plane and cannot
//!   cross, i.e. paths must be [`Disjointness::Node`]-disjoint on the
//!   (planar) routing grid.
//! * **Lattice surgery** — EDPC's crossing construction (Beverland et al.,
//!   PRX Quantum 3, 020342) lets two Bell-state chains share a tile as long
//!   as they use different boundary segments, i.e. paths need only be
//!   [`Disjointness::Edge`]-disjoint.
//!
//! [`Router`] finds shortest conflict-free paths with BFS and records
//! multi-cycle reservations: a double-defect direct CNOT between equal cut
//! types holds its path for two cycles, so reservations carry a duration.
//!
//! # Example
//!
//! ```
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_route::{Disjointness, Router};
//!
//! let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3)?;
//! let mut router = Router::new(chip.grid(), Disjointness::Node);
//! // Map tiles 0 and 3 (diagonal) and route between them at cycle 0.
//! router.block_tile(0);
//! router.block_tile(3);
//! let path = router.find_tile_path(0, 3, 0, 1).expect("path exists");
//! router.commit(&path, 0, 1);
//! # Ok::<(), ecmas_chip::ChipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;

use ecmas_chip::RoutingGrid;

/// The disjointness rule paths in the same cycle must obey.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Disjointness {
    /// Paths may not share grid cells (double-defect braiding: curves in
    /// the plane cannot cross).
    Node,
    /// Paths may not share grid edges but may cross at a cell (lattice
    /// surgery via the EDPC crossing construction).
    Edge,
}

/// Cumulative routing-effort counters, reset with
/// [`Router::reset_stats`] and read with [`Router::stats`].
///
/// The scheduler-facing stats hook: compilers surface these in their
/// structured reports so congestion (failed finds) and search effort
/// (cells expanded) are observable per compilation without re-running it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Successful path searches ([`Router::find_tile_path`] /
    /// [`Router::find_cell_path`] returning `Some`).
    pub paths_found: u64,
    /// Failed path searches — the congestion/conflict count: every `None`
    /// means the current reservations blocked all routes.
    pub conflicts: u64,
    /// Total BFS cells expanded across all searches (search effort).
    pub cells_expanded: u64,
    /// Total grid edges of every found path (channel occupation proxy).
    pub path_cells: u64,
}

impl RouterStats {
    /// Component-wise sum — used to combine the stats of several router
    /// instances (e.g. the base and bandwidth-adjusted scheduling runs).
    #[must_use]
    pub fn merged(self, other: RouterStats) -> RouterStats {
        RouterStats {
            paths_found: self.paths_found + other.paths_found,
            conflicts: self.conflicts + other.conflicts,
            cells_expanded: self.cells_expanded + other.cells_expanded,
            path_cells: self.path_cells + other.path_cells,
        }
    }
}

/// A committed or candidate CNOT path: the endpoint tile cells plus the
/// channel cells between them, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    cells: Vec<usize>,
}

impl Path {
    /// Builds a path from an explicit cell sequence (used by tests and by
    /// baseline compilers that construct pattern paths directly).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two cells are given.
    #[must_use]
    pub fn from_cells(cells: Vec<usize>) -> Self {
        assert!(cells.len() >= 2, "a path needs at least its two endpoints");
        Path { cells }
    }

    /// The cells from source tile cell to destination tile cell inclusive.
    #[must_use]
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// The channel cells only (endpoints stripped).
    #[must_use]
    pub fn interior(&self) -> &[usize] {
        &self.cells[1..self.cells.len() - 1]
    }

    /// Number of grid edges traversed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len() - 1
    }

    /// `true` for degenerate zero-length paths (never produced by the
    /// router: distinct tiles are never adjacent on the grid).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.len() <= 1
    }
}

/// Shortest-path router with per-cycle reservations.
///
/// The router owns the grid plus three layers of state:
///
/// * `blocked` — cells occupied by *mapped* logical tiles (static per
///   compilation). Unmapped tile slots are routable channel space.
/// * node/edge reservations — `free_at[x]` is the first cycle at which `x`
///   may be used again. Reservations always start at the scheduler's
///   current cycle, so a single scalar per resource suffices.
///
/// All methods take the current `cycle` and a `duration` in cycles.
#[derive(Clone, Debug)]
pub struct Router {
    grid: RoutingGrid,
    mode: Disjointness,
    blocked: Vec<bool>,
    node_free_at: Vec<u64>,
    edge_free_at: Vec<u64>,
    // BFS scratch (epoch-marked so it never needs clearing).
    visit_epoch: Vec<u32>,
    parent: Vec<u32>,
    epoch: u32,
    stats: RouterStats,
}

impl Router {
    /// Creates a router over `grid` with the given disjointness rule.
    #[must_use]
    pub fn new(grid: RoutingGrid, mode: Disjointness) -> Self {
        let n = grid.len();
        Router {
            grid,
            mode,
            blocked: vec![false; n],
            node_free_at: vec![0; n],
            edge_free_at: vec![0; 2 * n],
            visit_epoch: vec![0; n],
            parent: vec![0; n],
            epoch: 0,
            stats: RouterStats::default(),
        }
    }

    /// The cumulative routing counters since construction or the last
    /// [`reset_stats`](Self::reset_stats).
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        self.stats
    }

    /// Zeroes the routing counters (reservations are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = RouterStats::default();
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &RoutingGrid {
        &self.grid
    }

    /// The disjointness rule in force.
    #[must_use]
    pub fn mode(&self) -> Disjointness {
        self.mode
    }

    /// Marks the cell of tile slot `slot` as hosting a logical qubit
    /// (paths may start/end there but not pass through).
    pub fn block_tile(&mut self, slot: usize) {
        let cell = self.grid.tile_cell(slot);
        self.blocked[cell] = true;
    }

    /// Clears a tile blockage (used when remapping).
    pub fn unblock_tile(&mut self, slot: usize) {
        let cell = self.grid.tile_cell(slot);
        self.blocked[cell] = false;
    }

    /// `true` if the cell currently hosts a logical qubit.
    #[must_use]
    pub fn is_blocked(&self, cell: usize) -> bool {
        self.blocked[cell]
    }

    /// Edge id for the edge between adjacent cells `a` and `b`.
    fn edge_id(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = (a.min(b), a.max(b));
        debug_assert!(hi - lo == 1 || hi - lo == self.grid.cols(), "cells not adjacent");
        if hi - lo == 1 {
            2 * lo // horizontal edge
        } else {
            2 * lo + 1 // vertical edge
        }
    }

    /// Whether a step onto `cell` (interior of a path) is allowed at
    /// `cycle` for `duration` cycles.
    fn cell_available(&self, cell: usize, cycle: u64) -> bool {
        if self.blocked[cell] {
            return false;
        }
        match self.mode {
            Disjointness::Node => self.node_free_at[cell] <= cycle,
            // Edge mode: cells are shareable; only edges are reserved.
            Disjointness::Edge => true,
        }
    }

    fn edge_available(&self, a: usize, b: usize, cycle: u64) -> bool {
        match self.mode {
            Disjointness::Node => true, // node reservations already forbid reuse
            Disjointness::Edge => self.edge_free_at[self.edge_id(a, b)] <= cycle,
        }
    }

    /// Finds a shortest conflict-free path between the cells of two tile
    /// slots, available for `[cycle, cycle + duration)`. Returns `None`
    /// when no such path exists in the current congestion state.
    ///
    /// The endpoints may be blocked (they host the gate's operand qubits);
    /// interior cells must be channel space or unmapped tile slots.
    ///
    /// # Panics
    ///
    /// Panics if the two slots are equal.
    pub fn find_tile_path(
        &mut self,
        from_slot: usize,
        to_slot: usize,
        cycle: u64,
        duration: u64,
    ) -> Option<Path> {
        assert_ne!(from_slot, to_slot, "cannot route a tile to itself");
        let from = self.grid.tile_cell(from_slot);
        let to = self.grid.tile_cell(to_slot);
        self.find_cell_path(from, to, cycle, duration)
    }

    /// [`find_tile_path`](Self::find_tile_path) on raw cell indices.
    pub fn find_cell_path(
        &mut self,
        from: usize,
        to: usize,
        cycle: u64,
        _duration: u64,
    ) -> Option<Path> {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visit_epoch.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let mut queue = VecDeque::new();
        self.visit_epoch[from] = epoch;
        queue.push_back(from);
        'bfs: while let Some(cur) = queue.pop_front() {
            self.stats.cells_expanded += 1;
            let neighbors: Vec<usize> = self.grid.neighbors(cur).collect();
            for next in neighbors {
                if self.visit_epoch[next] == epoch {
                    continue;
                }
                if !self.edge_available(cur, next, cycle) {
                    continue;
                }
                if next == to {
                    self.visit_epoch[next] = epoch;
                    self.parent[next] = u32::try_from(cur).expect("grid fits in u32");
                    break 'bfs;
                }
                if !self.cell_available(next, cycle) {
                    continue;
                }
                self.visit_epoch[next] = epoch;
                self.parent[next] = u32::try_from(cur).expect("grid fits in u32");
                queue.push_back(next);
            }
        }
        if self.visit_epoch[to] != epoch {
            self.stats.conflicts += 1;
            return None;
        }
        let mut cells = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.parent[cur] as usize;
            cells.push(cur);
        }
        cells.reverse();
        self.stats.paths_found += 1;
        self.stats.path_cells += cells.len() as u64;
        Some(Path { cells })
    }

    /// Reserves a path for `[cycle, cycle + duration)`.
    ///
    /// In node mode the interior cells are reserved; in edge mode the
    /// traversed edges are. Endpoint tile cells are never reserved — the
    /// scheduler's per-qubit exclusivity covers them.
    pub fn commit(&mut self, path: &Path, cycle: u64, duration: u64) {
        let until = cycle + duration;
        match self.mode {
            Disjointness::Node => {
                for &cell in path.interior() {
                    self.node_free_at[cell] = self.node_free_at[cell].max(until);
                }
            }
            Disjointness::Edge => {
                for pair in path.cells().windows(2) {
                    let id = self.edge_id(pair[0], pair[1]);
                    self.edge_free_at[id] = self.edge_free_at[id].max(until);
                }
            }
        }
    }

    /// Convenience: find and immediately commit.
    pub fn route_tiles(
        &mut self,
        from_slot: usize,
        to_slot: usize,
        cycle: u64,
        duration: u64,
    ) -> Option<Path> {
        let path = self.find_tile_path(from_slot, to_slot, cycle, duration)?;
        self.commit(&path, cycle, duration);
        Some(path)
    }

    /// Drops all reservations (but keeps tile blockages). Used when a
    /// compiler restarts scheduling from cycle 0.
    pub fn clear_reservations(&mut self) {
        self.node_free_at.fill(0);
        self.edge_free_at.fill(0);
    }

    /// Checks that a set of `(path, start, duration)` triples is mutually
    /// conflict-free under `mode` — the independent validity oracle used by
    /// the schedule validator.
    #[must_use]
    pub fn paths_conflict_free(
        grid: &RoutingGrid,
        mode: Disjointness,
        reservations: &[(&Path, u64, u64)],
    ) -> bool {
        for (i, &(pa, sa, da)) in reservations.iter().enumerate() {
            for &(pb, sb, db) in &reservations[i + 1..] {
                let overlap = sa < sb + db && sb < sa + da;
                if !overlap {
                    continue;
                }
                match mode {
                    Disjointness::Node => {
                        // Interior cells must be pairwise disjoint; also no
                        // interior cell may sit on the other path's
                        // endpoint tiles.
                        for &ca in pa.interior() {
                            if pb.cells().contains(&ca) {
                                return false;
                            }
                        }
                        for &cb in pb.interior() {
                            if pa.cells().contains(&cb) {
                                return false;
                            }
                        }
                    }
                    Disjointness::Edge => {
                        let edges = |p: &Path| {
                            p.cells()
                                .windows(2)
                                .map(|w| {
                                    let (lo, hi) = (w[0].min(w[1]), w[0].max(w[1]));
                                    (lo, hi)
                                })
                                .collect::<std::collections::HashSet<_>>()
                        };
                        if !edges(pa).is_disjoint(&edges(pb)) {
                            return false;
                        }
                    }
                }
                let _ = grid;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::{Chip, CodeModel};

    fn router(rows: usize, cols: usize, b: u32, mode: Disjointness) -> Router {
        let chip = Chip::uniform(CodeModel::DoubleDefect, rows, cols, b, 3).unwrap();
        Router::new(chip.grid(), mode)
    }

    #[test]
    fn finds_shortest_path_between_adjacent_tiles() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.find_tile_path(0, 1, 0, 1).expect("path");
        // Tiles at (1,1) and (1,3): shortest path length 2 edges via (1,2).
        assert_eq!(p.len(), 2);
        assert_eq!(p.interior().len(), 1);
    }

    #[test]
    fn cannot_route_through_mapped_tile() {
        // Tiles in a row: 0 — 1 — 2, all mapped. A 1×3 chip's grid is
        // 3 rows tall, so the path 0→2 must detour around tile 1.
        let mut r = router(1, 3, 1, Disjointness::Node);
        for t in 0..3 {
            r.block_tile(t);
        }
        let p = r.find_tile_path(0, 2, 0, 1).expect("path around");
        let mid = r.grid().tile_cell(1);
        assert!(!p.cells().contains(&mid), "path must avoid the mapped middle tile");
        assert!(p.len() > 4, "detour is longer than the straight line");
    }

    #[test]
    fn unmapped_tile_slot_is_routable() {
        let mut r = router(1, 3, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(2);
        // Tile slot 1 unmapped ⇒ the straight path through it is legal.
        let p = r.find_tile_path(0, 2, 0, 1).expect("straight path");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn node_mode_makes_crossing_paths_detour() {
        // Two gates whose straight paths would cross at the central
        // junction of a 2×2 tile array: 0—3 and 1—2. In node mode the
        // second must detour around the reserved cells (braids cannot
        // cross), so it routes strictly longer than its Manhattan distance.
        let mut r = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.route_tiles(0, 3, 0, 1).expect("first diagonal routes");
        let p2 = r.route_tiles(1, 2, 0, 1).expect("second diagonal detours");
        assert!(p2.len() > 4, "crossing forbidden ⇒ detour, got length {}", p2.len());
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p2, 0, 1)]
        ));
        // Next cycle the straight route is free again.
        let p3 = r.find_tile_path(1, 2, 1, 1).expect("straight next cycle");
        assert_eq!(p3.len(), 4);
    }

    #[test]
    fn crossing_conflicts_in_node_mode_but_not_edge_mode() {
        // Hand-crafted orthogonal paths sharing exactly the central cell of
        // a 2×2 array's junction: a braid conflict, a legal EDP crossing.
        let r = router(2, 2, 1, Disjointness::Node);
        let g = r.grid();
        let vertical = Path::from_cells(vec![g.index(1, 2), g.index(2, 2), g.index(3, 2)]);
        let horizontal = Path::from_cells(vec![g.index(2, 1), g.index(2, 2), g.index(2, 3)]);
        assert!(!Router::paths_conflict_free(
            g,
            Disjointness::Node,
            &[(&vertical, 0, 1), (&horizontal, 0, 1)]
        ));
        assert!(Router::paths_conflict_free(
            g,
            Disjointness::Edge,
            &[(&vertical, 0, 1), (&horizontal, 0, 1)]
        ));
    }

    #[test]
    fn channel_exhaustion_fails_the_route() {
        // A 1×2 tile chip has exactly three node-disjoint 0–1 routes
        // (straight, over the top, under the bottom). A fourth request in
        // the same cycle must fail: every crossing of the middle column is
        // reserved.
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for k in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some(), "route {k} fits");
        }
        assert!(r.find_tile_path(0, 1, 0, 1).is_none(), "fourth route must fail");
        assert!(r.find_tile_path(0, 1, 1, 1).is_some(), "free next cycle");
    }

    #[test]
    fn edge_mode_allows_crossing_paths() {
        let mut r = router(2, 2, 1, Disjointness::Edge);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.route_tiles(0, 3, 0, 1).expect("first diagonal");
        let p2 = r.find_tile_path(1, 2, 0, 1).expect("crossing allowed in edge mode");
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Edge,
            &[(&p1, 0, 1), (&p2, 0, 1)]
        ));
    }

    #[test]
    fn bandwidth_two_fits_parallel_paths() {
        // With bandwidth 2 the central channels have two lanes, so both
        // diagonals of a 2×2 array route simultaneously even in node mode.
        let mut r = router(2, 2, 2, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.route_tiles(0, 3, 0, 1).expect("first diagonal");
        let p2 = r.route_tiles(1, 2, 0, 1).expect("second diagonal via spare lane");
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p2, 0, 1)]
        ));
    }

    #[test]
    fn duration_blocks_future_cycles() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.find_tile_path(0, 1, 0, 2).expect("path");
        r.commit(&p, 0, 2);
        // The straight lane cell is reserved for cycles 0 and 1; another
        // path exists via the boundary lanes, but the straight one is out.
        let p2 = r.find_tile_path(0, 1, 1, 1).expect("detour");
        assert!(p2.len() > p.len());
        // At cycle 2 the straight path is free again.
        let p3 = r.find_tile_path(0, 1, 2, 1).expect("straight again");
        assert_eq!(p3.len(), p.len());
    }

    #[test]
    fn clear_reservations_resets_state() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.route_tiles(0, 1, 0, 100).expect("path");
        r.clear_reservations();
        let p2 = r.find_tile_path(0, 1, 0, 1).expect("path after clear");
        assert_eq!(p.len(), p2.len());
    }

    #[test]
    fn conflict_checker_flags_shared_interior() {
        let mut r = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.find_tile_path(0, 3, 0, 1).expect("path");
        // Same path twice at the same cycle conflicts in node mode...
        assert!(!Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p1, 0, 1)]
        ));
        // ...but not when the cycles differ.
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p1, 1, 1)]
        ));
    }

    #[test]
    fn stats_count_finds_conflicts_and_effort() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for _ in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some());
        }
        assert!(r.find_tile_path(0, 1, 0, 1).is_none(), "saturated");
        let s = r.stats();
        assert_eq!(s.paths_found, 3);
        assert_eq!(s.conflicts, 1);
        assert!(s.cells_expanded >= 4, "every search expands at least the source");
        assert!(s.path_cells >= 3 * 3, "three paths of ≥3 cells each");
        r.reset_stats();
        assert_eq!(r.stats(), RouterStats::default());
        let merged = s.merged(s);
        assert_eq!(merged.paths_found, 6);
        assert_eq!(merged.conflicts, 2);
    }

    #[test]
    fn saturated_channel_recovers_next_cycle() {
        let mut r = router(3, 3, 1, Disjointness::Node);
        for t in 0..9 {
            r.block_tile(t);
        }
        // Route many gates in cycle 0 until saturation, then confirm
        // cycle 1 works again.
        let got0 = r.route_tiles(0, 8, 0, 1).is_some();
        assert!(got0);
        let mut failures = 0;
        for (a, b) in [(1, 7), (2, 6), (3, 5)] {
            if r.route_tiles(a, b, 0, 1).is_none() {
                failures += 1;
            }
        }
        // At bandwidth 1 not all of these fit simultaneously.
        assert!(failures > 0, "bandwidth-1 chip should congest");
        assert!(r.find_tile_path(1, 7, 1, 1).is_some(), "free again at cycle 1");
    }
}

#[cfg(test)]
mod edp_tests {
    use super::*;
    use ecmas_chip::{Chip, CodeModel};

    fn ls_router(rows: usize, cols: usize, b: u32) -> Router {
        let chip = Chip::uniform(CodeModel::LatticeSurgery, rows, cols, b, 3).unwrap();
        Router::new(chip.grid(), Disjointness::Edge)
    }

    #[test]
    fn edge_mode_shares_cells_but_not_edges() {
        let mut r = ls_router(1, 3, 1);
        for t in 0..3 {
            r.block_tile(t);
        }
        // Route 0→1 straight; its edges are used, but the lane cells stay
        // shareable for a perpendicular crossing.
        let p = r.route_tiles(0, 1, 0, 1).expect("straight");
        assert_eq!(p.len(), 2);
        // Re-routing the same pair in the same cycle must avoid the used
        // edges (detour via another row).
        let p2 = r.route_tiles(0, 1, 0, 1).expect("detour exists");
        assert!(p2.len() > p.len());
    }

    #[test]
    fn edge_reservations_expire() {
        let mut r = ls_router(1, 2, 1);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.route_tiles(0, 1, 0, 1).expect("path");
        let p_next = r.find_tile_path(0, 1, 1, 1).expect("next cycle free");
        assert_eq!(p.len(), p_next.len());
    }

    #[test]
    fn mapped_tiles_block_edge_mode_interiors_too() {
        let mut r = ls_router(1, 3, 1);
        for t in 0..3 {
            r.block_tile(t);
        }
        let p = r.find_tile_path(0, 2, 0, 1).expect("path");
        let mid = r.grid().tile_cell(1);
        assert!(!p.cells().contains(&mid));
    }

    #[test]
    fn path_accessors_are_consistent() {
        let mut r = ls_router(2, 2, 1);
        r.block_tile(0);
        r.block_tile(3);
        let p = r.find_tile_path(0, 3, 0, 1).expect("path");
        assert_eq!(p.cells().len(), p.len() + 1);
        assert_eq!(p.interior().len(), p.cells().len() - 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn find_does_not_commit() {
        let mut r = ls_router(1, 2, 1);
        r.block_tile(0);
        r.block_tile(1);
        let a = r.find_tile_path(0, 1, 0, 1).expect("a");
        let b = r.find_tile_path(0, 1, 0, 1).expect("b");
        assert_eq!(a, b, "find_tile_path must not reserve anything");
    }
}
