//! CNOT path routing on the surface-code routing grid.
//!
//! A CNOT between two tiles is implemented by a path of channel cells
//! connecting them (a braiding path in the double-defect model, a
//! Bell-state ancilla chain in lattice surgery). Paths scheduled in the
//! same clock cycle must not conflict:
//!
//! * **Double defect** — braiding paths are curves in the plane and cannot
//!   cross, i.e. paths must be [`Disjointness::Node`]-disjoint on the
//!   (planar) routing grid.
//! * **Lattice surgery** — EDPC's crossing construction (Beverland et al.,
//!   PRX Quantum 3, 020342) lets two Bell-state chains share a tile as long
//!   as they use different boundary segments, i.e. paths need only be
//!   [`Disjointness::Edge`]-disjoint.
//!
//! [`Router`] finds shortest conflict-free paths with A* (Manhattan
//! lower bound, FIFO tie-breaking on equal f-scores, so results are
//! exactly as short as BFS would find and runs are reproducible) over
//! reusable epoch-marked scratch buffers — a search allocates nothing but
//! the returned path. The open set is a monotone *bucket queue* (Dial's
//! algorithm): on a unit-weight grid with a consistent heuristic the
//! f-score of expansions never decreases and successors land in buckets
//! `f` or `f + 2`, so a cursor sweeping a dense array of FIFO buckets
//! replaces the binary heap — O(1) push/pop, and the pop order (f
//! ascending, insertion order within a bucket) is exactly the old heap's
//! `(f, seq)` order, keeping every schedule bit-identical.
//!
//! Failed searches are the congested worst case: when no route exists the
//! heuristic cannot prune anything and plain A* floods the whole
//! reachable region before returning `None`. The router therefore keeps a
//! *reachability cache* — a per-cycle flood-fill coloring of the
//! available cells into connected regions. Within a clock cycle,
//! committing reservations only ever *removes* availability, so a
//! "disconnected" verdict from a coloring taken earlier in the same cycle
//! can never turn into "connected": provably-unroutable requests are
//! answered `None` in O(1) without re-flooding. The coloring is computed
//! lazily — refreshed only when a search exhausts its region without a
//! cache hit, so uncongested workloads never pay for it — and
//! [`RouterStats`] counts `failed_searches`, `cache_hits`, and
//! `recolor_cells` so the hit rate is observable per compilation.
//!
//! Schedulers submit each cycle's requests as one batch through
//! [`Router::route_ready`], which can also order the batch by estimated
//! distance ([`Router::route_ready_by_distance`]) so short paths are laid
//! down before long greedy ones block them; the `*_into` variants
//! ([`Router::route_ready_into`],
//! [`Router::route_ready_by_distance_into`]) write outcomes into
//! caller-owned scratch so a scheduler's cycle loop performs no
//! per-cycle allocation.
//!
//! Reservations are multi-cycle: a double-defect direct CNOT between equal
//! cut types holds its path for two cycles, so [`Router::commit`] carries a
//! duration. Searches take only the current `cycle`: because schedulers
//! drive the router with nondecreasing cycles and every reservation starts
//! at the cycle of its commit (never in the future), a resource free *now*
//! is free forever after — which is why `find_*` need no duration (the
//! invariant is debug-asserted).
//!
//! # Example
//!
//! ```
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_route::{Disjointness, Router};
//!
//! let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3)?;
//! let mut router = Router::new(chip.grid(), Disjointness::Node);
//! // Map tiles 0 and 3 (diagonal) and route between them at cycle 0.
//! router.block_tile(0);
//! router.block_tile(3);
//! let path = router.find_tile_path(0, 3, 0).expect("path exists");
//! router.commit(&path, 0, 1);
//! # Ok::<(), ecmas_chip::ChipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecmas_chip::RoutingGrid;

/// The 4-neighborhood of `cell` on `grid`, `None` where clipped at the
/// boundary or at a disabled-channel seam (crossable only along an open
/// perpendicular channel's lanes) — in the fixed up/down/left/right
/// order that the A* expansion, the reachability flood fill, and the
/// endpoint region probe must all share: the cache's soundness depends
/// on the coloring and the search agreeing on adjacency. Seam clipping
/// lives here (not in the availability predicates) for the same reason:
/// a step across a bandwidth-0 channel at a tile column is not
/// congestion, it is a non-edge of the grid.
#[inline]
fn neighbors4(grid: &RoutingGrid, cell: usize) -> [Option<usize>; 4] {
    let cols = grid.cols();
    let (r, c) = (cell / cols, cell % cols);
    let lane_col = grid.v_channel_of_col(c).is_some();
    let lane_row = grid.h_channel_of_row(r).is_some();
    [
        (r > 0 && (lane_col || !grid.h_seam_blocked(r - 1))).then(|| cell - cols),
        (r + 1 < grid.rows() && (lane_col || !grid.h_seam_blocked(r))).then(|| cell + cols),
        (c > 0 && (lane_row || !grid.v_seam_blocked(c - 1))).then(|| cell - 1),
        (c + 1 < cols && (lane_row || !grid.v_seam_blocked(c))).then(|| cell + 1),
    ]
}

/// The disjointness rule paths in the same cycle must obey.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Disjointness {
    /// Paths may not share grid cells (double-defect braiding: curves in
    /// the plane cannot cross).
    Node,
    /// Paths may not share grid edges but may cross at a cell (lattice
    /// surgery via the EDPC crossing construction).
    Edge,
}

/// Cumulative routing-effort counters, reset with
/// [`Router::reset_stats`] and read with [`Router::stats`].
///
/// The scheduler-facing stats hook: compilers surface these in their
/// structured reports so congestion (failed finds) and search effort
/// (cells expanded) are observable per compilation without re-running it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Successful path searches ([`Router::find_tile_path`] /
    /// [`Router::find_cell_path`] returning `Some`).
    pub paths_found: u64,
    /// Failed path searches — the congestion/conflict count: every `None`
    /// means the current reservations blocked all routes.
    pub conflicts: u64,
    /// Total A* cells expanded across all searches (search effort).
    pub cells_expanded: u64,
    /// Open-list entries left unexpanded when a search found its target
    /// (superseded duplicate entries included) — an upper bound on the
    /// expansions the Manhattan heuristic saved versus an exhaustive
    /// breadth-first search.
    pub pruned_expansions: u64,
    /// Total cells of every found path (channel occupation proxy).
    pub path_cells: u64,
    /// Largest per-cycle sum of committed path cells — the channel-space
    /// high-water mark behind a report's peak utilization figure. Tracked
    /// at [`Router::commit`] time (probes don't count), so it measures
    /// what the schedule actually reserved.
    pub peak_cycle_path_cells: u64,
    /// Searches that proved no route exists — the region-exhaustion
    /// subset of [`conflicts`](Self::conflicts) (an endpoint already
    /// reserved fails before any search and is *not* counted here).
    /// Each one either flooded the reachable region or was answered by
    /// the reachability cache.
    pub failed_searches: u64,
    /// Failed searches answered in O(1) by the reachability cache
    /// instead of flooding the region. `cache_hits / failed_searches`
    /// is the cache hit rate on a congested workload.
    pub cache_hits: u64,
    /// Total cells colored by reachability-cache flood fills (the
    /// amortized cost of the cache: one recoloring per cache-*missed*
    /// failure, never more than doubling the flood work the exhausted
    /// search already did, and zero on uncongested workloads).
    pub recolor_cells: u64,
}

impl RouterStats {
    /// Component-wise sum — used to combine the stats of several router
    /// instances (e.g. the base and bandwidth-adjusted scheduling runs).
    /// The per-cycle peak takes the maximum: the runs are alternatives
    /// over the same chip, not concurrent occupants.
    #[must_use]
    pub fn merged(self, other: RouterStats) -> RouterStats {
        RouterStats {
            paths_found: self.paths_found + other.paths_found,
            conflicts: self.conflicts + other.conflicts,
            cells_expanded: self.cells_expanded + other.cells_expanded,
            pruned_expansions: self.pruned_expansions + other.pruned_expansions,
            path_cells: self.path_cells + other.path_cells,
            peak_cycle_path_cells: self.peak_cycle_path_cells.max(other.peak_cycle_path_cells),
            failed_searches: self.failed_searches + other.failed_searches,
            cache_hits: self.cache_hits + other.cache_hits,
            recolor_cells: self.recolor_cells + other.recolor_cells,
        }
    }
}

/// A committed or candidate CNOT path: the endpoint tile cells plus the
/// channel cells between them, in order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    cells: Vec<usize>,
}

impl Path {
    /// Builds a path from an explicit cell sequence (used by tests and by
    /// baseline compilers that construct pattern paths directly),
    /// verifying against `grid` that consecutive cells are 4-adjacent.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two cells are given, or if two consecutive
    /// cells are not grid-adjacent (e.g. the last cell of one row followed
    /// by the first cell of the next: index distance 1, but no edge).
    #[must_use]
    pub fn from_cells(grid: &RoutingGrid, cells: Vec<usize>) -> Self {
        assert!(cells.len() >= 2, "a path needs at least its two endpoints");
        for pair in cells.windows(2) {
            assert_eq!(
                grid.manhattan(pair[0], pair[1]),
                1,
                "cells {} and {} are not grid-adjacent",
                pair[0],
                pair[1]
            );
        }
        Path { cells }
    }

    /// [`from_cells`](Self::from_cells) without the adjacency check.
    ///
    /// Only for constructing *deliberately malformed* paths — the schedule
    /// validator's mutation tests need paths the router would never emit.
    /// Anything fed to [`Router::commit`] or
    /// [`Router::paths_conflict_free`] must be adjacency-clean or edge
    /// identification will panic.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two cells are given.
    #[must_use]
    pub fn from_cells_unchecked(cells: Vec<usize>) -> Self {
        assert!(cells.len() >= 2, "a path needs at least its two endpoints");
        Path { cells }
    }

    /// The cells from source tile cell to destination tile cell inclusive.
    #[must_use]
    #[inline]
    pub fn cells(&self) -> &[usize] {
        &self.cells
    }

    /// The channel cells only (endpoints stripped).
    #[must_use]
    #[inline]
    pub fn interior(&self) -> &[usize] {
        &self.cells[1..self.cells.len() - 1]
    }

    /// Number of grid edges traversed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cells.len() - 1
    }

    /// `true` for degenerate zero-length paths (never produced by the
    /// router: distinct tiles are never adjacent on the grid).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cells.len() <= 1
    }
}

/// One entry of a per-cycle routing batch for [`Router::route_ready`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouteRequest {
    /// Source tile slot.
    pub from_slot: usize,
    /// Destination tile slot.
    pub to_slot: usize,
    /// Cycles the found path is reserved for when committed.
    pub hold: u64,
    /// `true` routes (find + commit); `false` probes (find only) —
    /// schedulers use probes for candidate queries whose commit decision
    /// depends on other state (the double-defect direct-vs-modify choice).
    pub commit: bool,
}

impl RouteRequest {
    /// A find-and-commit request holding the path for `hold` cycles.
    #[must_use]
    pub fn route(from_slot: usize, to_slot: usize, hold: u64) -> Self {
        RouteRequest { from_slot, to_slot, hold, commit: true }
    }

    /// A find-only request (no reservation on success).
    #[must_use]
    pub fn probe(from_slot: usize, to_slot: usize) -> Self {
        RouteRequest { from_slot, to_slot, hold: 0, commit: false }
    }
}

/// Shortest-path router with per-cycle reservations.
///
/// The router owns the grid plus three layers of state:
///
/// * `blocked` — cells occupied by *mapped* logical tiles (static per
///   compilation). Unmapped tile slots are routable channel space.
/// * node/edge reservations — `free_at[x]` is the first cycle at which `x`
///   may be used again. Reservations always start at the scheduler's
///   current cycle, so a single scalar per resource suffices — and a
///   search therefore needs no duration: free now means free from now on.
/// * A* scratch — epoch-marked visit/score/parent arrays plus a reusable
///   bucket-queue open set, so a search performs no allocation beyond the
///   returned path.
/// * reachability cache — a flood-fill coloring of the available cells
///   into connected regions, valid for one clock cycle, that answers
///   provably-unroutable searches in O(1).
#[derive(Clone, Debug)]
pub struct Router {
    grid: RoutingGrid,
    mode: Disjointness,
    blocked: Vec<bool>,
    node_free_at: Vec<u64>,
    edge_free_at: Vec<u64>,
    // A* scratch (epoch-marked so it never needs clearing). The open set
    // is a monotone bucket queue (Dial's algorithm): `buckets[f]` holds
    // the cells pushed with f-score `f`, consumed FIFO through
    // `bucket_head[f]`. On the unit-weight grid with the consistent
    // Manhattan heuristic, every push lands in bucket `f` or `f + 2` of
    // the cursor, so a forward-only sweep pops entries in exactly the
    // old binary heap's `(f, push order)` sequence — same expansions,
    // same parents, same paths, no `log n` and no per-push comparisons.
    visit_epoch: Vec<u32>,
    g_score: Vec<u32>,
    parent: Vec<u32>,
    buckets: Vec<Vec<u32>>,
    bucket_head: Vec<u32>,
    epoch: u32,
    // Reachability cache: `region[cell]` is the connected-component id
    // (0 = unavailable) of the availability graph, computed by a flood
    // fill at `region_cycle`. Within one cycle reservations only shrink
    // availability, so "different regions" verdicts stay valid until
    // the cycle advances; anything that *grows* availability
    // (cycle advance, unblock, clear) invalidates the coloring.
    region: Vec<u32>,
    region_queue: Vec<u32>,
    region_cycle: Option<u64>,
    // Scratch for `route_ready_by_distance*` request ordering.
    order_scratch: Vec<u32>,
    // Highest cycle any search or commit has used — the
    // reservations-start-now invariant that makes search durations
    // redundant (checked in debug builds).
    watermark: u64,
    stats: RouterStats,
    // Per-cycle committed-cell accumulator behind
    // `RouterStats::peak_cycle_path_cells`: commits arrive in
    // nondecreasing cycle order (the watermark invariant), so one scalar
    // pair suffices — flush on cycle advance, fold the in-progress cycle
    // in at `stats()` time.
    commit_cycle: u64,
    commit_cells: u64,
}

impl Router {
    /// Creates a router over `grid` with the given disjointness rule.
    ///
    /// # Panics
    ///
    /// Panics if the grid has 2³¹ or more cells: the search encodes cell
    /// indices as `u32` and f-scores (bounded by `cells + rows + cols`)
    /// in the high 32 bits of its heap keys, and refuses loudly rather
    /// than truncating silently.
    #[must_use]
    pub fn new(grid: RoutingGrid, mode: Disjointness) -> Self {
        let n = grid.len();
        assert!(n < (1 << 31), "routing grid of {n} cells exceeds the router's 32-bit encoding");
        // f = g + h is bounded by (n − 1) path edges plus the Manhattan
        // diameter, so this dense bucket array covers every reachable
        // f-score. The outer Vec is allocated once; inner buckets grow on
        // first use and keep their capacity across searches.
        let max_f = n + grid.rows() + grid.cols() + 1;
        // Dead cells (defective tiles) are blocked from birth: the hot
        // path already consults `blocked` first in both modes, so defects
        // cost the router nothing per search.
        let blocked = (0..n).map(|i| grid.is_dead(i)).collect();
        Router {
            grid,
            mode,
            blocked,
            node_free_at: vec![0; n],
            edge_free_at: vec![0; 2 * n],
            visit_epoch: vec![0; n],
            g_score: vec![0; n],
            parent: vec![0; n],
            buckets: vec![Vec::new(); max_f],
            bucket_head: vec![0; max_f],
            epoch: 0,
            region: vec![0; n],
            region_queue: Vec::new(),
            region_cycle: None,
            order_scratch: Vec::new(),
            watermark: 0,
            stats: RouterStats::default(),
            commit_cycle: 0,
            commit_cells: 0,
        }
    }

    /// The cumulative routing counters since construction or the last
    /// [`reset_stats`](Self::reset_stats), with the in-progress cycle's
    /// committed cells folded into the per-cycle peak.
    #[must_use]
    pub fn stats(&self) -> RouterStats {
        let mut stats = self.stats;
        stats.peak_cycle_path_cells = stats.peak_cycle_path_cells.max(self.commit_cells);
        stats
    }

    /// Zeroes the routing counters (reservations are untouched).
    pub fn reset_stats(&mut self) {
        self.stats = RouterStats::default();
        self.commit_cells = 0;
    }

    /// The underlying grid.
    #[must_use]
    pub fn grid(&self) -> &RoutingGrid {
        &self.grid
    }

    /// The disjointness rule in force.
    #[must_use]
    pub fn mode(&self) -> Disjointness {
        self.mode
    }

    /// Marks the cell of tile slot `slot` as hosting a logical qubit
    /// (paths may start/end there but not pass through).
    pub fn block_tile(&mut self, slot: usize) {
        let cell = self.grid.tile_cell(slot);
        self.blocked[cell] = true;
        self.region_cycle = None;
    }

    /// Clears a tile blockage (used when remapping). Dead cells stay
    /// blocked: a defective tile can never become routable.
    pub fn unblock_tile(&mut self, slot: usize) {
        let cell = self.grid.tile_cell(slot);
        self.blocked[cell] = self.grid.is_dead(cell);
        self.region_cycle = None;
    }

    /// `true` if the cell currently hosts a logical qubit.
    #[must_use]
    pub fn is_blocked(&self, cell: usize) -> bool {
        self.blocked[cell]
    }

    /// Edge id for the edge between adjacent cells `a` and `b`.
    ///
    /// Horizontal edges are `2·lo`, vertical edges `2·lo + 1`. An index
    /// distance of 1 only means "horizontal neighbor" when `lo` is not the
    /// last cell of its row — the row-wrap pair (end of row *r*, start of
    /// row *r+1*) is one apart in index space but is no grid edge, and
    /// must not silently alias a horizontal id.
    ///
    /// # Panics
    ///
    /// Panics when `a` and `b` are not 4-adjacent on the grid (in every
    /// build profile: hand-built pattern paths reach here via
    /// [`Router::commit`]).
    fn edge_id(&self, a: usize, b: usize) -> usize {
        let (lo, hi) = (a.min(b), a.max(b));
        let cols = self.grid.cols();
        if hi - lo == 1 && (lo % cols) + 1 < cols {
            2 * lo // horizontal edge within one row
        } else {
            assert_eq!(hi - lo, cols, "cells {lo} and {hi} are not grid-adjacent");
            2 * lo + 1 // vertical edge
        }
    }

    /// Whether a step onto `cell` (interior of a path) is allowed at
    /// `cycle`.
    fn cell_available(&self, cell: usize, cycle: u64) -> bool {
        if self.blocked[cell] {
            return false;
        }
        match self.mode {
            Disjointness::Node => self.node_free_at[cell] <= cycle,
            // Edge mode: cells are shareable; only edges are reserved.
            Disjointness::Edge => true,
        }
    }

    fn edge_available(&self, a: usize, b: usize, cycle: u64) -> bool {
        match self.mode {
            Disjointness::Node => true, // node reservations already forbid reuse
            Disjointness::Edge => self.edge_free_at[self.edge_id(a, b)] <= cycle,
        }
    }

    /// Whether a path may *terminate* on `cell` at `cycle`. Tile cells are
    /// exempt from reservation checks — they host the gate's operand
    /// qubits and the scheduler's per-qubit exclusivity covers them — but
    /// a raw channel cell used as an endpoint competes with path interiors
    /// and must respect reservations like any other cell.
    fn endpoint_available(&self, cell: usize, cycle: u64) -> bool {
        !self.grid.is_free(cell) || self.cell_available(cell, cycle)
    }

    /// Finds a shortest conflict-free path between the cells of two tile
    /// slots, usable from `cycle` on. Returns `None` when no such path
    /// exists in the current congestion state.
    ///
    /// The endpoints may be blocked (they host the gate's operand qubits);
    /// interior cells must be channel space or unmapped tile slots.
    ///
    /// # Panics
    ///
    /// Panics if the two slots are equal.
    pub fn find_tile_path(&mut self, from_slot: usize, to_slot: usize, cycle: u64) -> Option<Path> {
        assert_ne!(from_slot, to_slot, "cannot route a tile to itself");
        let from = self.grid.tile_cell(from_slot);
        let to = self.grid.tile_cell(to_slot);
        self.find_cell_path(from, to, cycle)
    }

    /// [`find_tile_path`](Self::find_tile_path) on raw cell indices.
    ///
    /// A* with the Manhattan lower bound: admissible and consistent on the
    /// 4-connected grid, so the first time the target is generated the
    /// path is provably shortest (the parent was expanded with minimal
    /// f = g + h, and h is exactly the remaining-distance bound every
    /// alternative still has to pay). FIFO tie-breaking on equal f keeps
    /// expansion order — and therefore the chosen path among equally short
    /// ones — deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `from == to`.
    pub fn find_cell_path(&mut self, from: usize, to: usize, cycle: u64) -> Option<Path> {
        assert_ne!(from, to, "cannot route a cell to itself");
        debug_assert!(
            cycle >= self.watermark,
            "searches must use nondecreasing cycles (got {cycle} after {})",
            self.watermark
        );
        self.watermark = cycle;
        // Endpoints on raw channel cells must respect reservations (tile
        // endpoints are exempt — see `endpoint_available`).
        if !self.endpoint_available(from, cycle) || !self.endpoint_available(to, cycle) {
            self.stats.conflicts += 1;
            return None;
        }
        // Reachability cache: if a coloring from earlier in this cycle
        // already proves the endpoints disconnected, the answer is `None`
        // without any flooding — reservations committed since the
        // coloring only removed availability, so the verdict holds.
        if self.region_cycle == Some(cycle) && !self.can_reach(from, to, cycle) {
            self.stats.conflicts += 1;
            self.stats.failed_searches += 1;
            self.stats.cache_hits += 1;
            return None;
        }
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.visit_epoch.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let (to_r, to_c) = self.grid.coords(to);
        let cols = self.grid.cols();
        let manhattan = |cell: usize| -> usize {
            let (r, c) = (cell / cols, cell % cols);
            r.abs_diff(to_r) + c.abs_diff(to_c)
        };
        self.visit_epoch[from] = epoch;
        self.g_score[from] = 0;
        let f_lo = manhattan(from);
        self.buckets[f_lo].push(u32::try_from(from).expect("grid fits"));
        let mut f_hi = f_lo; // highest bucket touched (for cleanup)
        let mut open_len: u64 = 1; // entries pushed and not yet popped
        let mut found = false;
        let mut f = f_lo;
        'sweep: while f <= f_hi {
            // New entries can land in this same bucket mid-sweep (a step
            // toward the target keeps f constant), so re-check the length
            // every pop; FIFO order within the bucket is the old heap's
            // push-counter tie-break.
            while (self.bucket_head[f] as usize) < self.buckets[f].len() {
                let cur = self.buckets[f][self.bucket_head[f] as usize] as usize;
                self.bucket_head[f] += 1;
                open_len -= 1;
                let g = self.g_score[cur] as usize;
                if f != g + manhattan(cur) {
                    continue; // stale entry: the cell was re-queued with a better g
                }
                self.stats.cells_expanded += 1;
                for next in neighbors4(&self.grid, cur).into_iter().flatten() {
                    if !self.edge_available(cur, next, cycle) {
                        continue;
                    }
                    if next == to {
                        self.visit_epoch[next] = epoch;
                        self.parent[next] = u32::try_from(cur).expect("grid fits in u32");
                        found = true;
                        break;
                    }
                    if !self.cell_available(next, cycle) {
                        continue;
                    }
                    let ng = self.g_score[cur] + 1;
                    if self.visit_epoch[next] == epoch && self.g_score[next] <= ng {
                        continue;
                    }
                    self.visit_epoch[next] = epoch;
                    self.g_score[next] = ng;
                    self.parent[next] = u32::try_from(cur).expect("grid fits in u32");
                    let nf = ng as usize + manhattan(next);
                    debug_assert!(nf == f || nf == f + 2, "consistent heuristic: f or f+2");
                    self.buckets[nf].push(u32::try_from(next).expect("grid fits"));
                    f_hi = f_hi.max(nf);
                    open_len += 1;
                }
                if found {
                    break 'sweep;
                }
            }
            f += 1;
        }
        // Reset the touched buckets (cheap: the cursor range only).
        for bucket_f in f_lo..=f_hi {
            self.buckets[bucket_f].clear();
            self.bucket_head[bucket_f] = 0;
        }
        if !found {
            self.stats.conflicts += 1;
            self.stats.failed_searches += 1;
            // A cache-missed failure means the coloring is absent or
            // predates the commit that cut this route off — recolor now
            // (one flood, the same order of work the exhausted search
            // just did) so every repeat of this disconnection within the
            // cycle is answered in O(1).
            self.recolor(cycle);
            return None;
        }
        // Everything still in the open buckets is work the heuristic saved.
        self.stats.pruned_expansions += open_len;
        let mut cells = vec![to];
        let mut cur = to;
        while cur != from {
            cur = self.parent[cur] as usize;
            cells.push(cur);
        }
        cells.reverse();
        self.stats.paths_found += 1;
        self.stats.path_cells += cells.len() as u64;
        Some(Path { cells })
    }

    /// Recomputes the reachability coloring for `cycle`: a flood fill
    /// assigning every *available* cell (traversable as a path interior
    /// right now) a connected-region id, respecting edge reservations in
    /// edge mode. Costs one pass over the grid, paid only when a search
    /// exhausts its region without a cache hit — uncongested schedules
    /// never trigger it.
    fn recolor(&mut self, cycle: u64) {
        self.region.fill(0);
        let mut queue = std::mem::take(&mut self.region_queue);
        let mut next_region: u32 = 0;
        for start in 0..self.grid.len() {
            if self.region[start] != 0 || !self.cell_available(start, cycle) {
                continue;
            }
            next_region += 1;
            self.region[start] = next_region;
            queue.clear();
            queue.push(u32::try_from(start).expect("grid fits"));
            while let Some(cur) = queue.pop() {
                let cur = cur as usize;
                self.stats.recolor_cells += 1;
                for next in neighbors4(&self.grid, cur).into_iter().flatten() {
                    if self.region[next] != 0
                        || !self.edge_available(cur, next, cycle)
                        || !self.cell_available(next, cycle)
                    {
                        continue;
                    }
                    self.region[next] = next_region;
                    queue.push(u32::try_from(next).expect("grid fits"));
                }
            }
        }
        self.region_queue = queue;
        self.region_cycle = Some(cycle);
    }

    /// O(1) conservative reachability test against the current coloring
    /// (caller guarantees `region_cycle == Some(cycle)`): `false` only
    /// when *no* path can exist. Endpoints may be reservation-exempt tile
    /// cells, so the test works on their available neighbors: a path
    /// `from, c₁, …, cₖ, to` needs all interior cells in one available
    /// region adjacent to both endpoints. Availability is probed with the
    /// *current* predicates (⊆ the coloring's), so any interior cell that
    /// is usable now already carries a region id — if the endpoint
    /// neighborhoods share no region, the search cannot succeed.
    fn can_reach(&self, from: usize, to: usize, cycle: u64) -> bool {
        // A direct `from → to` hop has no interior; only the edge matters
        // (and the edge must exist — index-adjacency across a seam is no
        // edge, so such pairs fall through to the region test).
        if self.grid.manhattan(from, to) == 1
            && self.grid.step_allowed(from, to)
            && self.edge_available(from, to, cycle)
        {
            return true;
        }
        let adjacent_regions = |cell: usize| -> [u32; 4] {
            let mut out = [0u32; 4];
            for (slot, next) in out.iter_mut().zip(neighbors4(&self.grid, cell)) {
                let Some(next) = next else { continue };
                if self.edge_available(cell, next, cycle) && self.cell_available(next, cycle) {
                    debug_assert!(
                        self.region[next] != 0,
                        "available cell must be colored (availability only shrinks in-cycle)"
                    );
                    *slot = self.region[next];
                }
            }
            out
        };
        let from_regions = adjacent_regions(from);
        if from_regions == [0; 4] {
            return false;
        }
        let to_regions = adjacent_regions(to);
        to_regions.iter().any(|&region| region != 0 && from_regions.contains(&region))
    }

    /// Reserves a path for `[cycle, cycle + duration)`.
    ///
    /// In node mode the interior cells are reserved; in edge mode the
    /// traversed edges are. Endpoint tile cells are never reserved — the
    /// scheduler's per-qubit exclusivity covers them.
    pub fn commit(&mut self, path: &Path, cycle: u64, duration: u64) {
        debug_assert!(
            cycle >= self.watermark,
            "reservations must start at the current cycle (got {cycle} after {})",
            self.watermark
        );
        self.watermark = cycle;
        if cycle != self.commit_cycle {
            self.stats.peak_cycle_path_cells =
                self.stats.peak_cycle_path_cells.max(self.commit_cells);
            self.commit_cycle = cycle;
            self.commit_cells = 0;
        }
        self.commit_cells += path.cells().len() as u64;
        let until = cycle + duration;
        match self.mode {
            Disjointness::Node => {
                for &cell in path.interior() {
                    self.node_free_at[cell] = self.node_free_at[cell].max(until);
                }
            }
            Disjointness::Edge => {
                for pair in path.cells().windows(2) {
                    let id = self.edge_id(pair[0], pair[1]);
                    self.edge_free_at[id] = self.edge_free_at[id].max(until);
                }
            }
        }
    }

    /// Convenience: find and immediately commit.
    pub fn route_tiles(
        &mut self,
        from_slot: usize,
        to_slot: usize,
        cycle: u64,
        duration: u64,
    ) -> Option<Path> {
        let path = self.find_tile_path(from_slot, to_slot, cycle)?;
        self.commit(&path, cycle, duration);
        Some(path)
    }

    /// Routes one clock cycle's batch of requests, in the order given.
    ///
    /// Equivalent to looping [`find_tile_path`](Self::find_tile_path) +
    /// [`commit`](Self::commit) per request — earlier requests' commits are
    /// visible to later searches, exactly as in sequential routing — but
    /// hands the router the whole cycle at once, so schedulers stop
    /// driving the hot path one gate at a time. Outcomes are indexed like
    /// `requests`; `None` marks a blocked request.
    pub fn route_ready(&mut self, requests: &[RouteRequest], cycle: u64) -> Vec<Option<Path>> {
        let mut out = Vec::with_capacity(requests.len());
        self.route_ready_into(requests, cycle, &mut out);
        out
    }

    /// [`route_ready`](Self::route_ready) writing the outcomes into
    /// caller-owned scratch (cleared first, then indexed like
    /// `requests`) — the allocation-free form scheduler cycle loops use.
    pub fn route_ready_into(
        &mut self,
        requests: &[RouteRequest],
        cycle: u64,
        out: &mut Vec<Option<Path>>,
    ) {
        out.clear();
        out.extend(requests.iter().map(|req| self.route_one(req, cycle)));
    }

    /// [`route_ready`](Self::route_ready), with the router choosing the
    /// order: requests are served shortest-estimated-distance first
    /// (Manhattan between the endpoint tiles, ties in batch order), so a
    /// long greedy path laid down early cannot block several short ones.
    /// Outcomes are still indexed by the *original* request positions.
    pub fn route_ready_by_distance(
        &mut self,
        requests: &[RouteRequest],
        cycle: u64,
    ) -> Vec<Option<Path>> {
        let mut out = Vec::with_capacity(requests.len());
        self.route_ready_by_distance_into(requests, cycle, &mut out);
        out
    }

    /// [`route_ready_by_distance`](Self::route_ready_by_distance) writing
    /// into caller-owned scratch; the ordering permutation lives in
    /// router-owned scratch, so steady-state batches allocate nothing.
    pub fn route_ready_by_distance_into(
        &mut self,
        requests: &[RouteRequest],
        cycle: u64,
        out: &mut Vec<Option<Path>>,
    ) {
        out.clear();
        out.resize(requests.len(), None);
        let mut order = std::mem::take(&mut self.order_scratch);
        order.clear();
        order.extend(0..u32::try_from(requests.len()).expect("batch fits in u32"));
        // Unstable sort with the original index as tie-break: same order
        // as a stable sort on distance alone, without the stable sort's
        // temporary buffer.
        order.sort_unstable_by_key(|&i| {
            let req = &requests[i as usize];
            (self.estimated_distance(req.from_slot, req.to_slot), i)
        });
        for &i in &order {
            out[i as usize] = self.route_one(&requests[i as usize], cycle);
        }
        self.order_scratch = order;
    }

    /// The Manhattan lower bound on the path length between two tile
    /// slots — the estimate [`route_ready_by_distance`] orders by, also
    /// the A* heuristic.
    ///
    /// [`route_ready_by_distance`]: Self::route_ready_by_distance
    #[must_use]
    pub fn estimated_distance(&self, from_slot: usize, to_slot: usize) -> usize {
        self.grid.manhattan(self.grid.tile_cell(from_slot), self.grid.tile_cell(to_slot))
    }

    fn route_one(&mut self, req: &RouteRequest, cycle: u64) -> Option<Path> {
        let path = self.find_tile_path(req.from_slot, req.to_slot, cycle)?;
        if req.commit {
            self.commit(&path, cycle, req.hold);
        }
        Some(path)
    }

    /// Drops all reservations (but keeps tile blockages). Used when a
    /// compiler restarts scheduling from cycle 0.
    pub fn clear_reservations(&mut self) {
        self.node_free_at.fill(0);
        self.edge_free_at.fill(0);
        self.watermark = 0;
        // Availability grew: any cached disconnection verdict is void.
        self.region_cycle = None;
    }

    /// Checks that a set of `(path, start, duration)` triples is mutually
    /// conflict-free under `mode` — the independent validity oracle used by
    /// the schedule validator.
    #[must_use]
    pub fn paths_conflict_free(
        grid: &RoutingGrid,
        mode: Disjointness,
        reservations: &[(&Path, u64, u64)],
    ) -> bool {
        for (i, &(pa, sa, da)) in reservations.iter().enumerate() {
            for &(pb, sb, db) in &reservations[i + 1..] {
                let overlap = sa < sb + db && sb < sa + da;
                if !overlap {
                    continue;
                }
                match mode {
                    Disjointness::Node => {
                        // Interior cells must be pairwise disjoint; also no
                        // interior cell may sit on the other path's
                        // endpoint tiles.
                        for &ca in pa.interior() {
                            if pb.cells().contains(&ca) {
                                return false;
                            }
                        }
                        for &cb in pb.interior() {
                            if pa.cells().contains(&cb) {
                                return false;
                            }
                        }
                    }
                    Disjointness::Edge => {
                        let edges = |p: &Path| {
                            p.cells()
                                .windows(2)
                                .map(|w| {
                                    let (lo, hi) = (w[0].min(w[1]), w[0].max(w[1]));
                                    (lo, hi)
                                })
                                .collect::<std::collections::HashSet<_>>()
                        };
                        if !edges(pa).is_disjoint(&edges(pb)) {
                            return false;
                        }
                    }
                }
                let _ = grid;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::{Chip, CodeModel};

    fn router(rows: usize, cols: usize, b: u32, mode: Disjointness) -> Router {
        let chip = Chip::uniform(CodeModel::DoubleDefect, rows, cols, b, 3).unwrap();
        Router::new(chip.grid(), mode)
    }

    #[test]
    fn finds_shortest_path_between_adjacent_tiles() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.find_tile_path(0, 1, 0).expect("path");
        // Tiles at (1,1) and (1,3): shortest path length 2 edges via (1,2).
        assert_eq!(p.len(), 2);
        assert_eq!(p.interior().len(), 1);
    }

    #[test]
    fn cannot_route_through_mapped_tile() {
        // Tiles in a row: 0 — 1 — 2, all mapped. A 1×3 chip's grid is
        // 3 rows tall, so the path 0→2 must detour around tile 1.
        let mut r = router(1, 3, 1, Disjointness::Node);
        for t in 0..3 {
            r.block_tile(t);
        }
        let p = r.find_tile_path(0, 2, 0).expect("path around");
        let mid = r.grid().tile_cell(1);
        assert!(!p.cells().contains(&mid), "path must avoid the mapped middle tile");
        assert!(p.len() > 4, "detour is longer than the straight line");
    }

    #[test]
    fn unmapped_tile_slot_is_routable() {
        let mut r = router(1, 3, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(2);
        // Tile slot 1 unmapped ⇒ the straight path through it is legal.
        let p = r.find_tile_path(0, 2, 0).expect("straight path");
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn node_mode_makes_crossing_paths_detour() {
        // Two gates whose straight paths would cross at the central
        // junction of a 2×2 tile array: 0—3 and 1—2. In node mode the
        // second must detour around the reserved cells (braids cannot
        // cross), so it routes strictly longer than its Manhattan distance.
        let mut r = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.route_tiles(0, 3, 0, 1).expect("first diagonal routes");
        let p2 = r.route_tiles(1, 2, 0, 1).expect("second diagonal detours");
        assert!(p2.len() > 4, "crossing forbidden ⇒ detour, got length {}", p2.len());
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p2, 0, 1)]
        ));
        // Next cycle the straight route is free again.
        let p3 = r.find_tile_path(1, 2, 1).expect("straight next cycle");
        assert_eq!(p3.len(), 4);
    }

    #[test]
    fn crossing_conflicts_in_node_mode_but_not_edge_mode() {
        // Hand-crafted orthogonal paths sharing exactly the central cell of
        // a 2×2 array's junction: a braid conflict, a legal EDP crossing.
        let r = router(2, 2, 1, Disjointness::Node);
        let g = r.grid();
        let vertical = Path::from_cells(g, vec![g.index(1, 2), g.index(2, 2), g.index(3, 2)]);
        let horizontal = Path::from_cells(g, vec![g.index(2, 1), g.index(2, 2), g.index(2, 3)]);
        assert!(!Router::paths_conflict_free(
            g,
            Disjointness::Node,
            &[(&vertical, 0, 1), (&horizontal, 0, 1)]
        ));
        assert!(Router::paths_conflict_free(
            g,
            Disjointness::Edge,
            &[(&vertical, 0, 1), (&horizontal, 0, 1)]
        ));
    }

    #[test]
    #[should_panic(expected = "not grid-adjacent")]
    fn from_cells_rejects_row_wrap_neighbors() {
        // End of row 1 and start of row 2 are one apart in index space but
        // share no grid edge — the aliasing pair the old edge-id scheme
        // silently accepted.
        let r = router(1, 2, 1, Disjointness::Edge);
        let g = r.grid();
        let last = g.index(1, g.cols() - 1);
        let wrapped = g.index(2, 0);
        assert_eq!(wrapped - last, 1, "the wrap pair is index-adjacent");
        let _ = Path::from_cells(g, vec![last, wrapped]);
    }

    #[test]
    #[should_panic(expected = "not grid-adjacent")]
    fn committing_a_wrap_pair_panics_instead_of_aliasing() {
        let mut r = router(1, 2, 1, Disjointness::Edge);
        let g = r.grid();
        let last = g.index(1, g.cols() - 1);
        let wrapped = g.index(2, 0);
        let bogus = Path::from_cells_unchecked(vec![last, wrapped]);
        r.commit(&bogus, 0, 1);
    }

    #[test]
    fn channel_exhaustion_fails_the_route() {
        // A 1×2 tile chip has exactly three node-disjoint 0–1 routes
        // (straight, over the top, under the bottom). A fourth request in
        // the same cycle must fail: every crossing of the middle column is
        // reserved.
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for k in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some(), "route {k} fits");
        }
        assert!(r.find_tile_path(0, 1, 0).is_none(), "fourth route must fail");
        assert!(r.find_tile_path(0, 1, 1).is_some(), "free next cycle");
    }

    #[test]
    fn edge_mode_allows_crossing_paths() {
        let mut r = router(2, 2, 1, Disjointness::Edge);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.route_tiles(0, 3, 0, 1).expect("first diagonal");
        let p2 = r.find_tile_path(1, 2, 0).expect("crossing allowed in edge mode");
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Edge,
            &[(&p1, 0, 1), (&p2, 0, 1)]
        ));
    }

    #[test]
    fn bandwidth_two_fits_parallel_paths() {
        // With bandwidth 2 the central channels have two lanes, so both
        // diagonals of a 2×2 array route simultaneously even in node mode.
        let mut r = router(2, 2, 2, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.route_tiles(0, 3, 0, 1).expect("first diagonal");
        let p2 = r.route_tiles(1, 2, 0, 1).expect("second diagonal via spare lane");
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p2, 0, 1)]
        ));
    }

    #[test]
    fn duration_blocks_future_cycles() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.find_tile_path(0, 1, 0).expect("path");
        r.commit(&p, 0, 2);
        // The straight lane cell is reserved for cycles 0 and 1; another
        // path exists via the boundary lanes, but the straight one is out.
        let p2 = r.find_tile_path(0, 1, 1).expect("detour");
        assert!(p2.len() > p.len());
        // At cycle 2 the straight path is free again.
        let p3 = r.find_tile_path(0, 1, 2).expect("straight again");
        assert_eq!(p3.len(), p.len());
    }

    #[test]
    fn clear_reservations_resets_state() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.route_tiles(0, 1, 0, 100).expect("path");
        r.clear_reservations();
        let p2 = r.find_tile_path(0, 1, 0).expect("path after clear");
        assert_eq!(p.len(), p2.len());
    }

    #[test]
    fn conflict_checker_flags_shared_interior() {
        let mut r = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let p1 = r.find_tile_path(0, 3, 0).expect("path");
        // Same path twice at the same cycle conflicts in node mode...
        assert!(!Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p1, 0, 1)]
        ));
        // ...but not when the cycles differ.
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p1, 1, 1)]
        ));
    }

    #[test]
    fn stats_count_finds_conflicts_and_effort() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for _ in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some());
        }
        assert!(r.find_tile_path(0, 1, 0).is_none(), "saturated");
        let s = r.stats();
        assert_eq!(s.paths_found, 3);
        assert_eq!(s.conflicts, 1);
        assert!(s.cells_expanded >= 4, "every search expands at least the source");
        assert!(s.path_cells >= 3 * 3, "three paths of ≥3 cells each");
        r.reset_stats();
        assert_eq!(r.stats(), RouterStats::default());
        let merged = s.merged(s);
        assert_eq!(merged.paths_found, 6);
        assert_eq!(merged.conflicts, 2);
        assert_eq!(merged.pruned_expansions, 2 * s.pruned_expansions);
    }

    #[test]
    fn failed_searches_hit_the_reachability_cache_within_a_cycle() {
        // Saturate the single 0–1 channel column, then fail repeatedly in
        // the same cycle: the first failure floods and colors, the rest
        // are O(1) cache hits with no further expansions.
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for _ in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some());
        }
        assert!(r.find_tile_path(0, 1, 0).is_none(), "saturated");
        let after_first = r.stats();
        assert_eq!(after_first.failed_searches, 1);
        assert_eq!(after_first.cache_hits, 0, "the first failure floods");
        assert!(after_first.recolor_cells > 0, "the first failure colors the regions");
        for _ in 0..5 {
            assert!(r.find_tile_path(0, 1, 0).is_none());
        }
        let s = r.stats();
        assert_eq!(s.failed_searches, 6);
        assert_eq!(s.cache_hits, 5, "every repeat is answered by the cache");
        assert_eq!(s.cells_expanded, after_first.cells_expanded, "cache hits expand nothing");
        assert_eq!(s.recolor_cells, after_first.recolor_cells, "cache hits do not recolor");
        // Conflicts still counts every failure, as before.
        assert_eq!(s.conflicts, 6);
    }

    #[test]
    fn reachability_cache_expires_when_the_cycle_advances() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for _ in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some());
        }
        assert!(r.find_tile_path(0, 1, 0).is_none());
        assert!(r.find_tile_path(0, 1, 0).is_none());
        assert_eq!(r.stats().cache_hits, 1);
        // Reservations expired: the stale "disconnected" verdict must not
        // leak into cycle 1.
        assert!(r.find_tile_path(0, 1, 1).is_some(), "free again at cycle 1");
    }

    #[test]
    fn reachability_cache_is_refreshed_by_mid_cycle_commits() {
        // A genuine mid-cycle region *split*: fail once so a coloring is
        // taken, then commit a wall that cuts the colored region in two.
        // The next failure's endpoints look connected under the stale
        // coloring (a miss — the search floods and recolors), and only
        // the repeat is a cache hit. On a 1×3 chip the free cells form a
        // ring around the tile row; a committed hook whose interior
        // covers one full column severs it.
        let mut r = router(1, 3, 1, Disjointness::Node);
        for t in 0..3 {
            r.block_tile(t);
        }
        let g = r.grid().clone();
        // Hook paths: interior = the 3 cells of the given column.
        let wall = |col: usize| {
            Path::from_cells(
                &g,
                vec![
                    g.index(0, col - 1),
                    g.index(0, col),
                    g.index(1, col),
                    g.index(2, col),
                    g.index(2, col - 1),
                ],
            )
        };
        r.commit(&wall(4), 0, 1);
        assert!(r.find_tile_path(0, 2, 0).is_none(), "column-4 wall separates 0 from 2");
        assert_eq!(r.stats().cache_hits, 0, "first failure floods and colors");
        r.commit(&wall(2), 0, 1);
        assert!(r.find_tile_path(0, 1, 0).is_none(), "column-2 wall separates 0 from 1");
        assert_eq!(
            r.stats().cache_hits,
            0,
            "the 0-1 split postdates the coloring: a miss that re-floods"
        );
        assert!(r.find_tile_path(0, 1, 0).is_none());
        assert_eq!(r.stats().cache_hits, 1, "the miss recolored, so the repeat hits");
    }

    #[test]
    fn clear_reservations_invalidates_the_reachability_cache() {
        let mut r = router(1, 2, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(1);
        for _ in 0..3 {
            assert!(r.route_tiles(0, 1, 0, 1).is_some());
        }
        assert!(r.find_tile_path(0, 1, 0).is_none());
        r.clear_reservations();
        assert!(r.find_tile_path(0, 1, 0).is_some(), "cleared reservations must re-route");
    }

    #[test]
    fn unblocking_a_tile_invalidates_the_reachability_cache() {
        // Tiles 0,1,2 in a row, middle mapped. Hand-committed top and
        // bottom detours (deterministic geometry, unlike router-chosen
        // paths) saturate every 0→2 route around the middle tile; then
        // unmapping it opens the straight lane, and the stale
        // "disconnected" coloring must not answer `None`.
        let mut r = router(1, 3, 1, Disjointness::Node);
        for t in 0..3 {
            r.block_tile(t);
        }
        let g = r.grid().clone();
        let over = Path::from_cells(&g, (0..=6).map(|c| g.index(0, c)).collect());
        let under = Path::from_cells(&g, (0..=6).map(|c| g.index(2, c)).collect());
        r.commit(&over, 0, 1);
        r.commit(&under, 0, 1);
        assert!(r.find_tile_path(0, 2, 0).is_none(), "both detour rows reserved");
        assert!(r.find_tile_path(0, 2, 0).is_none());
        assert_eq!(r.stats().cache_hits, 1, "the repeat hits the cache");
        r.unblock_tile(1);
        let p = r.find_tile_path(0, 2, 0).expect("unmapped slot opens the straight lane");
        assert_eq!(p.len(), 4, "straight through the unmapped middle slot");
    }

    #[test]
    fn route_ready_into_reuses_caller_scratch() {
        let reqs =
            [RouteRequest::route(0, 3, 1), RouteRequest::probe(1, 2), RouteRequest::route(1, 2, 1)];
        let mut r = router(2, 2, 1, Disjointness::Node);
        let mut r2 = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
            r2.block_tile(t);
        }
        let mut out = vec![None; 17]; // stale content must be cleared
        r.route_ready_into(&reqs, 0, &mut out);
        assert_eq!(out, r2.route_ready(&reqs, 0));
        let mut out_dist = Vec::new();
        let mut r3 = router(2, 2, 1, Disjointness::Node);
        let mut r4 = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r3.block_tile(t);
            r4.block_tile(t);
        }
        r3.route_ready_by_distance_into(&reqs, 0, &mut out_dist);
        assert_eq!(out_dist, r4.route_ready_by_distance(&reqs, 0));
    }

    #[test]
    fn astar_expands_no_more_than_the_grid_and_prunes_on_detours() {
        // On an open 3×3 array, a corner-to-corner route leaves off-path
        // frontier entries unexpanded: the heuristic must prune something.
        let mut r = router(3, 3, 1, Disjointness::Node);
        r.block_tile(0);
        r.block_tile(8);
        let p = r.find_tile_path(0, 8, 0).expect("path");
        let s = r.stats();
        assert_eq!(p.len(), r.estimated_distance(0, 8), "uncongested ⇒ Manhattan-optimal");
        assert!(s.pruned_expansions > 0, "open frontier left behind");
        assert!(
            s.cells_expanded < r.grid().len() as u64,
            "A* must not expand the whole grid on an uncongested search"
        );
    }

    #[test]
    fn saturated_channel_recovers_next_cycle() {
        let mut r = router(3, 3, 1, Disjointness::Node);
        for t in 0..9 {
            r.block_tile(t);
        }
        // Route many gates in cycle 0 until saturation, then confirm
        // cycle 1 works again.
        let got0 = r.route_tiles(0, 8, 0, 1).is_some();
        assert!(got0);
        let mut failures = 0;
        for (a, b) in [(1, 7), (2, 6), (3, 5)] {
            if r.route_tiles(a, b, 0, 1).is_none() {
                failures += 1;
            }
        }
        // At bandwidth 1 not all of these fit simultaneously.
        assert!(failures > 0, "bandwidth-1 chip should congest");
        assert!(r.find_tile_path(1, 7, 1).is_some(), "free again at cycle 1");
    }

    #[test]
    fn free_cell_target_respects_reservations() {
        // Route 0→3 through the central junction, then ask for a path
        // *ending on* that reserved junction cell in the same cycle: the
        // old BFS early exit skipped the availability check and happily
        // terminated on another path's cell.
        let mut r = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let center = r.grid().index(2, 2);
        let p1 = r.route_tiles(0, 3, 0, 1).expect("diagonal");
        assert!(p1.cells().contains(&center), "the diagonal uses the junction");
        let start = r.grid().tile_cell(1);
        assert!(
            r.find_cell_path(start, center, 0).is_none(),
            "a reserved channel cell must not terminate a node-mode path"
        );
        // Tile endpoints stay exempt: routing to the (blocked) tile 2 from
        // tile 1 is still legal this cycle if a clear route exists.
        assert!(r.find_tile_path(1, 2, 0).is_some(), "tile targets keep the exemption");
        // And the channel cell is a fine target again once the hold ends.
        let p2 = r.find_cell_path(start, center, 1).expect("free next cycle");
        assert_eq!(*p2.cells().last().unwrap(), center);
    }

    #[test]
    fn free_cell_target_conflicts_count_and_validate() {
        // The regression promised in the issue: with the target check in
        // place, node-mode cell routes never produce conflicting paths.
        let mut r = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let center = r.grid().index(2, 2);
        let p1 = r.route_tiles(0, 3, 0, 1).expect("diagonal");
        let start = r.grid().tile_cell(1);
        let before = r.stats().conflicts;
        assert!(r.find_cell_path(start, center, 0).is_none());
        assert_eq!(r.stats().conflicts, before + 1, "the blocked target is a conflict");
        // Next cycle's path to the same cell coexists with the first
        // path's one-cycle reservation.
        let p2 = r.find_cell_path(start, center, 1).expect("path");
        assert!(Router::paths_conflict_free(
            r.grid(),
            Disjointness::Node,
            &[(&p1, 0, 1), (&p2, 1, 1)]
        ));
    }

    #[test]
    fn route_ready_matches_sequential_routing() {
        let reqs = [
            RouteRequest::route(0, 3, 1),
            RouteRequest::probe(1, 2),
            RouteRequest::route(1, 2, 1),
            RouteRequest::route(2, 1, 1),
        ];
        let mut batched = router(2, 2, 1, Disjointness::Node);
        let mut sequential = router(2, 2, 1, Disjointness::Node);
        for t in 0..4 {
            batched.block_tile(t);
            sequential.block_tile(t);
        }
        let got = batched.route_ready(&reqs, 0);
        let want: Vec<Option<Path>> = reqs
            .iter()
            .map(|req| {
                let p = sequential.find_tile_path(req.from_slot, req.to_slot, 0)?;
                if req.commit {
                    sequential.commit(&p, 0, req.hold);
                }
                Some(p)
            })
            .collect();
        assert_eq!(got, want);
        assert_eq!(batched.stats(), sequential.stats());
        // The probe reserved nothing; the commit right after it did.
        assert!(got[1].is_some() && got[2].is_some());
    }

    #[test]
    fn route_ready_by_distance_serves_short_requests_first() {
        // On a 1×3 row with tiles 0,1,2 mapped, the long 0→2 request
        // hogs a boundary lane if served first. Distance ordering routes
        // the short 0→1 and 1→2 pairs before it.
        let mut r = router(1, 3, 1, Disjointness::Node);
        for t in 0..3 {
            r.block_tile(t);
        }
        let reqs = [
            RouteRequest::route(0, 2, 1),
            RouteRequest::route(0, 1, 1),
            RouteRequest::route(1, 2, 1),
        ];
        let out = r.route_ready_by_distance(&reqs, 0);
        let short01 = out[1].as_ref().expect("short pair routes");
        let short12 = out[2].as_ref().expect("short pair routes");
        assert_eq!(short01.len(), 2, "served before the long request could block it");
        assert_eq!(short12.len(), 2, "served before the long request could block it");
        // Outcomes are reported at the original positions.
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn astar_paths_are_as_short_as_bfs_on_congested_grids() {
        // Deterministic congestion sweep: commit a few paths, then check
        // every remaining pair against a reference BFS run on a clone.
        for mode in [Disjointness::Node, Disjointness::Edge] {
            let mut r = router(3, 3, 1, mode);
            for t in 0..9 {
                r.block_tile(t);
            }
            r.route_tiles(0, 8, 0, 1);
            r.route_tiles(2, 6, 0, 1);
            for (a, b) in [(1, 7), (3, 5), (0, 4), (4, 8), (1, 5), (3, 7)] {
                let bfs_len = reference_bfs_len(&r, a, b, 0);
                let astar = r.clone().find_tile_path(a, b, 0).map(|p| p.len());
                assert_eq!(astar, bfs_len, "{mode:?} {a}->{b}");
            }
        }
    }

    /// Reference shortest-path oracle: plain BFS over the router's own
    /// availability predicates (clone-probed, so no reservations change).
    fn reference_bfs_len(
        r: &Router,
        from_slot: usize,
        to_slot: usize,
        cycle: u64,
    ) -> Option<usize> {
        let grid = r.grid();
        let (from, to) = (grid.tile_cell(from_slot), grid.tile_cell(to_slot));
        if !r.endpoint_available(from, cycle) || !r.endpoint_available(to, cycle) {
            return None;
        }
        let mut dist = vec![usize::MAX; grid.len()];
        let mut queue = std::collections::VecDeque::new();
        dist[from] = 0;
        queue.push_back(from);
        while let Some(cur) = queue.pop_front() {
            for next in grid.neighbors(cur) {
                if dist[next] != usize::MAX || !r.edge_available(cur, next, cycle) {
                    continue;
                }
                if next == to {
                    return Some(dist[cur] + 1);
                }
                if !r.cell_available(next, cycle) {
                    continue;
                }
                dist[next] = dist[cur] + 1;
                queue.push_back(next);
            }
        }
        None
    }
}

#[cfg(test)]
mod edp_tests {
    use super::*;
    use ecmas_chip::{Chip, CodeModel};

    fn ls_router(rows: usize, cols: usize, b: u32) -> Router {
        let chip = Chip::uniform(CodeModel::LatticeSurgery, rows, cols, b, 3).unwrap();
        Router::new(chip.grid(), Disjointness::Edge)
    }

    #[test]
    fn edge_mode_shares_cells_but_not_edges() {
        let mut r = ls_router(1, 3, 1);
        for t in 0..3 {
            r.block_tile(t);
        }
        // Route 0→1 straight; its edges are used, but the lane cells stay
        // shareable for a perpendicular crossing.
        let p = r.route_tiles(0, 1, 0, 1).expect("straight");
        assert_eq!(p.len(), 2);
        // Re-routing the same pair in the same cycle must avoid the used
        // edges (detour via another row).
        let p2 = r.route_tiles(0, 1, 0, 1).expect("detour exists");
        assert!(p2.len() > p.len());
    }

    #[test]
    fn edge_reservations_expire() {
        let mut r = ls_router(1, 2, 1);
        r.block_tile(0);
        r.block_tile(1);
        let p = r.route_tiles(0, 1, 0, 1).expect("path");
        let p_next = r.find_tile_path(0, 1, 1).expect("next cycle free");
        assert_eq!(p.len(), p_next.len());
    }

    #[test]
    fn mapped_tiles_block_edge_mode_interiors_too() {
        let mut r = ls_router(1, 3, 1);
        for t in 0..3 {
            r.block_tile(t);
        }
        let p = r.find_tile_path(0, 2, 0).expect("path");
        let mid = r.grid().tile_cell(1);
        assert!(!p.cells().contains(&mid));
    }

    #[test]
    fn path_accessors_are_consistent() {
        let mut r = ls_router(2, 2, 1);
        r.block_tile(0);
        r.block_tile(3);
        let p = r.find_tile_path(0, 3, 0).expect("path");
        assert_eq!(p.cells().len(), p.len() + 1);
        assert_eq!(p.interior().len(), p.cells().len() - 2);
        assert!(!p.is_empty());
    }

    #[test]
    fn find_does_not_commit() {
        let mut r = ls_router(1, 2, 1);
        r.block_tile(0);
        r.block_tile(1);
        let a = r.find_tile_path(0, 1, 0).expect("a");
        let b = r.find_tile_path(0, 1, 0).expect("b");
        assert_eq!(a, b, "find_tile_path must not reserve anything");
    }

    #[test]
    fn dead_tiles_are_blocked_at_construction() {
        // Tiles in a row: 0 — X — 2; the dead middle tile must force the
        // same detour a mapped tile would, without any block_tile call.
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 3, 1, 3)
            .unwrap()
            .with_defects(&[(0, 1)])
            .unwrap();
        let mut r = Router::new(chip.grid(), Disjointness::Node);
        let mid = r.grid().tile_cell(1);
        assert!(r.is_blocked(mid), "dead cell blocked from birth");
        r.block_tile(0);
        r.block_tile(2);
        let p = r.find_tile_path(0, 2, 0).expect("path around the dead tile");
        assert!(!p.cells().contains(&mid));
        assert!(p.len() > 4, "detour is longer than the straight line");
    }

    #[test]
    fn unblock_tile_does_not_resurrect_dead_cells() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 3, 1, 3)
            .unwrap()
            .with_defects(&[(0, 1)])
            .unwrap();
        let mut r = Router::new(chip.grid(), Disjointness::Node);
        let mid = r.grid().tile_cell(1);
        r.block_tile(1);
        r.unblock_tile(1);
        assert!(r.is_blocked(mid), "a dead tile stays blocked after unblock");
        r.unblock_tile(0);
        assert!(!r.is_blocked(r.grid().tile_cell(0)), "live tiles unblock normally");
    }

    #[test]
    fn peak_cycle_path_cells_tracks_the_busiest_cycle() {
        // Two disjoint pairs routed in cycle 0, one pair in cycle 1.
        let chip = Chip::uniform(CodeModel::DoubleDefect, 1, 4, 1, 3).unwrap();
        let mut r = Router::new(chip.grid(), Disjointness::Node);
        for t in 0..4 {
            r.block_tile(t);
        }
        let a = r.route_tiles(0, 1, 0, 1).expect("a");
        let b = r.route_tiles(2, 3, 0, 1).expect("b");
        let cycle0 = (a.cells().len() + b.cells().len()) as u64;
        assert_eq!(r.stats().peak_cycle_path_cells, cycle0);
        let c = r.route_tiles(0, 1, 1, 1).expect("c");
        assert!((c.cells().len() as u64) < cycle0);
        assert_eq!(r.stats().peak_cycle_path_cells, cycle0, "cycle 1 is quieter");
        // Probes must not move the peak.
        let before = r.stats().peak_cycle_path_cells;
        r.find_tile_path(2, 3, 1).expect("probe");
        assert_eq!(r.stats().peak_cycle_path_cells, before);
        // merged() takes the max of peaks, not the sum.
        let merged =
            r.stats().merged(RouterStats { peak_cycle_path_cells: 1, ..RouterStats::default() });
        assert_eq!(merged.peak_cycle_path_cells, cycle0);
    }
}
