//! **ecmas-analyze** — static analysis and diagnostics for the Ecmas
//! workspace.
//!
//! Three analysis layers, all reporting through the shared
//! [`Diagnostic`] type (registry in `ecmas_core::diag`):
//!
//! 1. **Source level** — [`lint_qasm`] parses OpenQASM and surfaces
//!    lexer/parser failures as `E010` diagnostics with line/column
//!    spans, then runs the circuit lints on the parse result.
//! 2. **Circuit level** (pre-compile) — [`lint_circuit`] checks a
//!    built circuit against an optional target chip: width-vs-capacity
//!    early reject (`E012`), dead qubits (`W001`), adjacent
//!    self-cancelling CNOT pairs (`W002`), and communication-graph
//!    structure (`W003` disconnected, `W004` degree hotspots).
//!    [`lint_gates`] validates a raw gate list (`E011`) before a
//!    `Circuit` is even constructed — `Circuit::try_cnot` rejects
//!    out-of-range indices, so raw lists are the only place they can
//!    appear.
//! 3. **Schedule level** (post-compile) — re-exported from
//!    `ecmas-core`: [`collect_violations`] gathers *every* legality
//!    violation of an encoded schedule (not just the first, as the
//!    [`validate_encoded`](ecmas_core::validate_encoded) facade does)
//!    and [`analyze_encoded`] adds the hint-severity metrics (`H001`
//!    idle bubbles, `H002` critical-path slack).
//!
//! Severity policy: gates (CI, the daemon's analyze mode) fail only on
//! [`Severity::Error`]. Warnings and hints are advisory — see
//! [`has_errors`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecmas_chip::Chip;
use ecmas_circuit::{qasm, Circuit, Op};

pub use ecmas_core::diag::{diagnostics_to_json, Code, Diagnostic, Severity, Span};
pub use ecmas_core::encoded::{analyze_encoded, collect_violations};

/// `true` if any diagnostic is error severity (the gating predicate).
#[must_use]
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(Diagnostic::is_error)
}

/// Lints a raw CNOT gate list against a declared qubit count.
///
/// This is the only home for `E011`: [`Circuit`] construction already
/// rejects out-of-range indices, so the check must run on the raw
/// `(control, target)` pairs a caller holds *before* building one.
/// One diagnostic per offending gate.
#[must_use]
pub fn lint_gates(qubits: usize, pairs: &[(usize, usize)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (g, &(control, target)) in pairs.iter().enumerate() {
        let bad = [control, target].into_iter().find(|&q| q >= qubits);
        if let Some(q) = bad {
            out.push(Diagnostic::new(
                Code::QubitOutOfRange,
                format!(
                    "gate {g} (cnot {control},{target}) references qubit {q} \
                     outside the declared width {qubits}"
                ),
            ));
        }
    }
    out
}

/// Runs the circuit-level lints, optionally against a target chip.
///
/// Emitted codes: `E012` (circuit wider than the chip's live tiles —
/// the compile would be rejected, so this is an early, cheap
/// equivalent), `W001` (unused qubits), `W002` (adjacent
/// self-cancelling CNOT pairs), `W003` (disconnected communication
/// graph), `W004` (communication-degree hotspots that predict router
/// congestion).
#[must_use]
pub fn lint_circuit(circuit: &Circuit, chip: Option<&Chip>) -> Vec<Diagnostic> {
    let n = circuit.qubits();
    let mut out = Vec::new();

    if let Some(chip) = chip {
        let live = chip.live_tiles();
        if n > live {
            out.push(Diagnostic::new(
                Code::WidthExceedsChip,
                format!("circuit has {n} qubits but the chip only has {live} live tiles"),
            ));
        }
    }

    // W001 — dead qubits: declared but touched by no op.
    let mut touched = vec![false; n];
    for op in circuit.ops() {
        match *op {
            Op::Cnot { control, target } => {
                touched[control] = true;
                touched[target] = true;
            }
            Op::Single { qubit, .. } => touched[qubit] = true,
            _ => {}
        }
    }
    let unused: Vec<usize> = (0..n).filter(|&q| !touched[q]).collect();
    if !unused.is_empty() {
        out.push(Diagnostic::new(
            Code::UnusedQubit,
            format!(
                "{} of {n} declared qubits are touched by no gate: {}",
                unused.len(),
                fmt_list(&unused)
            ),
        ));
    }

    // W002 — adjacent self-cancelling CNOT pairs: two identical CNOTs
    // with no intervening op touching either operand cancel to the
    // identity. Barriers count as intervening (they exist to prevent
    // exactly this kind of reordering/cancellation reasoning).
    let mut last_touch: Vec<Option<usize>> = vec![None; n];
    let mut cancelling = 0usize;
    let mut first_pair = None;
    for (i, op) in circuit.ops().iter().enumerate() {
        match *op {
            Op::Cnot { control, target } => {
                if let (Some(a), Some(b)) = (last_touch[control], last_touch[target]) {
                    if a == b && circuit.ops()[a] == *op {
                        cancelling += 1;
                        first_pair.get_or_insert((a, i));
                    }
                }
                last_touch[control] = Some(i);
                last_touch[target] = Some(i);
            }
            Op::Single { qubit, .. } => last_touch[qubit] = Some(i),
            _ => {
                // Barrier (or future variants): conservatively touches
                // every qubit.
                last_touch.fill(Some(i));
            }
        }
    }
    if cancelling > 0 {
        let (a, b) = first_pair.expect("counted pairs imply a first pair");
        out.push(Diagnostic::new(
            Code::SelfCancellingCnots,
            format!(
                "{cancelling} adjacent identical CNOT pair(s) cancel to the identity \
                 (first: ops {a} and {b})"
            ),
        ));
    }

    // Communication-graph lints. Only qubits with at least one CNOT
    // partner participate (isolated qubits are W001's business).
    let comm = circuit.comm_graph();
    let active: Vec<usize> = (0..n).filter(|&q| comm.weighted_degree(q) > 0).collect();

    // W003 — disconnected components among the active qubits.
    if active.len() > 1 {
        let mut seen = vec![false; n];
        let mut components = 0usize;
        let mut largest = 0usize;
        for &start in &active {
            if seen[start] {
                continue;
            }
            components += 1;
            let mut size = 0usize;
            let mut stack = vec![start];
            seen[start] = true;
            while let Some(q) = stack.pop() {
                size += 1;
                for &(peer, _) in comm.neighbors(q) {
                    if !seen[peer] {
                        seen[peer] = true;
                        stack.push(peer);
                    }
                }
            }
            largest = largest.max(size);
        }
        if components > 1 {
            out.push(Diagnostic::new(
                Code::DisconnectedCommGraph,
                format!(
                    "communication graph splits into {components} components \
                     (largest {largest} of {} active qubits); the sub-circuits \
                     never interact and could compile independently",
                    active.len()
                ),
            ));
        }
    }

    // W004 — degree hotspots: a qubit whose weighted communication
    // degree is far above the mean concentrates braid traffic around
    // one tile. Threshold: ≥ 3× the active mean, minimum degree 4, and
    // enough active qubits for "mean" to mean anything.
    if active.len() >= 4 {
        let total: u64 = active.iter().map(|&q| u64::from(comm.weighted_degree(q))).sum();
        #[allow(clippy::cast_precision_loss)]
        let mean = total as f64 / active.len() as f64;
        let hot: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&q| {
                let d = f64::from(comm.weighted_degree(q));
                d >= 4.0 && d >= 3.0 * mean
            })
            .collect();
        if !hot.is_empty() {
            let worst = hot
                .iter()
                .copied()
                .max_by_key(|&q| comm.weighted_degree(q))
                .expect("non-empty hotspot list");
            out.push(Diagnostic::new(
                Code::DegreeHotspot,
                format!(
                    "{} qubit(s) have outlier communication degree \
                     (worst: qubit {worst} at {}, mean {mean:.1}); expect router \
                     congestion around their tiles",
                    hot.len(),
                    comm.weighted_degree(worst),
                ),
            ));
        }
    }

    out
}

/// Parses QASM source and lints the result.
///
/// A lexer or parser failure becomes a single `E010` diagnostic whose
/// span carries the error's 1-based line/column (column 0 when only
/// the line is known), and no circuit is returned. On success the
/// circuit-level lints run (without a chip — pair with
/// [`lint_circuit`] directly when one is in hand).
#[must_use]
pub fn lint_qasm(src: &str) -> (Option<Circuit>, Vec<Diagnostic>) {
    match qasm::parse(src) {
        Ok(circuit) => {
            let diags = lint_circuit(&circuit, None);
            (Some(circuit), diags)
        }
        Err(err) => {
            let diag = Diagnostic::new(Code::QasmParse, err.message())
                .with_span(Span { line: err.line(), col: err.col() });
            (None, vec![diag])
        }
    }
}

fn fmt_list(items: &[usize]) -> String {
    const SHOWN: usize = 8;
    let mut s = items.iter().take(SHOWN).map(ToString::to_string).collect::<Vec<_>>().join(", ");
    if items.len() > SHOWN {
        s.push_str(&format!(", … ({} more)", items.len() - SHOWN));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::CodeModel;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn raw_gate_list_out_of_range_is_e011() {
        let diags = lint_gates(3, &[(0, 1), (2, 5), (7, 0)]);
        assert_eq!(codes(&diags), ["E011", "E011"]);
        assert!(diags[0].message.contains("qubit 5"));
        assert!(has_errors(&diags));
        assert!(lint_gates(3, &[(0, 1), (1, 2)]).is_empty());
    }

    #[test]
    fn unused_qubits_warn() {
        let mut c = Circuit::new(5);
        c.cnot(0, 1);
        c.h(2);
        let diags = lint_circuit(&c, None);
        assert!(codes(&diags).contains(&"W001"));
        let w = diags.iter().find(|d| d.code == Code::UnusedQubit).unwrap();
        assert!(w.message.contains("3, 4"));
        assert!(!has_errors(&diags));
    }

    #[test]
    fn self_cancelling_pair_detected() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(0, 1);
        let diags = lint_circuit(&c, None);
        assert!(codes(&diags).contains(&"W002"));
    }

    #[test]
    fn intervening_op_suppresses_cancellation() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.h(1);
        c.cnot(0, 1);
        assert!(!codes(&lint_circuit(&c, None)).contains(&"W002"));
        // A barrier also blocks the pairing.
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.barrier();
        c.cnot(0, 1);
        assert!(!codes(&lint_circuit(&c, None)).contains(&"W002"));
        // Reversed orientation is not self-cancelling.
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(1, 0);
        assert!(!codes(&lint_circuit(&c, None)).contains(&"W002"));
    }

    #[test]
    fn disconnected_comm_graph_warns() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let diags = lint_circuit(&c, None);
        let w = diags.iter().find(|d| d.code == Code::DisconnectedCommGraph).unwrap();
        assert!(w.message.contains("2 components"));
        // Bridge the halves: no warning.
        c.cnot(1, 2);
        assert!(!codes(&lint_circuit(&c, None)).contains(&"W003"));
    }

    #[test]
    fn degree_hotspot_flags_star_center() {
        // A star: qubit 0 talks to everyone, everyone else only to 0.
        let mut c = Circuit::new(9);
        for q in 1..9 {
            c.cnot(0, q);
        }
        let diags = lint_circuit(&c, None);
        let w = diags.iter().find(|d| d.code == Code::DegreeHotspot).unwrap();
        assert!(w.message.contains("qubit 0"));
        // A ring is perfectly balanced: no hotspot.
        let mut ring = Circuit::new(8);
        for q in 0..8 {
            ring.cnot(q, (q + 1) % 8);
        }
        assert!(!codes(&lint_circuit(&ring, None)).contains(&"W004"));
    }

    #[test]
    fn width_exceeds_chip_is_an_error() {
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 4, 1).unwrap();
        let live = chip.live_tiles();
        let too_wide = Circuit::new(live + 1);
        let diags = lint_circuit(&too_wide, Some(&chip));
        assert!(codes(&diags).contains(&"E012"));
        assert!(has_errors(&diags));
        let fits = Circuit::new(live);
        assert!(!codes(&lint_circuit(&fits, Some(&chip))).contains(&"E012"));
    }

    #[test]
    fn qasm_parse_error_becomes_e010_with_span() {
        let (circuit, diags) = lint_qasm("OPENQASM 2.0;\nqreg q[2];\nh   q[9];\n");
        assert!(circuit.is_none());
        assert_eq!(codes(&diags), ["E010"]);
        let span = diags[0].span.expect("parse errors carry spans");
        assert_eq!(span.line, 3);
        assert_eq!(span.col, 7);
        assert!(has_errors(&diags));
    }

    #[test]
    fn qasm_success_runs_circuit_lints() {
        let (circuit, diags) = lint_qasm("OPENQASM 2.0;\nqreg q[3];\nh q[0];\ncx q[0], q[1];\n");
        assert_eq!(circuit.unwrap().qubits(), 3);
        assert!(codes(&diags).contains(&"W001")); // q[2] unused
        assert!(!has_errors(&diags));
    }
}
