//! Deterministic fault injection and fault-tolerance policy for the ECMAS
//! compile service.
//!
//! The service's north star is "surviving production traffic": worker panics,
//! transient stage failures, overload, and poisoned cache entries must not
//! lose jobs or change compile results. This crate provides the *policy*
//! half of that story, with no dependency on the service itself:
//!
//! - [`FaultPlan`]: a seeded, purely functional fault schedule. Given a
//!   [`FaultSite`] (a structural description of where execution currently
//!   is — queue admission, a cache lookup, a stage boundary, a worker
//!   pickup), `decide` returns the fault to inject there, if any. The
//!   decision is a splitmix64 hash of the seed and the site, so a plan is
//!   reproducible across runs, worker counts, and interleavings — the same
//!   property the compiler itself guarantees for its outputs.
//! - [`RetryPolicy`]: bounded retries with exponential backoff and
//!   deterministic seeded jitter, plus a service-wide retry budget so a
//!   correlated failure burst cannot amplify load.
//! - [`FaultCounters`]: cheap atomic counters for observability (`stats`).
//!
//! With `FaultConfig::percent == 0` the plan is never constructed and the
//! service's hook sites reduce to an `Option` check that branches on `None`;
//! the bench row `service/stress_100_jobs_faults_off` pins that overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// splitmix64: the same tiny deterministic mixer `StressWorkload` uses for
/// per-job defect seeds. Public so tests and the service can derive
/// reproducible sub-seeds without pulling in a RNG crate.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Configuration for fault injection. `percent == 0` disables injection
/// entirely (the service then skips constructing a [`FaultPlan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Probability, in percent (0..=100), that any given fault site fires.
    pub percent: u8,
    /// Seed for the deterministic fault schedule.
    pub seed: u64,
    /// Upper bound on injected artificial latency, in milliseconds.
    pub latency_cap_ms: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig { percent: 0, seed: 0, latency_cap_ms: 20 }
    }
}

impl FaultConfig {
    /// A convenience constructor for chaos harnesses.
    pub fn chaos(percent: u8, seed: u64) -> Self {
        FaultConfig { percent, seed, ..FaultConfig::default() }
    }

    /// Whether this configuration injects anything at all.
    pub fn enabled(&self) -> bool {
        self.percent > 0
    }
}

/// A structural description of a point in the service where a fault may be
/// injected. The fields are everything that identifies the point *logically*
/// (job, attempt, stage index) — never wall-clock or thread identity — so a
/// plan's decisions are stable across interleavings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A job is being admitted to the queue. Only latency may be injected
    /// here: a spurious rejection would lose the job from the caller's
    /// perspective, which the chaos acceptance run forbids.
    Admission { job: u64 },
    /// A cache lookup is about to run for `job` on `attempt`. The only
    /// fault here is poisoning: the resident entry for the key is dropped
    /// so the attempt recompiles (and must still be bit-identical).
    CacheLookup { job: u64, attempt: u32 },
    /// A stage boundary inside the compile pipeline (0 = profile, 1 = map,
    /// 2 = schedule). Spurious errors, panics, and latency may fire here.
    Stage { job: u64, attempt: u32, stage: u8 },
    /// A worker thread has just picked `job` up from the queue; `delivery`
    /// counts how many times the job has been handed to a worker. Panics
    /// injected here exercise supervision: the job is requeued and the
    /// worker thread dies and must be respawned. Keying on `delivery`
    /// guarantees a requeued job is not re-killed forever.
    WorkerPickup { job: u64, delivery: u32 },
}

impl FaultSite {
    /// Collapse the site to a stable 64-bit key. Discriminant constants are
    /// arbitrary odd numbers; what matters is that distinct sites hash to
    /// distinct keys and the mapping never changes across runs.
    fn key(&self) -> u64 {
        match *self {
            FaultSite::Admission { job } => splitmix64(job ^ 0x41d3_a3c1),
            FaultSite::CacheLookup { job, attempt } => {
                splitmix64(splitmix64(job ^ 0xc4c3_e001) ^ u64::from(attempt))
            }
            FaultSite::Stage { job, attempt, stage } => splitmix64(
                splitmix64(splitmix64(job ^ 0x57a6_e003) ^ u64::from(attempt)) ^ u64::from(stage),
            ),
            FaultSite::WorkerPickup { job, delivery } => {
                splitmix64(splitmix64(job ^ 0x3042_b005) ^ u64::from(delivery))
            }
        }
    }

    /// Short label for provenance strings (`CompileReport.last_fault`).
    pub fn label(&self) -> &'static str {
        match self {
            FaultSite::Admission { .. } => "admission",
            FaultSite::CacheLookup { .. } => "cache_lookup",
            FaultSite::Stage { .. } => "stage",
            FaultSite::WorkerPickup { .. } => "worker_pickup",
        }
    }
}

/// A fault to inject at a site. Which kinds can fire where is decided by
/// [`FaultPlan::decide`]; see [`FaultSite`] for the per-site restrictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Fail the current attempt with a transient, retryable error.
    SpuriousError,
    /// Panic on the current thread (contained by the worker's
    /// `catch_unwind` or, at `WorkerPickup`, by the supervisor).
    Panic,
    /// Sleep for the given duration before continuing normally.
    Latency(Duration),
    /// Drop the resident cache entry for the job's key before lookup.
    PoisonCache,
}

/// Atomic counters describing what a [`FaultPlan`] actually injected.
#[derive(Debug, Default)]
pub struct FaultCounters {
    pub spurious_errors: AtomicU64,
    pub panics: AtomicU64,
    pub latencies: AtomicU64,
    pub poisoned: AtomicU64,
}

/// A point-in-time snapshot of [`FaultCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultSnapshot {
    pub spurious_errors: u64,
    pub panics: u64,
    pub latencies: u64,
    pub poisoned: u64,
}

impl FaultSnapshot {
    pub fn total(&self) -> u64 {
        self.spurious_errors + self.panics + self.latencies + self.poisoned
    }
}

/// A seeded, deterministic fault schedule.
///
/// `decide` is a pure function of `(config.seed, site)`: the same plan asked
/// about the same site always answers the same way, regardless of thread
/// timing. Counters are only bumped by [`FaultPlan::record`], which the
/// service calls at the moment it actually executes the fault.
#[derive(Debug)]
pub struct FaultPlan {
    config: FaultConfig,
    counters: FaultCounters,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config, counters: FaultCounters::default() }
    }

    pub fn config(&self) -> FaultConfig {
        self.config
    }

    /// Decide whether a fault fires at `site`, and which one. Does not
    /// touch the counters; callers that act on the returned fault must
    /// pair the action with [`FaultPlan::record`].
    pub fn decide(&self, site: FaultSite) -> Option<Fault> {
        if self.config.percent == 0 {
            return None;
        }
        let h = splitmix64(self.config.seed ^ site.key());
        // Fire check: uniform in 0..100 from the low bits.
        if (h % 100) >= u64::from(self.config.percent.min(100)) {
            return None;
        }
        // Kind selection from independent bits of the hash.
        let kind = (h >> 32) & 0x3;
        let latency = || {
            let cap = self.config.latency_cap_ms.max(1);
            Fault::Latency(Duration::from_millis((h >> 16) % cap + 1))
        };
        Some(match site {
            FaultSite::Admission { .. } => latency(),
            FaultSite::CacheLookup { .. } => Fault::PoisonCache,
            FaultSite::WorkerPickup { .. } => Fault::Panic,
            FaultSite::Stage { .. } => match kind {
                0 | 1 => Fault::SpuriousError,
                2 => Fault::Panic,
                _ => latency(),
            },
        })
    }

    /// Record that `fault` was actually executed.
    pub fn record(&self, fault: Fault) {
        let counter = match fault {
            Fault::SpuriousError => &self.counters.spurious_errors,
            Fault::Panic => &self.counters.panics,
            Fault::Latency(_) => &self.counters.latencies,
            Fault::PoisonCache => &self.counters.poisoned,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> FaultSnapshot {
        FaultSnapshot {
            spurious_errors: self.counters.spurious_errors.load(Ordering::Relaxed),
            panics: self.counters.panics.load(Ordering::Relaxed),
            latencies: self.counters.latencies.load(Ordering::Relaxed),
            poisoned: self.counters.poisoned.load(Ordering::Relaxed),
        }
    }
}

/// Retry configuration for transiently-failed jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Total attempts per job, including the first (1 = no retries).
    pub max_attempts: u32,
    /// Base backoff before the first retry, in milliseconds.
    pub backoff_base_ms: u64,
    /// Cap on any single backoff sleep, in milliseconds.
    pub backoff_cap_ms: u64,
    /// Service-wide budget of retries; once exhausted, transient failures
    /// become terminal. Guards against retry storms under correlated
    /// failure.
    pub budget: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { max_attempts: 3, backoff_base_ms: 2, backoff_cap_ms: 50, budget: 1024 }
    }
}

/// Runtime retry state: the config plus the consumable budget.
#[derive(Debug)]
pub struct RetryPolicy {
    config: RetryConfig,
    spent: AtomicU64,
}

impl RetryPolicy {
    pub fn new(config: RetryConfig) -> Self {
        RetryPolicy { config, spent: AtomicU64::new(0) }
    }

    pub fn config(&self) -> RetryConfig {
        self.config
    }

    /// Number of budget tokens consumed so far.
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Whether a job that has completed `attempt` attempts (1-based) and
    /// failed transiently should retry. Consumes one budget token on `true`.
    pub fn try_retry(&self, attempt: u32) -> bool {
        if attempt >= self.config.max_attempts {
            return false;
        }
        // Claim a token; back out if the budget is exhausted.
        let prev = self.spent.fetch_add(1, Ordering::Relaxed);
        if prev >= self.config.budget {
            self.spent.fetch_sub(1, Ordering::Relaxed);
            return false;
        }
        true
    }

    /// Backoff before retrying `job`'s attempt number `attempt` (1-based:
    /// the attempt that just failed). Exponential in the attempt number,
    /// with deterministic jitter derived from `(seed, job, attempt)` so a
    /// rerun of the same chaos workload sleeps identically.
    pub fn backoff(&self, seed: u64, job: u64, attempt: u32) -> Duration {
        let exp = self
            .config
            .backoff_base_ms
            .saturating_mul(1u64 << attempt.min(20))
            .min(self.config.backoff_cap_ms)
            .max(1);
        let h = splitmix64(splitmix64(seed ^ job) ^ u64::from(attempt) ^ 0x5e77_12a9);
        let half = exp / 2;
        Duration::from_millis(half + h % (exp - half + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::new(FaultConfig::default());
        for job in 0..1000 {
            for stage in 0..3u8 {
                assert_eq!(plan.decide(FaultSite::Stage { job, attempt: 1, stage }), None);
            }
        }
        assert_eq!(plan.snapshot().total(), 0);
    }

    #[test]
    fn decisions_are_deterministic() {
        let a = FaultPlan::new(FaultConfig::chaos(10, 42));
        let b = FaultPlan::new(FaultConfig::chaos(10, 42));
        for job in 0..500 {
            for attempt in 1..3u32 {
                for stage in 0..3u8 {
                    let site = FaultSite::Stage { job, attempt, stage };
                    assert_eq!(a.decide(site), b.decide(site));
                }
            }
            let site = FaultSite::WorkerPickup { job, delivery: 0 };
            assert_eq!(a.decide(site), b.decide(site));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig::chaos(50, 1));
        let b = FaultPlan::new(FaultConfig::chaos(50, 2));
        let mut differs = false;
        for job in 0..200 {
            let site = FaultSite::Stage { job, attempt: 1, stage: 0 };
            if a.decide(site) != b.decide(site) {
                differs = true;
                break;
            }
        }
        assert!(differs, "seeds 1 and 2 produced identical plans");
    }

    #[test]
    fn fire_rate_tracks_percent() {
        let plan = FaultPlan::new(FaultConfig::chaos(10, 7));
        let mut fired = 0usize;
        let total = 10_000;
        for job in 0..total {
            if plan.decide(FaultSite::Stage { job, attempt: 1, stage: 1 }).is_some() {
                fired += 1;
            }
        }
        let rate = fired as f64 / total as f64;
        assert!((0.07..=0.13).contains(&rate), "10% plan fired at rate {rate}");
    }

    #[test]
    fn site_kind_restrictions_hold() {
        let plan = FaultPlan::new(FaultConfig::chaos(100, 3));
        for job in 0..200 {
            match plan.decide(FaultSite::Admission { job }) {
                Some(Fault::Latency(d)) => {
                    assert!(d.as_millis() >= 1);
                    assert!(d.as_millis() <= 20);
                }
                other => panic!("admission produced {other:?}"),
            }
            assert_eq!(
                plan.decide(FaultSite::CacheLookup { job, attempt: 1 }),
                Some(Fault::PoisonCache)
            );
            assert_eq!(
                plan.decide(FaultSite::WorkerPickup { job, delivery: 0 }),
                Some(Fault::Panic)
            );
            match plan.decide(FaultSite::Stage { job, attempt: 1, stage: 2 }) {
                Some(Fault::SpuriousError | Fault::Panic | Fault::Latency(_)) => {}
                other => panic!("stage produced {other:?}"),
            }
        }
    }

    #[test]
    fn requeued_delivery_escapes_pickup_panic() {
        // The whole point of keying WorkerPickup on `delivery`: a job whose
        // first delivery is killed must eventually be delivered cleanly.
        let plan = FaultPlan::new(FaultConfig::chaos(30, 11));
        for job in 0..200u64 {
            let survives = (0..8u32)
                .any(|delivery| plan.decide(FaultSite::WorkerPickup { job, delivery }).is_none());
            assert!(survives, "job {job} killed on every delivery");
        }
    }

    #[test]
    fn counters_record_executions() {
        let plan = FaultPlan::new(FaultConfig::chaos(100, 5));
        plan.record(Fault::SpuriousError);
        plan.record(Fault::SpuriousError);
        plan.record(Fault::Panic);
        plan.record(Fault::Latency(Duration::from_millis(1)));
        plan.record(Fault::PoisonCache);
        let snap = plan.snapshot();
        assert_eq!(snap.spurious_errors, 2);
        assert_eq!(snap.panics, 1);
        assert_eq!(snap.latencies, 1);
        assert_eq!(snap.poisoned, 1);
        assert_eq!(snap.total(), 5);
    }

    #[test]
    fn retry_respects_max_attempts() {
        let policy = RetryPolicy::new(RetryConfig { max_attempts: 3, ..RetryConfig::default() });
        assert!(policy.try_retry(1));
        assert!(policy.try_retry(2));
        assert!(!policy.try_retry(3));
        assert_eq!(policy.spent(), 2);
    }

    #[test]
    fn retry_budget_exhausts() {
        let policy =
            RetryPolicy::new(RetryConfig { max_attempts: 10, budget: 3, ..RetryConfig::default() });
        assert!(policy.try_retry(1));
        assert!(policy.try_retry(1));
        assert!(policy.try_retry(1));
        assert!(!policy.try_retry(1));
        assert_eq!(policy.spent(), 3);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy::new(RetryConfig::default());
        for job in 0..100u64 {
            for attempt in 1..4u32 {
                let a = policy.backoff(9, job, attempt);
                let b = policy.backoff(9, job, attempt);
                assert_eq!(a, b);
                assert!(a.as_millis() >= 1);
                assert!(a.as_millis() <= 50);
            }
        }
        // Exponential growth: cap aside, later attempts sleep at least as
        // long in expectation; check the halved lower bound directly.
        let early = policy.backoff(9, 1, 1);
        assert!(early.as_millis() <= 4, "attempt-1 backoff {early:?}");
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin two values so the hash can never silently change: fault
        // plans and defect seeds both depend on it.
        assert_eq!(splitmix64(0), 0xe220_a839_7b1d_cdaf);
        assert_eq!(splitmix64(1), 0x910a_2dec_8902_5cc1);
    }
}
