//! The compile cache proper: lookup/insert over the byte-budgeted LRU
//! plus in-flight request coalescing.
//!
//! # Coalescing protocol
//!
//! [`CompileCache::begin`] is the single entry point for full results:
//!
//! * cached → [`Begin::Hit`] with the shared outcome;
//! * nobody compiling this key → [`Begin::Lead`]: the caller compiles and
//!   must resolve its [`LeadGuard`] via `complete` or `fail`;
//! * someone already compiling → [`Begin::Follow`]: the caller parks on
//!   [`FollowGuard::poll`], which bounds each wait so the service layer
//!   can interleave its own deadline/cancel checkpoints.
//!
//! Dropping a `LeadGuard` unresolved (worker panic, early return) marks
//! the flight abandoned and wakes every follower, whose next `poll`
//! reports [`FollowStatus::Abandoned`] — the follower then compiles
//! itself rather than hanging on a corpse. Failures are shared: a
//! `CompileError` is `Clone`, so every coalesced waiter gets the same
//! error the leader saw without re-running a doomed compile.
//!
//! Counter semantics are exact, not sampled: a burst of N identical
//! concurrent requests records 1 miss and N−1 coalesced waits; once the
//! result is resident, later requests record hits.

use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use ecmas_core::error::CompileError;
use ecmas_core::session::{CacheInfo, CacheSource, CompileOutcome, MapArtifact, ProfileArtifact};

use crate::key::CompileKey;
use crate::lru::Lru;

/// Compile-cache sizing and feature knobs.
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Estimated-byte budget for resident entries (full results and stage
    /// artifacts share it). The resident total never exceeds this.
    pub byte_budget: u64,
    /// Whether to store and serve stage artifacts (profile/map) in
    /// addition to full results.
    pub stage_artifacts: bool,
}

impl Default for CacheConfig {
    /// 64 MiB with stage artifacts on — the `ecmasd` daemon default.
    fn default() -> Self {
        CacheConfig { byte_budget: 64 * 1024 * 1024, stage_artifacts: true }
    }
}

/// A point-in-time snapshot of the cache-wide counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Full-result hits (excluding coalesced waits).
    pub hits: u64,
    /// Full-result misses (each started one real compile).
    pub misses: u64,
    /// Stage-artifact (profile/map) reuses.
    pub stage_hits: u64,
    /// Entries evicted by the byte budget.
    pub evictions: u64,
    /// Estimated bytes currently resident.
    pub resident_bytes: u64,
    /// Requests that waited on an identical in-flight compile.
    pub coalesced_waits: u64,
    /// Entries currently resident (full results + stage artifacts).
    pub entries: usize,
}

enum Value {
    Full(Arc<CompileOutcome>),
    Profile(Arc<ProfileArtifact>),
    Map(Arc<MapArtifact>),
}

enum FlightState {
    Running,
    Done(Result<Arc<CompileOutcome>, CompileError>),
    Abandoned,
}

struct Flight {
    state: Mutex<FlightState>,
    wake: Condvar,
}

struct Inner {
    lru: Lru<Value>,
    inflight: HashMap<CompileKey, Arc<Flight>>,
    hits: u64,
    misses: u64,
    stage_hits: u64,
    coalesced_waits: u64,
}

/// The content-addressed compile cache (see the [crate docs](crate)).
///
/// All methods take `&self`; the cache is shared across service workers
/// behind an `Arc`.
pub struct CompileCache {
    config: CacheConfig,
    inner: Mutex<Inner>,
}

/// What [`CompileCache::begin`] resolved a key to.
pub enum Begin {
    /// Already cached: the shared finished outcome.
    Hit(Arc<CompileOutcome>),
    /// Nobody is compiling this key: the caller is now the leader and
    /// must resolve the guard.
    Lead(LeadGuard),
    /// An identical compile is in flight: park on the guard.
    Follow(FollowGuard),
}

/// The leader's obligation for one in-flight key: exactly one of
/// [`complete`](Self::complete) / [`fail`](Self::fail), or a drop that
/// abandons the flight and wakes the followers.
pub struct LeadGuard {
    cache: Arc<CompileCache>,
    key: CompileKey,
    flight: Arc<Flight>,
    resolved: bool,
}

/// A follower's handle on an in-flight compile.
pub struct FollowGuard {
    flight: Arc<Flight>,
}

/// One bounded wait on an in-flight compile.
pub enum FollowStatus {
    /// The leader finished: its (shared) result or its (shared) error.
    Ready(Result<Arc<CompileOutcome>, CompileError>),
    /// The leader vanished without resolving; compile it yourself.
    Abandoned,
    /// Still compiling when the timeout elapsed; checkpoint and re-poll.
    Pending,
}

impl CompileCache {
    /// Creates a cache behind an `Arc` (guards hold a back-reference).
    #[must_use]
    pub fn new(config: CacheConfig) -> Arc<Self> {
        Arc::new(CompileCache {
            config,
            inner: Mutex::new(Inner {
                lru: Lru::new(config.byte_budget),
                inflight: HashMap::new(),
                hits: 0,
                misses: 0,
                stage_hits: 0,
                coalesced_waits: 0,
            }),
        })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Resolves a full-result key: hit, lead, or follow (see the
    /// [crate docs](crate)).
    #[must_use]
    pub fn begin(self: &Arc<Self>, key: CompileKey) -> Begin {
        let mut inner = self.lock();
        if let Some(Value::Full(outcome)) = inner.lru.get(&key) {
            let outcome = Arc::clone(outcome);
            inner.hits += 1;
            return Begin::Hit(outcome);
        }
        if let Some(flight) = inner.inflight.get(&key) {
            let flight = Arc::clone(flight);
            inner.coalesced_waits += 1;
            return Begin::Follow(FollowGuard { flight });
        }
        let flight =
            Arc::new(Flight { state: Mutex::new(FlightState::Running), wake: Condvar::new() });
        inner.inflight.insert(key, Arc::clone(&flight));
        inner.misses += 1;
        Begin::Lead(LeadGuard { cache: Arc::clone(self), key, flight, resolved: false })
    }

    /// A cached profile artifact, if stage artifacts are enabled.
    #[must_use]
    pub fn get_profile(&self, key: CompileKey) -> Option<Arc<ProfileArtifact>> {
        if !self.config.stage_artifacts {
            return None;
        }
        let mut inner = self.lock();
        if let Some(Value::Profile(artifact)) = inner.lru.get(&key) {
            let artifact = Arc::clone(artifact);
            inner.stage_hits += 1;
            return Some(artifact);
        }
        None
    }

    /// Stores a profile artifact (no-op when stage artifacts are off).
    pub fn put_profile(&self, key: CompileKey, artifact: Arc<ProfileArtifact>) {
        if self.config.stage_artifacts {
            let cost = artifact.estimated_bytes();
            self.lock().lru.insert(key, Value::Profile(artifact), cost);
        }
    }

    /// A cached map artifact, if stage artifacts are enabled.
    #[must_use]
    pub fn get_map(&self, key: CompileKey) -> Option<Arc<MapArtifact>> {
        if !self.config.stage_artifacts {
            return None;
        }
        let mut inner = self.lock();
        if let Some(Value::Map(artifact)) = inner.lru.get(&key) {
            let artifact = Arc::clone(artifact);
            inner.stage_hits += 1;
            return Some(artifact);
        }
        None
    }

    /// Stores a map artifact (no-op when stage artifacts are off).
    pub fn put_map(&self, key: CompileKey, artifact: Arc<MapArtifact>) {
        if self.config.stage_artifacts {
            let cost = artifact.estimated_bytes();
            self.lock().lru.insert(key, Value::Map(artifact), cost);
        }
    }

    /// Chaos hook: drops the resident entry for `key`, if any. In-flight
    /// coalescing is untouched — followers of a live leader keep their
    /// flight and the leader's `complete` republishes the entry. The
    /// service's fault-injection layer uses this to force a recompile
    /// that must reproduce the poisoned entry bit-for-bit; it is also a
    /// correct (if blunt) invalidation primitive. Returns whether an
    /// entry was dropped.
    pub fn poison(&self, key: CompileKey) -> bool {
        self.lock().lru.remove(&key)
    }

    /// A point-in-time snapshot of the counters.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            stage_hits: inner.stage_hits,
            evictions: inner.lru.evictions(),
            resident_bytes: inner.lru.resident_bytes(),
            coalesced_waits: inner.coalesced_waits,
            entries: inner.lru.len(),
        }
    }

    /// The counters as the [`CacheInfo`] stamped onto a report produced
    /// with the given `source`.
    #[must_use]
    pub fn info(&self, source: CacheSource) -> CacheInfo {
        let stats = self.stats();
        CacheInfo {
            source,
            hits: stats.hits,
            misses: stats.misses,
            stage_hits: stats.stage_hits,
            evictions: stats.evictions,
            resident_bytes: stats.resident_bytes,
            coalesced_waits: stats.coalesced_waits,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panic while holding the cache lock abandons its flight via
        // the LeadGuard drop, which needs the lock again — so poisoning
        // is cleared rather than propagated; the protected state is
        // counters and maps, all valid at every await point.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// Estimated resident cost of a finished outcome: the event stream
/// (with every path cell), the mapping, and the report.
#[must_use]
pub fn estimate_outcome_bytes(outcome: &CompileOutcome) -> u64 {
    let events = outcome.encoded.events();
    let path_cells: usize =
        events.iter().map(|e| e.kind.path().map_or(0, |p| p.cells().len())).sum();
    let fixed = 512u64;
    fixed
        + 72 * events.len() as u64
        + 8 * path_cells as u64
        + 8 * outcome.encoded.mapping().len() as u64
}

impl LeadGuard {
    /// Publishes the leader's finished outcome: inserts it into the LRU,
    /// retires the flight, wakes every follower, and returns the shared
    /// outcome (so the leader itself serves the same allocation).
    #[must_use]
    pub fn complete(mut self, outcome: CompileOutcome) -> Arc<CompileOutcome> {
        let shared = Arc::new(outcome);
        let cost = estimate_outcome_bytes(&shared);
        {
            let mut inner = self.cache.lock();
            inner.lru.insert(self.key, Value::Full(Arc::clone(&shared)), cost);
            inner.inflight.remove(&self.key);
        }
        self.resolve(FlightState::Done(Ok(Arc::clone(&shared))));
        shared
    }

    /// Publishes the leader's failure to every follower (errors are
    /// `Clone`, so nobody re-runs the doomed compile) without caching it.
    pub fn fail(mut self, error: CompileError) {
        self.cache.lock().inflight.remove(&self.key);
        self.resolve(FlightState::Done(Err(error)));
    }

    fn resolve(&mut self, state: FlightState) {
        self.resolved = true;
        *self.flight.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = state;
        self.flight.wake.notify_all();
    }
}

impl Drop for LeadGuard {
    fn drop(&mut self) {
        if !self.resolved {
            self.cache.lock().inflight.remove(&self.key);
            self.resolve(FlightState::Abandoned);
        }
    }
}

impl FollowGuard {
    /// Waits up to `timeout` for the leader. [`FollowStatus::Pending`]
    /// means the timeout elapsed first — run a cancellation/deadline
    /// checkpoint and poll again.
    #[must_use]
    pub fn poll(&self, timeout: Duration) -> FollowStatus {
        let state = self.flight.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let (state, _timed_out) = self
            .flight
            .wake
            .wait_timeout_while(state, timeout, |s| matches!(s, FlightState::Running))
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match &*state {
            FlightState::Running => FollowStatus::Pending,
            FlightState::Done(result) => FollowStatus::Ready(result.clone()),
            FlightState::Abandoned => FollowStatus::Abandoned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;
    use std::thread;

    use ecmas_chip::{Chip, CodeModel};
    use ecmas_circuit::Circuit;
    use ecmas_core::compiler::{Ecmas, EcmasConfig};
    use ecmas_core::session::Compiler;

    use crate::key::full_key;

    fn outcome() -> (CompileOutcome, CompileKey) {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 4, 3).unwrap();
        let cfg = EcmasConfig::default();
        let out = Ecmas::new(cfg).compile_outcome(&c, &chip).unwrap();
        (out, full_key(&c, &chip, &cfg, "limited"))
    }

    #[test]
    fn miss_then_hit_shares_one_allocation() {
        let cache = CompileCache::new(CacheConfig::default());
        let (out, key) = outcome();
        let lead = match cache.begin(key) {
            Begin::Lead(lead) => lead,
            _ => panic!("empty cache must lead"),
        };
        let shared = lead.complete(out);
        match cache.begin(key) {
            Begin::Hit(hit) => assert!(Arc::ptr_eq(&hit, &shared)),
            _ => panic!("second begin must hit"),
        }
        let stats = cache.stats();
        assert_eq!((stats.misses, stats.hits), (1, 1));
        assert!(stats.resident_bytes > 0);
    }

    #[test]
    fn concurrent_identical_requests_coalesce() {
        let cache = CompileCache::new(CacheConfig::default());
        let (out, key) = outcome();
        let lead = match cache.begin(key) {
            Begin::Lead(lead) => lead,
            _ => panic!("first begin must lead"),
        };
        const FOLLOWERS: usize = 4;
        let start = Arc::new(Barrier::new(FOLLOWERS + 1));
        let results = thread::scope(|s| {
            let handles: Vec<_> = (0..FOLLOWERS)
                .map(|_| {
                    let cache = Arc::clone(&cache);
                    let start = Arc::clone(&start);
                    s.spawn(move || {
                        let follow = match cache.begin(key) {
                            Begin::Follow(f) => f,
                            _ => panic!("in-flight key must coalesce"),
                        };
                        start.wait();
                        loop {
                            match follow.poll(Duration::from_millis(50)) {
                                FollowStatus::Ready(result) => return result.unwrap(),
                                FollowStatus::Pending => {}
                                FollowStatus::Abandoned => panic!("leader abandoned"),
                            }
                        }
                    })
                })
                .collect();
            start.wait();
            let shared = lead.complete(out);
            let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            (shared, results)
        });
        let (shared, followed) = results;
        for r in &followed {
            assert!(Arc::ptr_eq(r, &shared), "followers share the leader's allocation");
        }
        let stats = cache.stats();
        assert_eq!(stats.misses, 1, "one burst, one compile");
        assert_eq!(stats.coalesced_waits, FOLLOWERS as u64);
    }

    #[test]
    fn abandoned_lead_wakes_followers() {
        let cache = CompileCache::new(CacheConfig::default());
        let (_, key) = outcome();
        let lead = match cache.begin(key) {
            Begin::Lead(lead) => lead,
            _ => panic!(),
        };
        let follow = match cache.begin(key) {
            Begin::Follow(f) => f,
            _ => panic!(),
        };
        drop(lead);
        match follow.poll(Duration::from_secs(5)) {
            FollowStatus::Abandoned => {}
            _ => panic!("drop without resolve must abandon"),
        }
        // The key is free again: a new begin leads.
        assert!(matches!(cache.begin(key), Begin::Lead(_)));
    }

    #[test]
    fn failures_are_shared_not_cached() {
        let cache = CompileCache::new(CacheConfig::default());
        let (_, key) = outcome();
        let lead = match cache.begin(key) {
            Begin::Lead(lead) => lead,
            _ => panic!(),
        };
        let follow = match cache.begin(key) {
            Begin::Follow(f) => f,
            _ => panic!(),
        };
        lead.fail(CompileError::TooManyQubits { qubits: 9, slots: 4 });
        match follow.poll(Duration::from_secs(5)) {
            FollowStatus::Ready(Err(CompileError::TooManyQubits { qubits: 9, slots: 4 })) => {}
            _ => panic!("follower must see the shared error"),
        }
        assert!(matches!(cache.begin(key), Begin::Lead(_)), "errors are not cached");
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn stage_artifacts_can_be_disabled() {
        let cache =
            CompileCache::new(CacheConfig { stage_artifacts: false, ..CacheConfig::default() });
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 2, 3).unwrap();
        let profiled = Ecmas::default().session(&c, &chip).unwrap();
        let key = crate::key::profile_key(&c);
        cache.put_profile(key, Arc::new(profiled.artifact()));
        assert!(cache.get_profile(key).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
