//! Content-addressed cache keys over the platform-stable hash.
//!
//! A [`CompileKey`] is 128 bits: two independent FNV-1a passes (standard
//! and alternative offset basis — see `ecmas_core::stable`) over the same
//! explicitly spelled-out byte stream. A single 64-bit FNV is weak enough
//! that a busy long-lived daemon could plausibly collide; two independent
//! passes push the birthday bound far past any realistic workload, with
//! no new dependency.
//!
//! Three key spaces share the type, separated by a leading kind tag so a
//! profile key can never alias a full-result key:
//!
//! * **full** — (circuit, chip, complete [`EcmasConfig`], schedule mode):
//!   addresses a finished `CompileOutcome`.
//! * **profile** — (circuit only): profiling never reads the chip or
//!   config, so one profile artifact serves every chip and config.
//! * **map** — (circuit, chip, mapping-relevant config knobs): a map
//!   artifact is valid across schedule-only config changes
//!   (`order`, `cut_policy`, `adjust_bandwidth`) but pinned to
//!   `location` and `cut_init`.
//! * **fleet** — (circuit, every candidate chip in insertion order,
//!   complete [`EcmasConfig`], schedule mode): addresses the outcome of
//!   heterogeneous target selection over a [`ChipFleet`]. Candidate
//!   *order* is part of the identity (it breaks cost ties), so two
//!   fleets with the same chips in a different order key differently.
//!
//! Chip identity includes the defect mask (`ecmas_core::stable`'s
//! `write_chip`), so chips differing only in dead tiles or disabled
//! channels never share an entry — while a masked chip with zero
//! defects keys identically to the equivalent uniform chip.

use ecmas_chip::Chip;
use ecmas_circuit::Circuit;
use ecmas_core::compiler::{ChipFleet, EcmasConfig};
use ecmas_core::stable::{
    write_chip, write_circuit, write_config, write_mapping_config, StableHasher, FNV_ALT_BASIS,
};

/// A 128-bit content-addressed cache key (two independent FNV-1a passes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CompileKey(u64, u64);

impl CompileKey {
    /// The two halves, for logging/debugging.
    #[must_use]
    pub fn parts(self) -> (u64, u64) {
        (self.0, self.1)
    }
}

#[cfg(test)]
pub(crate) fn test_key(a: u64, b: u64) -> CompileKey {
    CompileKey(a, b)
}

const KIND_FULL: u8 = 0;
const KIND_PROFILE: u8 = 1;
const KIND_MAP: u8 = 2;
const KIND_FLEET: u8 = 3;

fn derive(write: impl Fn(&mut StableHasher)) -> CompileKey {
    let mut a = StableHasher::new();
    let mut b = StableHasher::with_basis(FNV_ALT_BASIS);
    write(&mut a);
    write(&mut b);
    CompileKey(a.finish(), b.finish())
}

/// The key of a finished compile result. `mode` is the schedule-mode
/// label (`"auto"` / `"limited"` / `"resu"`) — it lives in the serve
/// layer, so it crosses this boundary as its stable string.
#[must_use]
pub fn full_key(circuit: &Circuit, chip: &Chip, config: &EcmasConfig, mode: &str) -> CompileKey {
    derive(|h| {
        h.write_u8(KIND_FULL);
        write_circuit(h, circuit);
        write_chip(h, chip);
        write_config(h, config);
        h.write_str(mode);
    })
}

/// The key of a cached profile artifact: the circuit alone.
#[must_use]
pub fn profile_key(circuit: &Circuit) -> CompileKey {
    derive(|h| {
        h.write_u8(KIND_PROFILE);
        write_circuit(h, circuit);
    })
}

/// The key of a cached map artifact: circuit, chip, and the
/// mapping-relevant config knobs only.
#[must_use]
pub fn map_key(circuit: &Circuit, chip: &Chip, config: &EcmasConfig) -> CompileKey {
    derive(|h| {
        h.write_u8(KIND_MAP);
        write_circuit(h, circuit);
        write_chip(h, chip);
        write_mapping_config(h, config);
    })
}

/// The key of a fleet-selection outcome: the circuit, every candidate
/// chip (full identity, insertion order), the complete config, and the
/// schedule-mode label. Adding, removing, reordering, or editing any
/// candidate — including its defect mask — changes the key, because any
/// of those can change which chip wins selection.
#[must_use]
pub fn fleet_key(
    circuit: &Circuit,
    fleet: &ChipFleet,
    config: &EcmasConfig,
    mode: &str,
) -> CompileKey {
    derive(|h| {
        h.write_u8(KIND_FLEET);
        write_circuit(h, circuit);
        h.write_usize(fleet.len());
        for chip in fleet.chips() {
            write_chip(h, chip);
        }
        write_config(h, config);
        h.write_str(mode);
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_chip::CodeModel;
    use ecmas_core::engine::{CutPolicy, GateOrder};

    fn circuit() -> Circuit {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        c.cnot(1, 2);
        c
    }

    #[test]
    fn key_spaces_do_not_alias() {
        let c = circuit();
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 4, 3).unwrap();
        let cfg = EcmasConfig::default();
        let full = full_key(&c, &chip, &cfg, "auto");
        let profile = profile_key(&c);
        let map = map_key(&c, &chip, &cfg);
        assert_ne!(full, profile);
        assert_ne!(full, map);
        assert_ne!(profile, map);
    }

    #[test]
    fn full_key_sees_every_input() {
        let c = circuit();
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 4, 3).unwrap();
        let cfg = EcmasConfig::default();
        let base = full_key(&c, &chip, &cfg, "auto");

        let mut c2 = circuit();
        c2.cnot(0, 3);
        assert_ne!(base, full_key(&c2, &chip, &cfg, "auto"));

        let wide = Chip::four_x(CodeModel::LatticeSurgery, 4, 3).unwrap();
        assert_ne!(base, full_key(&c, &wide, &cfg, "auto"));

        let cfg2 = EcmasConfig { order: GateOrder::CircuitOrder, ..cfg };
        assert_ne!(base, full_key(&c, &chip, &cfg2, "auto"));

        assert_ne!(base, full_key(&c, &chip, &cfg, "limited"));
    }

    #[test]
    fn map_key_ignores_schedule_only_knobs() {
        let c = circuit();
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 4, 3).unwrap();
        let cfg = EcmasConfig::default();
        let sched_only = EcmasConfig {
            order: GateOrder::CircuitOrder,
            cut_policy: CutPolicy::NeverModify,
            adjust_bandwidth: false,
            ..cfg
        };
        assert_eq!(map_key(&c, &chip, &cfg), map_key(&c, &chip, &sched_only));
        assert_ne!(
            full_key(&c, &chip, &cfg, "limited"),
            full_key(&c, &chip, &sched_only, "limited")
        );
    }

    #[test]
    fn defect_masks_separate_keys_and_empty_masks_do_not() {
        let c = circuit();
        let uniform = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3).unwrap();
        let cfg = EcmasConfig::default();
        let base = full_key(&c, &uniform, &cfg, "auto");

        // A defect-free masked chip is the same hardware: same key.
        let masked_clean = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)
            .unwrap()
            .with_defects(&[])
            .unwrap();
        assert_eq!(base, full_key(&c, &masked_clean, &cfg, "auto"));
        assert_eq!(map_key(&c, &uniform, &cfg), map_key(&c, &masked_clean, &cfg));

        // Distinct defect masks are distinct hardware: distinct keys.
        let dead_a = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)
            .unwrap()
            .with_defects(&[(2, 2)])
            .unwrap();
        let dead_b = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)
            .unwrap()
            .with_defects(&[(2, 1)])
            .unwrap();
        let ka = full_key(&c, &dead_a, &cfg, "auto");
        let kb = full_key(&c, &dead_b, &cfg, "auto");
        assert_ne!(base, ka);
        assert_ne!(base, kb);
        assert_ne!(ka, kb);
        assert_ne!(map_key(&c, &dead_a, &cfg), map_key(&c, &dead_b, &cfg));
    }

    #[test]
    fn fleet_keys_see_membership_order_and_masks() {
        let c = circuit();
        let cfg = EcmasConfig::default();
        let small = Chip::uniform(CodeModel::LatticeSurgery, 2, 2, 1, 3).unwrap();
        let big = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3).unwrap();
        let base = fleet_key(&c, &ChipFleet::new(vec![small.clone(), big.clone()]), &cfg, "auto");

        // Deterministic, and separate from the single-chip key space.
        assert_eq!(
            base,
            fleet_key(&c, &ChipFleet::new(vec![small.clone(), big.clone()]), &cfg, "auto")
        );
        assert_ne!(base, full_key(&c, &small, &cfg, "auto"));

        // Order, membership, and per-candidate defect masks all matter.
        let reordered = ChipFleet::new(vec![big.clone(), small.clone()]);
        assert_ne!(base, fleet_key(&c, &reordered, &cfg, "auto"));
        let shrunk = ChipFleet::new(vec![small.clone()]);
        assert_ne!(base, fleet_key(&c, &shrunk, &cfg, "auto"));
        let masked = ChipFleet::new(vec![small, big.with_defects(&[(0, 0)]).unwrap()]);
        assert_ne!(base, fleet_key(&c, &masked, &cfg, "auto"));
    }

    #[test]
    fn keys_are_deterministic_across_constructions() {
        let c = circuit();
        let chip = Chip::congested(CodeModel::LatticeSurgery, 4, 3).unwrap();
        let cfg = EcmasConfig::default();
        assert_eq!(full_key(&c, &chip, &cfg, "auto"), full_key(&c, &chip, &cfg, "auto"));
    }
}
