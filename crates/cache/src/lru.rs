//! A byte-budgeted LRU store over [`CompileKey`]s.
//!
//! Index-based intrusive doubly-linked list (no `unsafe`, no pointer
//! juggling): a `HashMap` resolves keys to node indices in a `Vec`, the
//! nodes chain prev/next indices, and a free list recycles slots. Every
//! entry carries an estimated byte cost; inserts evict from the cold tail
//! until the new entry fits, so the resident total **never** exceeds the
//! budget — an entry whose own cost exceeds the whole budget is refused
//! outright rather than flushing the cache for one un-keepable value.

use std::collections::HashMap;

use crate::key::CompileKey;

const NIL: usize = usize::MAX;

struct Node<V> {
    key: CompileKey,
    value: V,
    cost: u64,
    prev: usize,
    next: usize,
}

pub(crate) struct Lru<V> {
    map: HashMap<CompileKey, usize>,
    nodes: Vec<Node<V>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    budget: u64,
    resident: u64,
    evictions: u64,
}

impl<V> Lru<V> {
    pub(crate) fn new(budget: u64) -> Self {
        Lru {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            budget,
            resident: 0,
            evictions: 0,
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn resident_bytes(&self) -> u64 {
        self.resident
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key` and, on a hit, marks the entry most-recently used.
    pub(crate) fn get(&mut self, key: &CompileKey) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(&self.nodes[idx].value)
    }

    /// Inserts (or replaces) an entry, evicting cold entries until it
    /// fits. Returns `false` — without touching the store — when `cost`
    /// alone exceeds the whole budget.
    pub(crate) fn insert(&mut self, key: CompileKey, value: V, cost: u64) -> bool {
        if cost > self.budget {
            return false;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.remove_index(idx, false);
        }
        while self.resident + cost > self.budget {
            let tail = self.tail;
            debug_assert_ne!(tail, NIL, "cost fits the budget, so evicting must converge");
            self.remove_index(tail, true);
        }
        let node = Node { key, value, cost, prev: NIL, next: NIL };
        let idx = if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        };
        self.push_front(idx);
        self.map.insert(key, idx);
        self.resident += cost;
        true
    }

    /// Removes `key` outright (not counted as an eviction). Returns
    /// whether an entry was present.
    pub(crate) fn remove(&mut self, key: &CompileKey) -> bool {
        if let Some(&idx) = self.map.get(key) {
            self.remove_index(idx, false);
            true
        } else {
            false
        }
    }

    fn remove_index(&mut self, idx: usize, count_eviction: bool) {
        self.unlink(idx);
        self.map.remove(&self.nodes[idx].key);
        self.resident -= self.nodes[idx].cost;
        self.free.push(idx);
        if count_eviction {
            self.evictions += 1;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev == NIL {
            if self.head == idx {
                self.head = next;
            }
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            if self.tail == idx {
                self.tail = prev;
            }
        } else {
            self.nodes[next].prev = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u64) -> CompileKey {
        // Distinct keys via the public derivation path would need full
        // circuits; transmuting through parts() is not possible, so build
        // keys from distinct single-byte streams.
        use ecmas_core::stable::{StableHasher, FNV_ALT_BASIS};
        let mut a = StableHasher::new();
        let mut b = StableHasher::with_basis(FNV_ALT_BASIS);
        a.write_u64(n);
        b.write_u64(n);
        crate::key::test_key(a.finish(), b.finish())
    }

    #[test]
    fn get_touches_recency() {
        let mut lru = Lru::new(30);
        assert!(lru.insert(key(1), "a", 10));
        assert!(lru.insert(key(2), "b", 10));
        assert!(lru.insert(key(3), "c", 10));
        // Touch 1 so 2 becomes the cold tail, then overflow.
        assert_eq!(lru.get(&key(1)), Some(&"a"));
        assert!(lru.insert(key(4), "d", 10));
        assert_eq!(lru.get(&key(2)), None, "2 was coldest");
        assert_eq!(lru.get(&key(1)), Some(&"a"));
        assert_eq!(lru.evictions(), 1);
    }

    #[test]
    fn resident_never_exceeds_budget() {
        let mut lru = Lru::new(100);
        for n in 0..1000 {
            let cost = 1 + n % 40;
            lru.insert(key(n), n, cost);
            assert!(lru.resident_bytes() <= 100, "budget violated at {n}");
        }
        assert!(lru.evictions() > 0);
        assert!(lru.len() > 0);
    }

    #[test]
    fn oversized_entry_is_refused_without_flushing() {
        let mut lru = Lru::new(100);
        assert!(lru.insert(key(1), "keep", 60));
        assert!(!lru.insert(key(2), "too big", 101));
        assert_eq!(lru.get(&key(1)), Some(&"keep"), "refusal must not evict");
        assert_eq!(lru.resident_bytes(), 60);
    }

    #[test]
    fn replace_updates_cost() {
        let mut lru = Lru::new(100);
        assert!(lru.insert(key(1), "v1", 80));
        assert!(lru.insert(key(1), "v2", 30));
        assert_eq!(lru.resident_bytes(), 30);
        assert_eq!(lru.len(), 1);
        assert_eq!(lru.get(&key(1)), Some(&"v2"));
        assert_eq!(lru.evictions(), 0, "replacement is not an eviction");
    }

    #[test]
    fn slots_are_recycled() {
        let mut lru = Lru::new(20);
        for n in 0..100 {
            lru.insert(key(n), n, 10);
        }
        assert!(lru.nodes.len() <= 3, "free list must recycle node slots");
    }
}
