//! **ecmas-cache** — a content-addressed compile cache for the Ecmas
//! service layer.
//!
//! Production traffic to a compile service is highly repetitive: the same
//! circuits arrive again and again, and every job otherwise pays the full
//! profile → map → schedule pipeline from scratch. This crate makes
//! repeated work cheap at three granularities:
//!
//! 1. **Full results** ([`full_key`]): a finished `CompileOutcome` keyed
//!    by a platform-stable 128-bit hash of (circuit, chip, config,
//!    schedule mode). A hit skips compilation entirely.
//! 2. **Stage artifacts** ([`profile_key`], [`map_key`]): when only
//!    downstream config changes, the cached `ProfileArtifact` /
//!    `MapArtifact` seed a resumed session and only the later stages
//!    re-run. The session API's stage boundaries make the validity rules
//!    explicit — see the key functions' docs.
//! 3. **In-flight coalescing** ([`CompileCache::begin`]): N identical
//!    concurrent jobs trigger one compile; the other N−1 park on the
//!    leader's flight and share its result (or its error).
//!
//! Storage is a byte-budgeted LRU whose estimated resident total never
//! exceeds [`CacheConfig::byte_budget`]; every counter
//! (hits/misses/stage hits/evictions/resident bytes/coalesced waits) is
//! exact and surfaces through [`CacheStats`] and the `CacheInfo` stamped
//! onto every report.
//!
//! Hashing is FNV-1a over explicit byte streams (`ecmas_core::stable`) —
//! no `DefaultHasher`, so keys agree across platforms, toolchains, and
//! daemon restarts.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ecmas_cache::{full_key, Begin, CacheConfig, CompileCache};
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_circuit::Circuit;
//! use ecmas_core::session::Compiler;
//! use ecmas_core::{Ecmas, EcmasConfig};
//!
//! let mut circuit = Circuit::new(2);
//! circuit.cnot(0, 1);
//! let chip = Chip::min_viable(CodeModel::LatticeSurgery, 2, 3)?;
//! let config = EcmasConfig::default();
//!
//! let cache = CompileCache::new(CacheConfig::default());
//! let key = full_key(&circuit, &chip, &config, "limited");
//! let outcome = match cache.begin(key) {
//!     Begin::Hit(shared) => shared,
//!     Begin::Lead(lead) => {
//!         let fresh = Ecmas::new(config).compile_outcome(&circuit, &chip)?;
//!         lead.complete(fresh)
//!     }
//!     Begin::Follow(follow) => unreachable!("nothing else is compiling"),
//! };
//! assert!(matches!(cache.begin(key), Begin::Hit(_)));
//! assert_eq!(cache.stats().hits, 1);
//! # drop(outcome);
//! # Ok::<(), ecmas_core::CompileError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod key;
mod lru;

pub use cache::{
    estimate_outcome_bytes, Begin, CacheConfig, CacheStats, CompileCache, FollowGuard,
    FollowStatus, LeadGuard,
};
pub use key::{fleet_key, full_key, map_key, profile_key, CompileKey};
