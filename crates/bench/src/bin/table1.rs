//! Regenerates the paper's Table I: overview of cycle counts for
//! AutoBraid vs Ecmas (double defect, minimum viable + sufficient chips)
//! and EDPCI vs Ecmas (lattice surgery, minimum viable + 4x chips).

use ecmas_bench::{print_rows, table1_row};

fn main() {
    let rows: Vec<_> = ecmas_circuit::benchmarks::table1_suite().iter().map(table1_row).collect();
    print_rows("Table I: overview of experiment results (cycles)", &rows);
}
