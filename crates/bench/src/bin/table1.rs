//! Regenerates the paper's Table I: overview of cycle counts for
//! AutoBraid vs Ecmas (double defect, minimum viable + sufficient chips)
//! and EDPCI vs Ecmas (lattice surgery, minimum viable + 4x chips).
//! All rows' cells fan out across cores through the service layer
//! (`ecmas::compile_jobs`); results are identical to a sequential run.

use ecmas_bench::{print_rows, table1_plan, table_rows};

fn main() {
    let rows = table_rows(&ecmas_circuit::benchmarks::table1_suite(), table1_plan);
    print_rows("Table I: overview of experiment results (cycles)", &rows);
}
