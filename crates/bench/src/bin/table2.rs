//! Regenerates the paper's Table II: location-initialization comparison
//! (Trivial / Metis / Ours), first on the minimum viable lattice-surgery
//! chip (the paper's configuration — no spread: everything schedules at
//! the depth bound), then on the congested chip where placement actually
//! discriminates.

use ecmas_bench::{print_rows, table2_row, table2_row_congested};

fn main() {
    let suite = ecmas_circuit::benchmarks::ablation_suite();
    let rows: Vec<_> = suite.iter().map(table2_row).collect();
    print_rows("Table II: comparison of location initialization methods (cycles)", &rows);
    println!();
    let mut rows: Vec<_> = suite.iter().map(table2_row_congested).collect();
    // The ablation suite ties even here (the A* router resolves its
    // congestion under every knob setting); qft_n50's all-to-all traffic
    // is what actually saturates the congested chip.
    rows.push(table2_row_congested(&ecmas_circuit::benchmarks::qft_n50()));
    print_rows("Table II (congested chip): 2x-side tile array, bandwidth-1 channels", &rows);
}
