//! Regenerates the paper's Table II: location-initialization comparison
//! (Trivial / Metis / Ours) on the minimum viable lattice-surgery chip.

use ecmas_bench::{print_rows, table2_row};

fn main() {
    let rows: Vec<_> = ecmas_circuit::benchmarks::ablation_suite().iter().map(table2_row).collect();
    print_rows("Table II: comparison of location initialization methods (cycles)", &rows);
}
