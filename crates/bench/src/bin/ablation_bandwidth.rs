//! Design-choice ablation beyond the paper's tables: the contribution of
//! the *bandwidth adjusting* pre-processing step (§IV-B1, Fig. 10c) on
//! chips with channel-lane slack (the 4x configuration). On minimum viable
//! chips every channel sits at the bandwidth-1 floor and the step is a
//! no-op by construction.

use ecmas::{EcmasConfig, LocationStrategy};
use ecmas_bench::{print_rows, run_ecmas, Row};
use ecmas_chip::{Chip, CodeModel};

fn main() {
    let mut rows = Vec::new();
    // The ablation suite plus the high-parallelism circuits where channel
    // congestion actually occurs (bandwidth adjusting is a no-op without
    // contention to relieve).
    let mut suite = ecmas_circuit::benchmarks::ablation_suite();
    suite.push(ecmas_circuit::benchmarks::dnn_n16());
    suite.push(ecmas_circuit::benchmarks::qft_n50());
    suite.push(ecmas_circuit::random::layered(49, 50, 16, 0xAB1));
    suite.push(ecmas_circuit::random::layered(49, 50, 21, 0xAB2));
    for circuit in suite {
        let n = circuit.qubits();
        let mut cells = Vec::new();
        for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
            let chip = Chip::four_x(model, n, 3).expect("chip");
            let without = EcmasConfig {
                adjust_bandwidth: false,
                // Fix the location seed so the two runs share a mapping.
                location: LocationStrategy::Ecmas { restarts: 8, seed: 0xEC4A5 },
                ..EcmasConfig::default()
            };
            let with = EcmasConfig { adjust_bandwidth: true, ..without };
            let (off, on) = (run_ecmas(&circuit, &chip, without), run_ecmas(&circuit, &chip, with));
            match model {
                CodeModel::DoubleDefect => {
                    cells.push(("dd w/o adjust", off));
                    cells.push(("dd adjusted", on));
                }
                CodeModel::LatticeSurgery => {
                    cells.push(("ls w/o adjust", off));
                    cells.push(("ls adjusted", on));
                }
            }
        }
        rows.push(Row {
            name: circuit.name().to_string(),
            n,
            alpha: circuit.depth(),
            g: circuit.cnot_count(),
            cells,
        });
    }
    print_rows("Ablation: bandwidth adjusting on 4x chips (cycles)", &rows);
}
