//! Regenerates the paper's Fig. 11: mean cycles vs Circuit Parallelism
//! Degree (1..=21) over groups of random 49-qubit, depth-50 circuits.
//! Set `ECMAS_SAMPLES` to change the group size (default 50, as in the
//! paper). Each group's independent compilations fan out across cores
//! via `ecmas::compile_batch`; results are identical to a sequential run.

use ecmas_bench::{fig11_point, sample_count};
use ecmas_chip::CodeModel;

fn main() {
    let samples = sample_count();
    println!("Fig. 11: effect of circuit parallelism ({samples} circuits per point)");
    println!("(a) lattice surgery: EDPCI vs Ours | (b) double defect: AutoBraid vs Ours");
    println!(
        "{:>3} {:>12} {:>12} | {:>12} {:>12}",
        "PM", "EDPCI", "Ours-ls", "AutoBraid", "Ours-dd"
    );
    for pm in 1..=21 {
        let (edpci, ours_ls) = fig11_point(CodeModel::LatticeSurgery, pm, samples);
        let (autobraid, ours_dd) = fig11_point(CodeModel::DoubleDefect, pm, samples);
        println!("{pm:>3} {edpci:>12.1} {ours_ls:>12.1} | {autobraid:>12.1} {ours_dd:>12.1}");
    }
}
