//! Regenerates the paper's Table III: cut-type-initialization comparison
//! (Random / Max-cut / Ours) on the minimum viable double-defect chip.
//! All cells fan out across cores through the service layer
//! (`ecmas::compile_jobs`).

use ecmas_bench::{print_rows, table3_plan, table_rows};

fn main() {
    let rows = table_rows(&ecmas_circuit::benchmarks::ablation_suite(), table3_plan);
    print_rows("Table III: comparison of cut type initialization methods (cycles)", &rows);
}
