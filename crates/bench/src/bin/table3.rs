//! Regenerates the paper's Table III: cut-type-initialization comparison
//! (Random / Max-cut / Ours) on the minimum viable double-defect chip.

use ecmas_bench::{print_rows, table3_row};

fn main() {
    let rows: Vec<_> = ecmas_circuit::benchmarks::ablation_suite().iter().map(table3_row).collect();
    print_rows("Table III: comparison of cut type initialization methods (cycles)", &rows);
}
