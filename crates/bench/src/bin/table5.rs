//! Regenerates the paper's Table V: cut-type-scheduling comparison
//! (Channel-first / Time-first / Ours) on the minimum viable double-defect
//! chip.

use ecmas_bench::{print_rows, table5_row};

fn main() {
    let rows: Vec<_> = ecmas_circuit::benchmarks::ablation_suite().iter().map(table5_row).collect();
    print_rows("Table V: comparison of cut type scheduling strategies (cycles)", &rows);
}
