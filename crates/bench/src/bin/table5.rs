//! Regenerates the paper's Table V: cut-type-scheduling comparison
//! (Channel-first / Time-first / Ours) on the minimum viable
//! double-defect chip. All cells fan out across cores through the
//! service layer (`ecmas::compile_jobs`).

use ecmas_bench::{print_rows, table5_plan, table_rows};

fn main() {
    let rows = table_rows(&ecmas_circuit::benchmarks::ablation_suite(), table5_plan);
    print_rows("Table V: comparison of cut type scheduling strategies (cycles)", &rows);
}
