//! Regenerates the paper's Fig. 12: mean cycles (top) and compile-time
//! ratio vs the minimum viable chip (bottom) as the chip grows from
//! bandwidth 1 to 5, for parallelism 11 and 21, in both models. The
//! x-axis is physical qubits per d², matching the paper's values
//! (3025..18225 double defect, 450..4418 lattice surgery). Sample groups
//! compile in parallel via `ecmas::compile_batch`; per-circuit compile
//! seconds come from each run's own `CompileReport` stage timings.

use ecmas_bench::{fig12_point, sample_count};
use ecmas_chip::CodeModel;

fn main() {
    let samples = sample_count();
    println!("Fig. 12: effect of chip size ({samples} circuits per point)");
    for model in [CodeModel::DoubleDefect, CodeModel::LatticeSurgery] {
        println!("--- {} ---", model.label());
        println!(
            "{:>3} {:>4} {:>10} {:>12} {:>10} {:>14} {:>12}",
            "PM", "bw", "qubits/d2", "base cycles", "ours", "base t-ratio", "ours t-ratio"
        );
        for pm in [11usize, 21] {
            let mut base_t0 = None;
            let mut ours_t0 = None;
            for bw in 1..=5u32 {
                let p = fig12_point(model, pm, bw, samples);
                let bt0 = *base_t0.get_or_insert(p.baseline_secs);
                let ot0 = *ours_t0.get_or_insert(p.ours_secs);
                println!(
                    "{pm:>3} {bw:>4} {:>10.0} {:>12.1} {:>10.1} {:>14.2} {:>12.2}",
                    p.qubits_per_d2,
                    p.baseline_cycles,
                    p.ours_cycles,
                    p.baseline_secs / bt0.max(1e-12),
                    p.ours_secs / ot0.max(1e-12),
                );
            }
        }
    }
}
