//! Regenerates the paper's Table IV: gate-scheduling comparison
//! (Circuit-order / Ours), first on the minimum viable lattice-surgery
//! chip (the paper's configuration — no spread: everything schedules at
//! the depth bound), then on the congested chip where the gate order
//! actually discriminates. All cells fan out across cores through the
//! service layer (`ecmas::compile_jobs`).

use ecmas_bench::{print_rows, table4_plan, table4_plan_congested, table_rows};

fn main() {
    let suite = ecmas_circuit::benchmarks::ablation_suite();
    let rows = table_rows(&suite, table4_plan);
    print_rows("Table IV: comparison of gate scheduling algorithms (cycles)", &rows);
    println!();
    // The ablation suite ties even here (the A* router resolves its
    // congestion under every knob setting); qft_n50's all-to-all traffic
    // is what actually saturates the congested chip.
    let mut congested = suite;
    congested.push(ecmas_circuit::benchmarks::qft_n50());
    let rows = table_rows(&congested, table4_plan_congested);
    print_rows("Table IV (congested chip): 2x-side tile array, bandwidth-1 channels", &rows);
}
