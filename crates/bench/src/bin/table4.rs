//! Regenerates the paper's Table IV: gate-scheduling comparison
//! (Circuit-order / Ours) on the minimum viable lattice-surgery chip.

use ecmas_bench::{print_rows, table4_row};

fn main() {
    let rows: Vec<_> = ecmas_circuit::benchmarks::ablation_suite().iter().map(table4_row).collect();
    print_rows("Table IV: comparison of gate scheduling algorithms (cycles)", &rows);
}
