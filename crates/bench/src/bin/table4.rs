//! Regenerates the paper's Table IV: gate-scheduling comparison
//! (Circuit-order / Ours), first on the minimum viable lattice-surgery
//! chip (the paper's configuration — no spread: everything schedules at
//! the depth bound), then on the congested chip where the gate order
//! actually discriminates.

use ecmas_bench::{print_rows, table4_row, table4_row_congested};

fn main() {
    let suite = ecmas_circuit::benchmarks::ablation_suite();
    let rows: Vec<_> = suite.iter().map(table4_row).collect();
    print_rows("Table IV: comparison of gate scheduling algorithms (cycles)", &rows);
    println!();
    let mut rows: Vec<_> = suite.iter().map(table4_row_congested).collect();
    // The ablation suite ties even here (the A* router resolves its
    // congestion under every knob setting); qft_n50's all-to-all traffic
    // is what actually saturates the congested chip.
    rows.push(table4_row_congested(&ecmas_circuit::benchmarks::qft_n50()));
    print_rows("Table IV (congested chip): 2x-side tile array, bandwidth-1 channels", &rows);
}
