//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation section (§V).
//!
//! Each `table*`/`fig*` binary prints the same rows/series the paper
//! reports, computed with this workspace's implementations. Absolute cycle
//! counts differ where the benchmark generators are synthetic stand-ins
//! (see `DESIGN.md`), but the comparisons the paper draws — who wins, by
//! roughly what factor, where the crossovers sit — are reproduced.
//! `EXPERIMENTS.md` records paper-vs-measured for every experiment.
//!
//! | Binary  | Paper artifact |
//! |---------|----------------|
//! | `table1`| Table I — overview: AutoBraid vs Ecmas (double defect), EDPCI vs Ecmas (lattice surgery) |
//! | `table2`| Table II — location initialization ablation |
//! | `table3`| Table III — cut-type initialization ablation |
//! | `table4`| Table IV — gate scheduling ablation |
//! | `table5`| Table V — cut-type scheduling ablation |
//! | `fig11` | Fig. 11 — cycles vs Circuit Parallelism Degree |
//! | `fig12` | Fig. 12 — cycles & compile-time ratio vs chip size |
//!
//! Every compiler is driven through the workspace-wide [`Compiler`]
//! trait, and every experiment fans out over the `ecmas-serve` service
//! layer: the random-circuit experiments (`fig11`/`fig12`) batch their
//! sample compilations with [`compile_batch`], and the `table1`–`table5`
//! binaries flatten *all* their rows' cells — each with its own compiler
//! and per-circuit chip — into one heterogeneous [`compile_jobs`] fan-out
//! ([`table_rows`]). Results are bit-identical to a sequential loop
//! (every compiler is deterministic), only the wall clock changes.
//!
//! The criterion benches (`cargo bench`) measure compile-time scaling —
//! the paper's efficiency claim — on the same workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ecmas::{
    compile_batch, compile_jobs, validate_encoded, BatchJob, CompileError, CompileOutcome,
    Compiler, CutInitStrategy, CutPolicy, Ecmas, EcmasConfig, GateOrder, LocationStrategy,
};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::Circuit;

/// One labeled measurement series for a report table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Circuit name.
    pub name: String,
    /// Logical qubits.
    pub n: usize,
    /// Circuit depth α.
    pub alpha: usize,
    /// CNOT count g.
    pub g: usize,
    /// `(column label, cycles)` measurements.
    pub cells: Vec<(&'static str, u64)>,
}

/// Environment-tunable sample count for the random-circuit experiments
/// (`ECMAS_SAMPLES`, default matching the paper's 50).
#[must_use]
pub fn sample_count() -> usize {
    std::env::var("ECMAS_SAMPLES").ok().and_then(|v| v.parse().ok()).unwrap_or(50)
}

/// Compiles through the workspace-wide [`Compiler`] trait — one code path
/// for Ecmas and both baselines — and cross-checks the schedule with the
/// independent validator.
///
/// # Panics
///
/// Panics if compilation fails or the schedule is invalid — the harness
/// treats both as experiment-infrastructure bugs.
#[must_use]
pub fn run_compiler(compiler: &dyn Compiler, circuit: &Circuit, chip: &Chip) -> CompileOutcome {
    let outcome = compiler
        .compile_outcome(circuit, chip)
        .unwrap_or_else(|e| panic!("{}: {} compile failed: {e}", circuit.name(), compiler.name()));
    validate_encoded(circuit, &outcome.encoded).unwrap_or_else(|e| {
        panic!("{}: invalid {} schedule: {e}", circuit.name(), compiler.name())
    });
    outcome
}

/// Fans a circuit group through [`compile_batch`] (scoped threads, one
/// worker per core), validates every schedule, and returns the summed
/// cycles and summed per-circuit compile seconds (measured inside each
/// compilation by its report, so the numbers are comparable whether the
/// batch ran on one core or many).
///
/// # Panics
///
/// As [`run_compiler`].
#[must_use]
pub fn run_batch<C: Compiler + Sync + ?Sized>(
    compiler: &C,
    group: &[Circuit],
    chip: &Chip,
) -> (u64, f64) {
    let mut cycles = 0u64;
    let mut secs = 0.0f64;
    for (circuit, outcome) in group.iter().zip(compile_batch(compiler, group, chip)) {
        let outcome =
            outcome.unwrap_or_else(|e| panic!("{}: batch compile failed: {e}", circuit.name()));
        validate_encoded(circuit, &outcome.encoded)
            .unwrap_or_else(|e| panic!("{}: invalid batch schedule: {e}", circuit.name()));
        cycles += outcome.encoded.cycles();
        secs += outcome.report.timings.total().as_secs_f64();
    }
    (cycles, secs)
}

/// Compiles with Ecmas (paper defaults) and cross-checks the schedule with
/// the independent validator.
///
/// # Panics
///
/// As [`run_compiler`].
#[must_use]
pub fn run_ecmas(circuit: &Circuit, chip: &Chip, config: EcmasConfig) -> u64 {
    run_compiler(&Ecmas::new(config), circuit, chip).encoded.cycles()
}

/// Compiles with Ecmas-ReSu on a sufficient-resources chip.
///
/// # Panics
///
/// As [`run_ecmas`].
#[must_use]
pub fn run_ecmas_resu(circuit: &Circuit, model: CodeModel) -> u64 {
    let scheme = ecmas::para_finding(&circuit.dag());
    let chip = Chip::sufficient(model, circuit.qubits(), scheme.gpm(), 3)
        .expect("sufficient chip construction");
    let enc = Ecmas::default()
        .compile_resu(circuit, &chip)
        .unwrap_or_else(|e| panic!("{}: resu compile failed: {e}", circuit.name()));
    validate_encoded(circuit, &enc)
        .unwrap_or_else(|e| panic!("{}: invalid resu schedule: {e}", circuit.name()));
    enc.cycles()
}

/// Compiles with the AutoBraid baseline (validated).
///
/// # Panics
///
/// As [`run_compiler`].
#[must_use]
pub fn run_autobraid(circuit: &Circuit, chip: &Chip) -> u64 {
    run_compiler(&AutoBraid::new(), circuit, chip).encoded.cycles()
}

/// Compiles with the EDPCI baseline (validated).
///
/// # Panics
///
/// As [`run_compiler`].
#[must_use]
pub fn run_edpci(circuit: &Circuit, chip: &Chip) -> u64 {
    run_compiler(&Edpci::new(), circuit, chip).encoded.cycles()
}

/// One planned table cell: which compiler to run on which chip. The
/// chips are sized per circuit (that is why the tables cannot ride the
/// single-chip [`compile_batch`] shape and fan out over
/// [`compile_jobs`] instead).
pub struct Cell {
    /// Column label.
    pub label: &'static str,
    /// The compiler this cell measures.
    pub compiler: Box<dyn Compiler + Sync>,
    /// The chip it runs on.
    pub chip: Chip,
}

impl Cell {
    fn new(label: &'static str, compiler: impl Compiler + Sync + 'static, chip: Chip) -> Self {
        Cell { label, compiler: Box::new(compiler), chip }
    }
}

/// `Ecmas` driven through Algorithm 2 (Ecmas-ReSu) instead of the
/// [`Compiler`] trait's default Algorithm 1 pipeline — the Table I
/// "ReSu" column as a trait object.
struct ResuCompiler(Ecmas);

impl Compiler for ResuCompiler {
    fn name(&self) -> &'static str {
        "ecmas-resu"
    }

    fn compile_outcome(
        &self,
        circuit: &Circuit,
        chip: &Chip,
    ) -> Result<CompileOutcome, CompileError> {
        Ok(self.0.session(circuit, chip)?.map()?.schedule_resu()?.into_outcome())
    }
}

fn row_shell(circuit: &Circuit, cells: Vec<(&'static str, u64)>) -> Row {
    Row {
        name: circuit.name().to_string(),
        n: circuit.qubits(),
        alpha: circuit.depth(),
        g: circuit.cnot_count(),
        cells,
    }
}

/// Builds every row of a table by flattening all `(circuit, cell)` pairs
/// of the whole suite into one heterogeneous service fan-out
/// ([`compile_jobs`]): rows and columns compile concurrently across
/// cores, every schedule is validated, and the assembled rows are
/// bit-identical to the sequential per-row loop.
///
/// # Panics
///
/// As [`run_compiler`]: a failed compilation or invalid schedule is an
/// experiment-infrastructure bug.
#[must_use]
pub fn table_rows(suite: &[Circuit], plan: impl Fn(&Circuit) -> Vec<Cell>) -> Vec<Row> {
    let plans: Vec<Vec<Cell>> = suite.iter().map(&plan).collect();
    let jobs: Vec<BatchJob<'_>> = suite
        .iter()
        .zip(&plans)
        .flat_map(|(circuit, cells)| {
            cells.iter().map(move |cell| BatchJob {
                compiler: &*cell.compiler,
                circuit,
                chip: &cell.chip,
            })
        })
        .collect();
    let mut outcomes = compile_jobs(&jobs).into_iter();
    suite
        .iter()
        .zip(&plans)
        .map(|(circuit, cells)| {
            let measured = cells
                .iter()
                .map(|cell| {
                    let outcome =
                        outcomes.next().expect("one outcome per job").unwrap_or_else(|e| {
                            panic!("{}: {} compile failed: {e}", circuit.name(), cell.label)
                        });
                    validate_encoded(circuit, &outcome.encoded).unwrap_or_else(|e| {
                        panic!("{}: invalid {} schedule: {e}", circuit.name(), cell.label)
                    });
                    (cell.label, outcome.encoded.cycles())
                })
                .collect();
            row_shell(circuit, measured)
        })
        .collect()
}

fn row_sequential(circuit: &Circuit, cells: &[Cell]) -> Row {
    let measured = cells
        .iter()
        .map(|cell| {
            (cell.label, run_compiler(&*cell.compiler, circuit, &cell.chip).encoded.cycles())
        })
        .collect();
    row_shell(circuit, measured)
}

/// Table I plan: the full overview comparison for one circuit.
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table1_plan(circuit: &Circuit) -> Vec<Cell> {
    let n = circuit.qubits();
    let dd_min = Chip::min_viable(CodeModel::DoubleDefect, n, 3).expect("chip");
    let ls_min = Chip::min_viable(CodeModel::LatticeSurgery, n, 3).expect("chip");
    let ls_4x = Chip::four_x(CodeModel::LatticeSurgery, n, 3).expect("chip");
    let gpm = ecmas::para_finding(&circuit.dag()).gpm();
    let dd_sufficient = Chip::sufficient(CodeModel::DoubleDefect, n, gpm.max(1), 3).expect("chip");
    vec![
        Cell::new("AutoBraid Min", AutoBraid::new(), dd_min.clone()),
        Cell::new("Ecmas-dd Min", Ecmas::default(), dd_min),
        Cell::new("Ecmas-dd ReSu", ResuCompiler(Ecmas::default()), dd_sufficient),
        Cell::new("EDPCI Min", Edpci::new(), ls_min.clone()),
        Cell::new("EDPCI 4X", Edpci::new(), ls_4x.clone()),
        Cell::new("Ecmas-ls Min", Ecmas::default(), ls_min),
        Cell::new("Ecmas-ls 4X", Ecmas::default(), ls_4x),
    ]
}

/// Table I: one row, compiled sequentially (the binaries fan whole
/// tables out with [`table_rows`]).
#[must_use]
pub fn table1_row(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table1_plan(circuit))
}

fn location_plan(chip: Chip) -> Vec<Cell> {
    let with_location = |location| EcmasConfig { location, ..EcmasConfig::default() };
    vec![
        Cell::new("Trivial", Ecmas::new(with_location(LocationStrategy::Trivial)), chip.clone()),
        Cell::new(
            "Metis",
            Ecmas::new(with_location(LocationStrategy::Partitioner { seed: 11 })),
            chip.clone(),
        ),
        Cell::new("Ours", Ecmas::default(), chip),
    ]
}

/// Table II plan: location-initialization ablation (lattice surgery, min
/// chip).
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table2_plan(circuit: &Circuit) -> Vec<Cell> {
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, circuit.qubits(), 3).expect("chip");
    location_plan(chip)
}

/// [`table2_plan`] on the congested chip (double-side tile array, every
/// channel at the bandwidth-1 floor): the configuration where placement
/// actually discriminates — min-viable chips schedule the whole ablation
/// suite at the depth bound regardless of location strategy.
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table2_plan_congested(circuit: &Circuit) -> Vec<Cell> {
    let chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).expect("chip");
    location_plan(chip)
}

/// Table II: one row, compiled sequentially.
#[must_use]
pub fn table2_row(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table2_plan(circuit))
}

/// Table II (congested chip): one row, compiled sequentially.
#[must_use]
pub fn table2_row_congested(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table2_plan_congested(circuit))
}

/// Table III plan: cut-type-initialization ablation (double defect, min
/// chip).
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table3_plan(circuit: &Circuit) -> Vec<Cell> {
    let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3).expect("chip");
    let with_init = |cut_init| EcmasConfig { cut_init, ..EcmasConfig::default() };
    vec![
        Cell::new(
            "Random",
            Ecmas::new(with_init(CutInitStrategy::Random { seed: 23 })),
            chip.clone(),
        ),
        Cell::new(
            "Max-cut",
            Ecmas::new(with_init(CutInitStrategy::MaxCut { seed: 23 })),
            chip.clone(),
        ),
        Cell::new("Ours", Ecmas::default(), chip),
    ]
}

/// Table III: one row, compiled sequentially.
#[must_use]
pub fn table3_row(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table3_plan(circuit))
}

fn order_plan(chip: Chip) -> Vec<Cell> {
    let with_order = |order| EcmasConfig { order, ..EcmasConfig::default() };
    vec![
        Cell::new("Circuit-order", Ecmas::new(with_order(GateOrder::CircuitOrder)), chip.clone()),
        Cell::new("Ours", Ecmas::default(), chip),
    ]
}

/// Table IV plan: gate-scheduling ablation (lattice surgery, min chip).
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table4_plan(circuit: &Circuit) -> Vec<Cell> {
    let chip = Chip::min_viable(CodeModel::LatticeSurgery, circuit.qubits(), 3).expect("chip");
    order_plan(chip)
}

/// [`table4_plan`] on the congested chip — see [`table2_plan_congested`];
/// gate order only matters when gates actually compete for channels.
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table4_plan_congested(circuit: &Circuit) -> Vec<Cell> {
    let chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).expect("chip");
    order_plan(chip)
}

/// Table IV: one row, compiled sequentially.
#[must_use]
pub fn table4_row(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table4_plan(circuit))
}

/// Table IV (congested chip): one row, compiled sequentially.
#[must_use]
pub fn table4_row_congested(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table4_plan_congested(circuit))
}

/// Table V plan: cut-type-scheduling ablation (double defect, min chip).
///
/// # Panics
///
/// Panics if a chip cannot be constructed.
#[must_use]
pub fn table5_plan(circuit: &Circuit) -> Vec<Cell> {
    let chip = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3).expect("chip");
    let with_policy = |cut_policy| EcmasConfig { cut_policy, ..EcmasConfig::default() };
    vec![
        Cell::new("Channel-first", Ecmas::new(with_policy(CutPolicy::ChannelFirst)), chip.clone()),
        Cell::new("Time-first", Ecmas::new(with_policy(CutPolicy::TimeFirst)), chip.clone()),
        Cell::new("Ours", Ecmas::default(), chip),
    ]
}

/// Table V: one row, compiled sequentially.
#[must_use]
pub fn table5_row(circuit: &Circuit) -> Row {
    row_sequential(circuit, &table5_plan(circuit))
}

/// The model's paper baseline as a trait object (AutoBraid for double
/// defect, EDPCI for lattice surgery).
#[must_use]
pub fn baseline_for(model: CodeModel) -> Box<dyn Compiler + Sync> {
    match model {
        CodeModel::DoubleDefect => Box::new(AutoBraid::new()),
        CodeModel::LatticeSurgery => Box::new(Edpci::new()),
    }
}

/// Fig. 11 point: mean cycles over a test group of random circuits at one
/// parallelism degree, for baseline and Ecmas, on the given model's minimum
/// viable chip. The group's independent compilations fan out across cores
/// via [`compile_batch`].
#[must_use]
pub fn fig11_point(model: CodeModel, parallelism: usize, samples: usize) -> (f64, f64) {
    let group = ecmas_circuit::random::test_group(49, 50, parallelism, samples, 0x000F_1611);
    let chip = Chip::min_viable(model, 49, 3).expect("chip");
    let (base_sum, _) = run_batch(&*baseline_for(model), &group, &chip);
    let (ours_sum, _) = run_batch(&Ecmas::default(), &group, &chip);
    (base_sum as f64 / group.len() as f64, ours_sum as f64 / group.len() as f64)
}

/// Fig. 12 point: mean cycles and mean compile seconds at one `(model,
/// parallelism, bandwidth)` cell, for the model's baseline and Ecmas.
/// Compilations fan out across cores; compile seconds come from each
/// run's own [`CompileReport`](ecmas::CompileReport) stage timings.
#[must_use]
pub fn fig12_point(
    model: CodeModel,
    parallelism: usize,
    bandwidth: u32,
    samples: usize,
) -> Fig12Point {
    let group = ecmas_circuit::random::test_group(49, 50, parallelism, samples, 0x000F_1612);
    let chip = Chip::uniform(model, 7, 7, bandwidth, 3).expect("chip");
    let (base_cycles, base_secs) = run_batch(&*baseline_for(model), &group, &chip);
    let (ours_cycles, ours_secs) = run_batch(&Ecmas::default(), &group, &chip);
    let k = group.len() as f64;
    Fig12Point {
        qubits_per_d2: chip.physical_qubits_per_d2(),
        baseline_cycles: base_cycles as f64 / k,
        ours_cycles: ours_cycles as f64 / k,
        baseline_secs: base_secs / k,
        ours_secs: ours_secs / k,
    }
}

/// One cell of the Fig. 12 sweep.
#[derive(Clone, Copy, Debug)]
pub struct Fig12Point {
    /// Physical qubit count in units of d² (the paper's x-axis).
    pub qubits_per_d2: f64,
    /// Mean baseline cycles (AutoBraid or EDPCI).
    pub baseline_cycles: f64,
    /// Mean Ecmas cycles.
    pub ours_cycles: f64,
    /// Mean baseline compile time in seconds.
    pub baseline_secs: f64,
    /// Mean Ecmas compile time in seconds.
    pub ours_secs: f64,
}

/// Prints rows in the paper's table style, with a geometric-mean summary
/// of each column's ratio against the last column ("Ours").
pub fn print_rows(title: &str, rows: &[Row]) {
    println!("{title}");
    if rows.is_empty() {
        return;
    }
    print!("{:<18} {:>4} {:>6} {:>6}", "Circuit", "n", "alpha", "g");
    for (label, _) in &rows[0].cells {
        print!(" {label:>14}");
    }
    println!();
    for row in rows {
        print!("{:<18} {:>4} {:>6} {:>6}", row.name, row.n, row.alpha, row.g);
        for (_, v) in &row.cells {
            print!(" {v:>14}");
        }
        println!();
    }
    // Geometric mean of ours/column over rows (improvement factor).
    let last = rows[0].cells.len() - 1;
    print!("{:<36}", "geo-mean (ours / column)");
    for col in 0..rows[0].cells.len() {
        let mut log_sum = 0.0f64;
        let mut count = 0usize;
        for row in rows {
            let ours = row.cells[last].1;
            let theirs = row.cells[col].1;
            if ours > 0 && theirs > 0 {
                log_sum += (ours as f64 / theirs as f64).ln();
                count += 1;
            }
        }
        let gm = if count == 0 { 1.0 } else { (log_sum / count as f64).exp() };
        print!(" {gm:>14.3}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecmas_circuit::benchmarks;

    #[test]
    fn table1_row_has_all_columns() {
        let row = table1_row(&benchmarks::bv_n10());
        assert_eq!(row.cells.len(), 7);
        // BV is a serial star: AutoBraid = 3α, Ecmas = α on both models.
        assert_eq!(row.cells[0].1, 3 * row.alpha as u64);
        assert_eq!(row.cells[1].1, row.alpha as u64);
        assert_eq!(row.cells[5].1, row.alpha as u64);
    }

    #[test]
    fn ablation_rows_have_expected_columns() {
        let c = benchmarks::ghz(8);
        assert_eq!(table2_row(&c).cells.len(), 3);
        assert_eq!(table3_row(&c).cells.len(), 3);
        assert_eq!(table4_row(&c).cells.len(), 2);
        assert_eq!(table5_row(&c).cells.len(), 3);
    }

    #[test]
    fn ours_wins_or_ties_on_ghz_cut_init() {
        // The paper's headline Table III example: greedy cut init is
        // optimal on ghz (path graph) while random/max-cut are not
        // guaranteed to be.
        let row = table3_row(&benchmarks::ghz_state_n23());
        let ours = row.cells[2].1;
        assert_eq!(ours, row.alpha as u64);
        assert!(row.cells[0].1 >= ours);
        assert!(row.cells[1].1 >= ours);
    }

    #[test]
    fn run_batch_sums_match_sequential_runs() {
        let group = ecmas_circuit::random::test_group(10, 6, 2, 3, 42);
        let chip = Chip::min_viable(CodeModel::LatticeSurgery, 10, 3).unwrap();
        let (batch_cycles, batch_secs) = run_batch(&Ecmas::default(), &group, &chip);
        let sequential: u64 =
            group.iter().map(|c| run_ecmas(c, &chip, EcmasConfig::default())).sum();
        assert_eq!(batch_cycles, sequential, "batch must be bit-identical to sequential");
        assert!(batch_secs > 0.0);
        assert_eq!(baseline_for(CodeModel::DoubleDefect).name(), "autobraid");
        assert_eq!(baseline_for(CodeModel::LatticeSurgery).name(), "edpci");
    }

    #[test]
    fn parallel_table_rows_match_the_sequential_rows() {
        let suite = vec![benchmarks::ghz(8), benchmarks::bv_n10(), benchmarks::ising_n10()];
        let parallel = table_rows(&suite, table1_plan);
        let sequential: Vec<Row> = suite.iter().map(table1_row).collect();
        assert_eq!(parallel.len(), sequential.len());
        for (par, seq) in parallel.iter().zip(&sequential) {
            assert_eq!(par.name, seq.name);
            assert_eq!(par.cells, seq.cells, "{}: service fan-out must not move a cell", par.name);
        }
        // The ablation plans drive the same machinery; spot-check one.
        let parallel = table_rows(&suite, table5_plan);
        let sequential: Vec<Row> = suite.iter().map(table5_row).collect();
        for (par, seq) in parallel.iter().zip(&sequential) {
            assert_eq!(par.cells, seq.cells);
        }
    }

    #[test]
    fn fig11_point_runs_small_sample() {
        let (base, ours) = fig11_point(CodeModel::LatticeSurgery, 3, 3);
        assert!(base >= 50.0, "cycles at least depth");
        assert!(ours >= 50.0);
        assert!(ours <= base + 1e-9, "ecmas should not lose on average");
    }

    #[test]
    fn fig12_point_reports_paper_x_axis() {
        let p = fig12_point(CodeModel::DoubleDefect, 4, 1, 2);
        assert!((p.qubits_per_d2 - 3025.0).abs() < 1e-9);
        assert!(p.baseline_cycles > 0.0 && p.ours_cycles > 0.0);
    }
}
