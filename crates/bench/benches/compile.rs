//! Criterion microbenches for the paper's efficiency claims: compile time
//! should grow roughly linearly with chip area (Fig. 12 bottom), and the
//! pipeline's stages should each stay cheap at benchmark scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecmas::{
    compile_jobs, para_finding, BatchJob, CompileRequest, CompileService, Ecmas, EcmasConfig,
    ServiceConfig,
};
use ecmas_baselines::{AutoBraid, Edpci};
use ecmas_chip::{Chip, CodeModel};
use ecmas_circuit::random::{StressSpec, StressWorkload};
use ecmas_circuit::{benchmarks, random};
use ecmas_partition::{place, WeightedGraph};
use ecmas_route::{Disjointness, RouteRequest, Router};

fn bench_para_finding(c: &mut Criterion) {
    let qft = benchmarks::qft_n50();
    let dag = qft.dag();
    c.bench_function("para_finding/qft_n50", |b| b.iter(|| para_finding(&dag)));
}

fn bench_placement(c: &mut Criterion) {
    let qft = benchmarks::qft_n10();
    let comm = qft.comm_graph();
    let graph = WeightedGraph::from_edges(
        comm.qubits(),
        comm.edges().iter().map(|e| (e.a, e.b, u64::from(e.weight))),
    );
    c.bench_function("placement/qft_n10_4x4", |b| b.iter(|| place(&graph, 4, 4, 4, 7)));
}

fn bench_router(c: &mut Criterion) {
    let chip = Chip::uniform(CodeModel::DoubleDefect, 8, 8, 2, 3).unwrap();
    c.bench_function("router/64_random_pairs_8x8_b2", |b| {
        b.iter(|| {
            let mut router = Router::new(chip.grid(), Disjointness::Node);
            for t in 0..64 {
                router.block_tile(t);
            }
            let mut routed = 0;
            for k in 0..64u64 {
                let from = (k * 17 % 64) as usize;
                let to = (k * 29 % 64) as usize;
                if from != to && router.route_tiles(from, to, k / 8, 1).is_some() {
                    routed += 1;
                }
            }
            routed
        });
    });
    // The same workload through the per-cycle batch API (8 requests per
    // cycle, distance-ordered) — what the schedulers actually drive.
    c.bench_function("router/64_pairs_batched_8x8_b2", |b| {
        b.iter(|| {
            let mut router = Router::new(chip.grid(), Disjointness::Node);
            for t in 0..64 {
                router.block_tile(t);
            }
            let mut routed = 0;
            for cycle in 0..8u64 {
                let requests: Vec<RouteRequest> = (8 * cycle..8 * (cycle + 1))
                    .filter_map(|k| {
                        let from = (k * 17 % 64) as usize;
                        let to = (k * 29 % 64) as usize;
                        (from != to).then(|| RouteRequest::route(from, to, 1))
                    })
                    .collect();
                routed += router.route_ready_by_distance(&requests, cycle).iter().flatten().count();
            }
            routed
        });
    });
}

/// The congested worst case the reachability cache targets: qft_n50's
/// all-to-all pair traffic on `Chip::congested` (16×16 tiles, every
/// channel at the bandwidth-1 floor), with the mapped tiles spread far
/// apart. Every cycle submits a saturating 50-request batch; a handful
/// route, the channels jam, and the rest provably cannot — without the
/// cache each of those failures floods the entire reachable region
/// before returning `None`.
fn bench_congested_router(c: &mut Criterion) {
    let qubits = 50usize;
    let chip = Chip::congested(CodeModel::DoubleDefect, qubits, 3).unwrap();
    let stride = chip.tile_slots() / qubits; // spread the mapping out
    let slot = |q: usize| q * stride;
    // qft-style traffic: each cycle pairs every qubit i with qubits i+k
    // and i+k+11 — a 100-request saturating batch per cycle (roughly 40
    // route, the rest fail; the cache answers >90% of the failures).
    let cycles = 8u64;
    let batches: Vec<Vec<RouteRequest>> = (0..cycles)
        .map(|cycle| {
            let k = cycle as usize + 1;
            (0..qubits)
                .flat_map(|i| {
                    [
                        RouteRequest::route(slot(i), slot((i + k) % qubits), 1),
                        RouteRequest::route(slot(i), slot((i + k + 11) % qubits), 1),
                    ]
                })
                .collect()
        })
        .collect();
    c.bench_function("router/qft_n50_congested", |b| {
        b.iter(|| {
            let mut router = Router::new(chip.grid(), Disjointness::Node);
            for q in 0..qubits {
                router.block_tile(slot(q));
            }
            let mut routed = 0;
            let mut outcomes = Vec::new();
            for (cycle, batch) in batches.iter().enumerate() {
                router.route_ready_by_distance_into(batch, cycle as u64, &mut outcomes);
                routed += outcomes.iter().flatten().count();
            }
            (routed, router.stats().cache_hits)
        });
    });
}

/// Service-layer throughput on a congested chip: a 100-job seeded
/// stress mix (widths 8–25, depths 40–160, bursty arrival order) fanned
/// out through `compile_jobs` — the dispatch machine `ecmasd` and the
/// table harnesses share. One iteration is the whole drain.
fn bench_service_stress(c: &mut Criterion) {
    let chip = Chip::congested(CodeModel::LatticeSurgery, 25, 3).unwrap();
    let spec = StressSpec {
        jobs: 100,
        min_qubits: 8,
        max_qubits: 25,
        min_depth: 40,
        max_depth: 160,
        mean_burst: 8,
        dup_percent: 0,
        defect_percent: 0,
        seed: 7,
    };
    let circuits: Vec<_> =
        StressWorkload::new(&spec).jobs().iter().map(|job| job.circuit()).collect();
    let compiler = Ecmas::new(EcmasConfig::default());
    let jobs: Vec<BatchJob<'_>> = circuits
        .iter()
        .map(|circuit| BatchJob { compiler: &compiler, circuit, chip: &chip })
        .collect();
    c.bench_function("service/stress_100_jobs", |b| {
        b.iter(|| {
            let outcomes = compile_jobs(&jobs);
            assert!(outcomes.iter().all(Result::is_ok), "stress jobs must all compile");
            outcomes.len()
        });
    });

    // The same 100-job mix through the persistent `CompileService` with
    // the fault-injection/retry/shedding hooks compiled in but disabled
    // (`faults: None`, shedding off): the hook layer must be near zero-cost
    // when off, which the bench-compare gate enforces against the
    // baseline row.
    c.bench_function("service/stress_100_jobs_faults_off", |b| {
        b.iter(|| {
            let service = CompileService::new(ServiceConfig {
                workers: 4,
                queue_capacity: 128,
                ..ServiceConfig::default()
            });
            let handles: Vec<_> = circuits
                .iter()
                .map(|circuit| {
                    service
                        .submit(CompileRequest::new(circuit.clone(), chip.clone()))
                        .expect("queue holds the whole mix")
                })
                .collect();
            let mut done = 0usize;
            for handle in handles {
                handle.wait().expect("stress jobs must all compile");
                done += 1;
            }
            done
        });
    });
}

/// The compile-cache A/B: a 1000-job seeded stress mix where 90% of
/// jobs are Zipf-skewed exact repeats of earlier ones (a shared service
/// recompiling a few hot kernels), drained through a `CompileService`
/// with the content-addressed cache off vs on. One iteration is the
/// whole drain from a cold service, so the on/off ratio is the
/// mean-latency improvement the cache buys on duplicated traffic — the
/// headline claim is ≥5×.
fn bench_service_stress_dup(c: &mut Criterion) {
    let spec = StressSpec {
        jobs: 1000,
        min_qubits: 8,
        max_qubits: 14,
        min_depth: 40,
        max_depth: 120,
        mean_burst: 8,
        dup_percent: 90,
        defect_percent: 0,
        seed: 21,
    };
    let workload = StressWorkload::new(&spec);
    let jobs: Vec<_> = workload
        .jobs()
        .iter()
        .map(|job| {
            let circuit = job.circuit();
            let chip = Chip::min_viable(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
            (circuit, chip)
        })
        .collect();
    let run = |cache_bytes: u64| {
        let service = CompileService::new(ServiceConfig {
            workers: 4,
            cache_bytes,
            ..ServiceConfig::default()
        });
        let handles: Vec<_> = jobs
            .iter()
            .map(|(circuit, chip)| {
                service.submit(CompileRequest::new(circuit.clone(), chip.clone())).unwrap()
            })
            .collect();
        let mut done = 0usize;
        for handle in handles {
            handle.wait().expect("stress jobs must all compile");
            done += 1;
        }
        done
    };
    c.bench_function("service/stress_dup_1000_cache_off", |b| b.iter(|| run(0)));
    c.bench_function("service/stress_dup_1000_cache_on", |b| {
        b.iter(|| run(64 * 1024 * 1024));
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for name in ["qft_n10", "ising_n10", "swap_test_n25"] {
        let circuit = benchmarks::by_name(name).expect("known benchmark");
        let dd = Chip::min_viable(CodeModel::DoubleDefect, circuit.qubits(), 3).unwrap();
        let ls = Chip::min_viable(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
        group.bench_with_input(BenchmarkId::new("ecmas_dd", name), &circuit, |b, circ| {
            b.iter(|| Ecmas::new(EcmasConfig::default()).compile(circ, &dd).unwrap().cycles());
        });
        group.bench_with_input(BenchmarkId::new("ecmas_ls", name), &circuit, |b, circ| {
            b.iter(|| Ecmas::new(EcmasConfig::default()).compile(circ, &ls).unwrap().cycles());
        });
        group.bench_with_input(BenchmarkId::new("autobraid", name), &circuit, |b, circ| {
            b.iter(|| AutoBraid::new().compile(circ, &dd).unwrap().cycles());
        });
        group.bench_with_input(BenchmarkId::new("edpci", name), &circuit, |b, circ| {
            b.iter(|| Edpci::new().compile(circ, &ls).unwrap().cycles());
        });
    }
    group.finish();
}

/// The defective-chip worst case: congested qft_n50 with 10% of the
/// tile array dead (seeded mask). Placement has to skip dead tiles and
/// the router detours around dead channel cells, so this row prices the
/// whole defect-aware path against the uniform `router/qft_n50_congested`
/// and pin workloads.
fn bench_defective_compile(c: &mut Criterion) {
    let circuit = benchmarks::qft_n50();
    let mut chip = Chip::congested(CodeModel::LatticeSurgery, circuit.qubits(), 3).unwrap();
    let slots = chip.tile_rows() * chip.tile_cols();
    chip.seed_defects(slots / 10, 0xD5EED);
    c.bench_function("compile/qft_n50_defect10", |b| {
        b.iter(|| Ecmas::default().compile_auto(&circuit, &chip).unwrap().report.cycles);
    });
}

/// Fig. 12 bottom panel: compile time as the chip grows (bandwidth 1..5).
fn bench_chip_size_scaling(c: &mut Criterion) {
    let circuit = random::layered(49, 50, 11, 0xF16);
    let mut group = c.benchmark_group("fig12_compile_time");
    group.sample_size(10);
    for bw in 1..=5u32 {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 7, 7, bw, 3).unwrap();
        group.bench_with_input(BenchmarkId::new("ecmas_dd_pm11", bw), &chip, |b, chip| {
            b.iter(|| Ecmas::new(EcmasConfig::default()).compile(&circuit, chip).unwrap().cycles());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_para_finding,
    bench_placement,
    bench_router,
    bench_congested_router,
    bench_end_to_end,
    bench_defective_compile,
    bench_chip_size_scaling,
    bench_service_stress,
    bench_service_stress_dup
);
criterion_main!(benches);
