//! Graph partitioning utilities for the Ecmas reproduction.
//!
//! The paper leans on three pieces of partitioning machinery, all rebuilt
//! here without external solvers:
//!
//! * [`ParityDsu`] — union–find with parity, the incremental-bipartiteness
//!   primitive behind the cut-type initialization (§IV-C1) and the
//!   bipartite-prefix batching of Algorithm 2 (§IV-C3). Lemma 1 of the
//!   paper (any two layers form a bipartite graph) is property-tested on
//!   top of it.
//! * [`bisect`] / [`place`] — a weighted Kernighan–Lin bisectioner and a
//!   recursive-bisection 2-D placer with pairwise-swap refinement. These
//!   substitute for Metis \[21\] in the *mapping establishing* step: the
//!   paper generates several randomized mappings and keeps the one with the
//!   lowest communication cost `f = Σ γ_ij · l_ij`, which is exactly what
//!   [`place`] does with `restarts`.
//! * [`max_cut_one_exchange`] — the NetworkX-style one-exchange local
//!   search used as a cut-type-initialization baseline in Table III.
//!
//! # Example
//!
//! ```
//! use ecmas_partition::ParityDsu;
//!
//! // A 4-cycle is bipartite: all four "endpoints differ" edges are
//! // consistent.
//! let mut dsu = ParityDsu::new(4);
//! assert!(dsu.union_different(0, 1));
//! assert!(dsu.union_different(1, 2));
//! assert!(dsu.union_different(2, 3));
//! assert!(dsu.union_different(3, 0));
//! // …but closing a triangle is not.
//! assert!(!dsu.union_different(0, 2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bisect;
mod dsu;
mod graph;
mod maxcut;
mod placement;

pub use bisect::bisect;
pub use dsu::ParityDsu;
pub use graph::WeightedGraph;
pub use maxcut::max_cut_one_exchange;
pub use placement::{place, place_masked, place_opts, Placement};
