use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::graph::WeightedGraph;

/// One-exchange local-search max-cut (the NetworkX `one_exchange`
/// algorithm the paper uses as a cut-type-initialization baseline in
/// Table III): start from a random 2-coloring and greedily flip the vertex
/// with the largest positive gain until a local optimum.
///
/// Returns `side[v] ∈ {0, 1}`. Deterministic in `seed`.
///
/// # Example
///
/// ```
/// use ecmas_partition::{max_cut_one_exchange, WeightedGraph};
///
/// // On a bipartite graph the local search finds the full cut.
/// let g = WeightedGraph::from_edges(4, [(0, 2, 1), (0, 3, 1), (1, 2, 1), (1, 3, 1)]);
/// let side = max_cut_one_exchange(&g, 3);
/// let cut: u64 = g.edges().iter()
///     .filter(|&&(a, b, _)| side[a] != side[b])
///     .map(|&(_, _, w)| w)
///     .sum();
/// assert_eq!(cut, 4);
/// ```
#[must_use]
pub fn max_cut_one_exchange(graph: &WeightedGraph, seed: u64) -> Vec<u8> {
    let n = graph.len();
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut side: Vec<u8> = (0..n).map(|_| u8::from(rng.gen_bool(0.5))).collect();
    loop {
        let mut best: Option<(usize, i64)> = None;
        for v in 0..n {
            // Gain of flipping v: (same-side weight) − (cross-side weight).
            let mut gain = 0i64;
            for &(u, w) in graph.neighbors(v) {
                let w = i64::try_from(w).unwrap_or(i64::MAX);
                if side[u] == side[v] {
                    gain += w;
                } else {
                    gain -= w;
                }
            }
            if gain > 0 && best.is_none_or(|(_, g)| gain > g) {
                best = Some((v, gain));
            }
        }
        match best {
            Some((v, _)) => side[v] ^= 1,
            None => return side,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cut(graph: &WeightedGraph, side: &[u8]) -> u64 {
        graph.edges().iter().filter(|&&(a, b, _)| side[a] != side[b]).map(|&(_, _, w)| w).sum()
    }

    #[test]
    fn triangle_cuts_two_edges() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 2, 1), (2, 0, 1)]);
        let side = max_cut_one_exchange(&g, 0);
        assert_eq!(cut(&g, &side), 2);
    }

    #[test]
    fn path_cut_is_a_local_optimum_above_half() {
        // One-exchange guarantees at least half the total weight; on a path
        // it usually (but not always) finds the full cut.
        let g = WeightedGraph::from_edges(6, (0..5).map(|i| (i, i + 1, 1)));
        let side = max_cut_one_exchange(&g, 1);
        assert!(cut(&g, &side) >= 3, "got {}", cut(&g, &side));
    }

    #[test]
    fn respects_weights() {
        // Flipping must prefer the heavy edge.
        let g = WeightedGraph::from_edges(3, [(0, 1, 10), (1, 2, 1), (2, 0, 1)]);
        let side = max_cut_one_exchange(&g, 2);
        assert!(cut(&g, &side) >= 11);
    }

    #[test]
    fn empty_graph() {
        let g = WeightedGraph::from_edges(0, []);
        assert!(max_cut_one_exchange(&g, 0).is_empty());
    }

    #[test]
    fn local_optimum_no_positive_flip() {
        let g = WeightedGraph::from_edges(
            8,
            (0..8).flat_map(|a| ((a + 1)..8).map(move |b| (a, b, (a + b) as u64 % 3 + 1))),
        );
        let side = max_cut_one_exchange(&g, 9);
        for v in 0..8 {
            let mut gain = 0i64;
            for &(u, w) in g.neighbors(v) {
                if side[u] == side[v] {
                    gain += w as i64;
                } else {
                    gain -= w as i64;
                }
            }
            assert!(gain <= 0, "vertex {v} still has positive flip gain");
        }
    }
}
