/// Union–find with parity: tracks, for every element, whether it sits on
/// the same or the opposite side as its set representative.
///
/// This answers incremental-bipartiteness queries in near-constant
/// amortized time: feed it "these two vertices must be on *different*
/// sides" constraints (one per CNOT for the cut-type machinery) and it
/// reports the first constraint that would close an odd cycle.
///
/// # Example
///
/// ```
/// use ecmas_partition::ParityDsu;
///
/// let mut dsu = ParityDsu::new(3);
/// assert!(dsu.union_different(0, 1));
/// assert!(dsu.union_different(1, 2));
/// // 0 and 2 are now provably on the same side:
/// assert_eq!(dsu.parity_between(0, 2), Some(0));
/// assert!(!dsu.union_different(0, 2)); // odd cycle rejected
/// ```
#[derive(Clone, Debug)]
pub struct ParityDsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Parity of the path from the element to its parent (0 = same side).
    parity: Vec<u8>,
}

impl ParityDsu {
    /// Creates a structure over `n` singleton elements.
    #[must_use]
    pub fn new(n: usize) -> Self {
        ParityDsu { parent: (0..n).collect(), rank: vec![0; n], parity: vec![0; n] }
    }

    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// `true` if the structure is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Finds the representative of `x` and the parity of `x` relative to
    /// it, with path compression.
    fn find(&mut self, x: usize) -> (usize, u8) {
        if self.parent[x] == x {
            return (x, 0);
        }
        let (root, p) = self.find(self.parent[x]);
        let total = self.parity[x] ^ p;
        self.parent[x] = root;
        self.parity[x] = total;
        (root, total)
    }

    /// The set representative of `x`.
    pub fn root(&mut self, x: usize) -> usize {
        self.find(x).0
    }

    /// `true` if `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a).0 == self.find(b).0
    }

    /// Relative parity of `a` and `b` if they are connected: `Some(0)` when
    /// they are forced to the same side, `Some(1)` when forced to opposite
    /// sides, `None` when not yet related.
    pub fn parity_between(&mut self, a: usize, b: usize) -> Option<u8> {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        (ra == rb).then_some(pa ^ pb)
    }

    /// Adds the constraint "`a` and `b` lie on *different* sides".
    /// Returns `false` — leaving the structure unchanged — if the
    /// constraint contradicts what is already known (an odd cycle).
    pub fn union_different(&mut self, a: usize, b: usize) -> bool {
        self.union_with_parity(a, b, 1)
    }

    /// Adds the constraint "`a` and `b` lie on the *same* side". Returns
    /// `false` if contradictory.
    pub fn union_same(&mut self, a: usize, b: usize) -> bool {
        self.union_with_parity(a, b, 0)
    }

    fn union_with_parity(&mut self, a: usize, b: usize, rel: u8) -> bool {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            return pa ^ pb == rel;
        }
        // Union by rank; fix up the attached root's parity so that
        // parity(a) ^ parity(b) == rel holds afterwards.
        let (big, small, p_big, p_small) =
            if self.rank[ra] >= self.rank[rb] { (ra, rb, pa, pb) } else { (rb, ra, pb, pa) };
        self.parent[small] = big;
        self.parity[small] = p_big ^ p_small ^ rel;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        true
    }

    /// Two-colors every element consistently with the recorded constraints:
    /// `side[x]` is the parity of `x` relative to its set representative,
    /// so elements constrained to differ get different sides.
    pub fn coloring(&mut self) -> Vec<u8> {
        (0..self.len()).map(|x| self.find(x).1).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_cycle_accepted_odd_rejected() {
        let mut dsu = ParityDsu::new(6);
        for i in 0..5 {
            assert!(dsu.union_different(i, i + 1));
        }
        assert!(dsu.union_different(5, 0), "6-cycle is even");

        let mut dsu = ParityDsu::new(5);
        for i in 0..4 {
            assert!(dsu.union_different(i, i + 1));
        }
        assert!(!dsu.union_different(4, 0), "5-cycle is odd");
    }

    #[test]
    fn union_same_interacts_with_union_different() {
        let mut dsu = ParityDsu::new(3);
        assert!(dsu.union_same(0, 1));
        assert!(dsu.union_different(1, 2));
        assert_eq!(dsu.parity_between(0, 2), Some(1));
        assert!(!dsu.union_same(0, 2));
    }

    #[test]
    fn failed_union_leaves_structure_usable() {
        let mut dsu = ParityDsu::new(3);
        assert!(dsu.union_different(0, 1));
        assert!(dsu.union_different(1, 2));
        assert!(!dsu.union_different(0, 2));
        // Still consistent afterwards.
        assert_eq!(dsu.parity_between(0, 1), Some(1));
        assert_eq!(dsu.parity_between(0, 2), Some(0));
    }

    #[test]
    fn coloring_respects_constraints() {
        let mut dsu = ParityDsu::new(7);
        dsu.union_different(0, 1);
        dsu.union_different(1, 2);
        dsu.union_different(4, 5);
        let side = dsu.coloring();
        assert_ne!(side[0], side[1]);
        assert_ne!(side[1], side[2]);
        assert_eq!(side[0], side[2]);
        assert_ne!(side[4], side[5]);
    }

    #[test]
    fn unrelated_elements_have_no_parity() {
        let mut dsu = ParityDsu::new(4);
        dsu.union_different(0, 1);
        assert_eq!(dsu.parity_between(0, 3), None);
        assert!(!dsu.same_set(0, 3));
    }

    /// Brute-force bipartiteness via BFS 2-coloring.
    fn bipartite_bfs(n: usize, edges: &[(usize, usize)]) -> bool {
        let mut adj = vec![Vec::new(); n];
        for &(a, b) in edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut color = vec![u8::MAX; n];
        for s in 0..n {
            if color[s] != u8::MAX {
                continue;
            }
            color[s] = 0;
            let mut queue = std::collections::VecDeque::from([s]);
            while let Some(v) = queue.pop_front() {
                for &w in &adj[v] {
                    if color[w] == u8::MAX {
                        color[w] = 1 - color[v];
                        queue.push_back(w);
                    } else if color[w] == color[v] {
                        return false;
                    }
                }
            }
        }
        true
    }

    proptest! {
        /// The DSU accepts a whole edge set iff BFS 2-coloring succeeds.
        #[test]
        fn dsu_matches_bfs_bipartiteness(
            edges in proptest::collection::vec((0usize..12, 0usize..12), 0..40)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().filter(|&(a, b)| a != b).collect();
            let mut dsu = ParityDsu::new(12);
            let dsu_ok = edges.iter().all(|&(a, b)| dsu.union_different(a, b));
            prop_assert_eq!(dsu_ok, bipartite_bfs(12, &edges));
        }

        /// When accepted, the DSU coloring properly 2-colors the edges.
        #[test]
        fn coloring_is_proper(
            edges in proptest::collection::vec((0usize..10, 0usize..10), 0..25)
        ) {
            let edges: Vec<(usize, usize)> =
                edges.into_iter().filter(|&(a, b)| a != b).collect();
            let mut dsu = ParityDsu::new(10);
            if edges.iter().all(|&(a, b)| dsu.union_different(a, b)) {
                let side = dsu.coloring();
                for (a, b) in edges {
                    prop_assert_ne!(side[a], side[b]);
                }
            }
        }
    }
}
