/// A lightweight undirected weighted graph: the partitioners' input type.
///
/// Kept independent of `ecmas-circuit` so this crate stays dependency-free;
/// the compiler converts a communication graph into a `WeightedGraph` with
/// [`from_edges`](Self::from_edges).
///
/// # Example
///
/// ```
/// use ecmas_partition::WeightedGraph;
///
/// let g = WeightedGraph::from_edges(3, [(0, 1, 2u64), (1, 2, 1)]);
/// assert_eq!(g.len(), 3);
/// assert_eq!(g.weighted_degree(1), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct WeightedGraph {
    n: usize,
    adj: Vec<Vec<(usize, u64)>>,
    edges: Vec<(usize, usize, u64)>,
}

impl WeightedGraph {
    /// Builds a graph over `n` vertices from `(a, b, weight)` triples.
    /// Parallel edges are merged by summing weights; self-loops are
    /// ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    #[must_use]
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize, u64)>) -> Self {
        let mut merged = std::collections::HashMap::new();
        for (a, b, w) in edges {
            assert!(a < n && b < n, "edge endpoint out of range");
            if a == b {
                continue;
            }
            *merged.entry((a.min(b), a.max(b))).or_insert(0u64) += w;
        }
        let mut edge_list: Vec<(usize, usize, u64)> =
            merged.into_iter().map(|((a, b), w)| (a, b, w)).collect();
        edge_list.sort_unstable();
        let mut adj = vec![Vec::new(); n];
        for &(a, b, w) in &edge_list {
            adj[a].push((b, w));
            adj[b].push((a, w));
        }
        WeightedGraph { n, adj, edges: edge_list }
    }

    /// Number of vertices.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the graph has no vertices.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Deduplicated `(a, b, weight)` edges with `a < b`, sorted.
    #[must_use]
    pub fn edges(&self) -> &[(usize, usize, u64)] {
        &self.edges
    }

    /// Neighbors of `v` with edge weights.
    #[must_use]
    pub fn neighbors(&self, v: usize) -> &[(usize, u64)] {
        &self.adj[v]
    }

    /// Sum of weights of edges incident to `v`.
    #[must_use]
    pub fn weighted_degree(&self, v: usize) -> u64 {
        self.adj[v].iter().map(|&(_, w)| w).sum()
    }

    /// Total weight of edges crossing the boolean partition `side`.
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != self.len()`.
    #[must_use]
    pub fn cut_weight(&self, side: &[bool]) -> u64 {
        assert_eq!(side.len(), self.n, "side length mismatch");
        self.edges.iter().filter(|&&(a, b, _)| side[a] != side[b]).map(|&(_, _, w)| w).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_parallel_edges() {
        let g = WeightedGraph::from_edges(3, [(0, 1, 1), (1, 0, 2), (1, 2, 1)]);
        assert_eq!(g.edges(), &[(0, 1, 3), (1, 2, 1)]);
    }

    #[test]
    fn ignores_self_loops() {
        let g = WeightedGraph::from_edges(2, [(0, 0, 5), (0, 1, 1)]);
        assert_eq!(g.edges(), &[(0, 1, 1)]);
    }

    #[test]
    fn cut_weight_counts_crossing_edges() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 2), (2, 3, 4)]);
        assert_eq!(g.cut_weight(&[false, false, true, true]), 2);
        assert_eq!(g.cut_weight(&[false, true, false, true]), 7);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_edges() {
        let _ = WeightedGraph::from_edges(2, [(0, 5, 1)]);
    }
}
