use rand::seq::SliceRandom;
use rand::Rng;

use crate::graph::WeightedGraph;

/// Kernighan–Lin weighted bisection: splits the vertices into a `false`
/// side of exactly `left_size` vertices and a `true` side with the rest,
/// heuristically minimizing the crossing weight.
///
/// Starts from a random balanced assignment and runs KL improvement passes
/// (swap the best pair, lock, keep the best prefix) until a pass yields no
/// gain. Deterministic given the RNG state.
///
/// # Panics
///
/// Panics if `left_size > graph.len()`.
///
/// # Example
///
/// ```
/// use ecmas_partition::{bisect, WeightedGraph};
/// use rand::SeedableRng;
///
/// // Two triangles joined by one light edge: the optimal bisection cuts it.
/// let g = WeightedGraph::from_edges(6, [
///     (0, 1, 5), (1, 2, 5), (0, 2, 5),
///     (3, 4, 5), (4, 5, 5), (3, 5, 5),
///     (2, 3, 1),
/// ]);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
/// let side = bisect(&g, 3, &mut rng);
/// assert_eq!(g.cut_weight(&side), 1);
/// ```
#[must_use]
pub fn bisect(graph: &WeightedGraph, left_size: usize, rng: &mut impl Rng) -> Vec<bool> {
    let n = graph.len();
    assert!(left_size <= n, "left side larger than the graph");
    if n == 0 {
        return Vec::new();
    }

    // Random balanced start.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(rng);
    let mut side = vec![true; n];
    for &v in order.iter().take(left_size) {
        side[v] = false;
    }

    // KL improvement passes.
    loop {
        let gain = kl_pass(graph, &mut side);
        if gain <= 0 {
            break;
        }
    }
    side
}

/// One KL pass; mutates `side` if a positive-gain prefix exists and returns
/// the committed gain.
fn kl_pass(graph: &WeightedGraph, side: &mut [bool]) -> i64 {
    let n = graph.len();
    // D[v] = external − internal incident weight.
    let mut d = vec![0i64; n];
    for v in 0..n {
        for &(u, w) in graph.neighbors(v) {
            let w = i64::try_from(w).unwrap_or(i64::MAX);
            if side[u] == side[v] {
                d[v] -= w;
            } else {
                d[v] += w;
            }
        }
    }

    let mut locked = vec![false; n];
    let mut trial = side.to_vec();
    let mut swaps: Vec<(usize, usize, i64)> = Vec::new();
    let pair_count =
        trial.iter().filter(|&&s| !s).count().min(trial.iter().filter(|&&s| s).count());

    for _ in 0..pair_count {
        // Best unlocked (left, right) pair by gain = D[a] + D[b] − 2·w(a,b).
        let mut best: Option<(usize, usize, i64)> = None;
        for a in 0..n {
            if locked[a] || trial[a] {
                continue;
            }
            for b in 0..n {
                if locked[b] || !trial[b] {
                    continue;
                }
                let w_ab = graph
                    .neighbors(a)
                    .iter()
                    .find(|&&(u, _)| u == b)
                    .map_or(0i64, |&(_, w)| i64::try_from(w).unwrap_or(i64::MAX));
                let gain = d[a] + d[b] - 2 * w_ab;
                if best.is_none_or(|(_, _, g)| gain > g) {
                    best = Some((a, b, gain));
                }
            }
        }
        let Some((a, b, gain)) = best else { break };
        // Tentatively swap and lock.
        trial[a] = true;
        trial[b] = false;
        locked[a] = true;
        locked[b] = true;
        swaps.push((a, b, gain));
        // Update D for unlocked vertices.
        for &(u, w) in graph.neighbors(a) {
            if !locked[u] {
                let w = i64::try_from(w).unwrap_or(i64::MAX);
                // `a` moved from u's perspective: same-side ↔ cross-side.
                if trial[u] == trial[a] {
                    d[u] -= 2 * w;
                } else {
                    d[u] += 2 * w;
                }
            }
        }
        for &(u, w) in graph.neighbors(b) {
            if !locked[u] {
                let w = i64::try_from(w).unwrap_or(i64::MAX);
                if trial[u] == trial[b] {
                    d[u] -= 2 * w;
                } else {
                    d[u] += 2 * w;
                }
            }
        }
    }

    // Best prefix of cumulative gains.
    let mut cumulative = 0i64;
    let mut best_prefix = 0usize;
    let mut best_gain = 0i64;
    for (k, &(_, _, g)) in swaps.iter().enumerate() {
        cumulative += g;
        if cumulative > best_gain {
            best_gain = cumulative;
            best_prefix = k + 1;
        }
    }
    if best_gain > 0 {
        for &(a, b, _) in &swaps[..best_prefix] {
            side[a] = true;
            side[b] = false;
        }
    }
    best_gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(42)
    }

    #[test]
    fn sizes_are_exact() {
        let g = WeightedGraph::from_edges(7, [(0, 1, 1), (2, 3, 1), (4, 5, 1)]);
        for left in 0..=7 {
            let side = bisect(&g, left, &mut rng());
            assert_eq!(side.iter().filter(|&&s| !s).count(), left);
        }
    }

    #[test]
    fn separates_two_cliques() {
        let mut edges = Vec::new();
        for a in 0..4 {
            for b in a + 1..4 {
                edges.push((a, b, 10));
                edges.push((a + 4, b + 4, 10));
            }
        }
        edges.push((0, 4, 1));
        let g = WeightedGraph::from_edges(8, edges);
        let side = bisect(&g, 4, &mut rng());
        assert_eq!(g.cut_weight(&side), 1);
    }

    #[test]
    fn handles_empty_and_singleton() {
        let g = WeightedGraph::from_edges(0, []);
        assert!(bisect(&g, 0, &mut rng()).is_empty());
        let g = WeightedGraph::from_edges(1, []);
        assert_eq!(bisect(&g, 1, &mut rng()), vec![false]);
        assert_eq!(bisect(&g, 0, &mut rng()), vec![true]);
    }

    #[test]
    fn never_worse_than_random_start() {
        // KL only commits positive-gain prefixes, so the result can't be
        // worse than some balanced partition; sanity-check it's decent on a
        // path graph.
        let g = WeightedGraph::from_edges(10, (0..9).map(|i| (i, i + 1, 1)));
        let side = bisect(&g, 5, &mut rng());
        assert!(g.cut_weight(&side) <= 3, "path bisection should cut few edges");
    }
}
