use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::bisect::bisect;
use crate::graph::WeightedGraph;

/// A qubit → tile-slot assignment on a `rows × cols` tile array, scored by
/// the paper's communication cost `f = Σ γ_ij · manhattan(slot_i, slot_j)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    rows: usize,
    cols: usize,
    slot_of: Vec<usize>,
    cost: u64,
}

impl Placement {
    /// Tile-array rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Tile-array columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Slot (`r · cols + c`) assigned to each qubit.
    #[must_use]
    pub fn slot_of(&self) -> &[usize] {
        &self.slot_of
    }

    /// Communication cost `f = Σ γ_ij · l_ij` of this mapping.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.cost
    }
}

fn manhattan(cols: usize, a: usize, b: usize) -> u64 {
    let (ra, ca) = (a / cols, a % cols);
    let (rb, cb) = (b / cols, b % cols);
    (ra.abs_diff(rb) + ca.abs_diff(cb)) as u64
}

fn total_cost(graph: &WeightedGraph, cols: usize, slot_of: &[usize]) -> u64 {
    graph.edges().iter().map(|&(a, b, w)| w * manhattan(cols, slot_of[a], slot_of[b])).sum()
}

/// Places the vertices of `graph` onto a `rows × cols` tile array by
/// recursive KL bisection followed by pairwise-swap refinement, repeated
/// `restarts` times with different random streams; the cheapest mapping
/// wins. This is the *mapping establishing* step of the paper (§IV-B1),
/// with the recursive bisectioner substituting for Metis.
///
/// # Panics
///
/// Panics if `graph.len() > rows * cols`.
///
/// # Example
///
/// ```
/// use ecmas_partition::{place, WeightedGraph};
///
/// // A 4-path placed on a 2×2 array: every edge can be adjacent.
/// let g = WeightedGraph::from_edges(4, [(0, 1, 1), (1, 2, 1), (2, 3, 1)]);
/// let p = place(&g, 2, 2, 4, 7);
/// assert_eq!(p.cost(), 3);
/// ```
#[must_use]
pub fn place(
    graph: &WeightedGraph,
    rows: usize,
    cols: usize,
    restarts: usize,
    seed: u64,
) -> Placement {
    place_opts(graph, rows, cols, restarts, seed, true)
}

/// [`place`] with the swap-refinement pass optional. `refine = false`
/// reproduces a bare recursive-bisection (Metis-style) mapping, used as the
/// "Metis" baseline of the paper's Table II.
///
/// # Panics
///
/// Panics if `graph.len() > rows * cols`.
#[must_use]
pub fn place_opts(
    graph: &WeightedGraph,
    rows: usize,
    cols: usize,
    restarts: usize,
    seed: u64,
    refine_pass: bool,
) -> Placement {
    place_masked(graph, rows, cols, restarts, seed, refine_pass, &vec![false; rows * cols])
}

/// [`place_opts`] over a tile array with forbidden (defective) slots: no
/// qubit is ever assigned to a slot whose `forbidden` flag is set, by the
/// bisection targets (proportional to *live* slot counts), the base-case
/// drop, and the refinement moves alike.
///
/// With an all-false mask every live count equals the geometric slot
/// count, so this runs the exact `place_opts` arithmetic — same random
/// stream, same mapping, bit for bit.
///
/// # Panics
///
/// Panics if `forbidden.len() != rows * cols` or if `graph.len()` exceeds
/// the number of live slots.
#[must_use]
pub fn place_masked(
    graph: &WeightedGraph,
    rows: usize,
    cols: usize,
    restarts: usize,
    seed: u64,
    refine_pass: bool,
    forbidden: &[bool],
) -> Placement {
    let n = graph.len();
    assert_eq!(forbidden.len(), rows * cols, "defect mask must cover the tile array");
    let live = forbidden.iter().filter(|&&f| !f).count();
    assert!(n <= live, "{n} qubits do not fit in {live} live slots of a {rows}×{cols} array");
    let mut best: Option<Placement> = None;
    for r in 0..restarts.max(1) {
        let mut rng =
            SmallRng::seed_from_u64(seed.wrapping_add(r as u64).wrapping_mul(0x9E37_79B9));
        let mut slot_of = vec![usize::MAX; n];
        let qubits: Vec<usize> = (0..n).collect();
        recurse(
            graph,
            &qubits,
            0,
            rows,
            0,
            cols,
            cols,
            slot_of.as_mut_slice(),
            forbidden,
            &mut rng,
        );
        if refine_pass {
            refine(graph, rows, cols, &mut slot_of, forbidden);
        }
        let cost = total_cost(graph, cols, &slot_of);
        if best.as_ref().is_none_or(|b| cost < b.cost) {
            best = Some(Placement { rows, cols, slot_of, cost });
        }
    }
    best.expect("at least one restart")
}

/// Recursively bisects `qubits` into the slot region `[r0,r1)×[c0,c1)`,
/// sizing the halves by their *live* (non-forbidden) slot counts.
#[allow(clippy::too_many_arguments)]
fn recurse(
    graph: &WeightedGraph,
    qubits: &[usize],
    r0: usize,
    r1: usize,
    c0: usize,
    c1: usize,
    cols: usize,
    slot_of: &mut [usize],
    forbidden: &[bool],
    rng: &mut SmallRng,
) {
    if qubits.is_empty() {
        return;
    }
    let region_rows = r1 - r0;
    let region_cols = c1 - c0;
    if region_rows * region_cols == 1 || qubits.len() == 1 {
        // Base case: drop remaining qubits into the region's live slots
        // row-major. (At most one qubit remains unless the region is a
        // single slot.)
        let mut slots =
            (r0..r1).flat_map(|r| (c0..c1).map(move |c| r * cols + c)).filter(|&s| !forbidden[s]);
        for &q in qubits {
            slot_of[q] = slots.next().expect("region has room");
        }
        return;
    }

    let live_in = |r0: usize, r1: usize, c0: usize, c1: usize| -> usize {
        (r0..r1).map(|r| (c0..c1).filter(|&c| !forbidden[r * cols + c]).count()).sum()
    };

    // Split the longer dimension.
    let (a_slots, regions) = if region_rows >= region_cols {
        let rm = r0 + region_rows / 2;
        (live_in(r0, rm, c0, c1), ((r0, rm, c0, c1), (rm, r1, c0, c1)))
    } else {
        let cm = c0 + region_cols / 2;
        (live_in(r0, r1, c0, cm), ((r0, r1, c0, cm), (r0, r1, cm, c1)))
    };
    let total_slots = live_in(r0, r1, c0, c1);
    let b_slots = total_slots - a_slots;

    // Target sizes proportional to slot counts, clamped to fit.
    let k = qubits.len();
    let mut ka = (k * a_slots + total_slots / 2) / total_slots;
    ka = ka.min(a_slots).max(k.saturating_sub(b_slots));

    // Bisect the induced subgraph.
    let mut index_of = vec![usize::MAX; graph.len()];
    for (i, &q) in qubits.iter().enumerate() {
        index_of[q] = i;
    }
    let sub_edges =
        graph.edges().iter().filter_map(|&(a, b, w)| match (index_of[a], index_of[b]) {
            (ia, ib) if ia != usize::MAX && ib != usize::MAX => Some((ia, ib, w)),
            _ => None,
        });
    let sub = WeightedGraph::from_edges(k, sub_edges);
    let side = bisect(&sub, ka, rng);

    let left: Vec<usize> =
        qubits.iter().enumerate().filter(|&(i, _)| !side[i]).map(|(_, &q)| q).collect();
    let right: Vec<usize> =
        qubits.iter().enumerate().filter(|&(i, _)| side[i]).map(|(_, &q)| q).collect();
    let ((ar0, ar1, ac0, ac1), (br0, br1, bc0, bc1)) = regions;
    recurse(graph, &left, ar0, ar1, ac0, ac1, cols, slot_of, forbidden, rng);
    recurse(graph, &right, br0, br1, bc0, bc1, cols, slot_of, forbidden, rng);
}

/// Best-improvement local search: swap two qubits or move a qubit to a free
/// slot while the cost decreases.
///
/// The cost deltas are evaluated through per-qubit *attraction profiles*:
/// Manhattan distance separates into row and column terms, so the weighted
/// distance from a candidate slot `(r, c)` to all of `q`'s neighbors is
/// `A_q(r) + B_q(c)`, and both profiles come from a weighted histogram of
/// the neighbors' current rows/columns in two prefix passes. Each round
/// then costs `O(E + n·(rows + cols) + n·slots)` instead of a graph scan
/// per candidate, while producing the *same integers* — and therefore the
/// same move sequence and final mapping — as the naive
/// `Σ w·(d(to, s_u) − d(from, s_u))` evaluation.
fn refine(
    graph: &WeightedGraph,
    rows: usize,
    cols: usize,
    slot_of: &mut [usize],
    forbidden: &[bool],
) {
    let n = graph.len();
    let slots = rows * cols;
    let mut occupant: Vec<Option<usize>> = vec![None; slots];
    for (q, &s) in slot_of.iter().enumerate() {
        occupant[s] = Some(q);
    }
    let clamp = |w: u64| i64::try_from(w).unwrap_or(i64::MAX);
    // Dense pair-weight table for the swap correction term (γ_qp): a swap
    // leaves the q–p edge length unchanged, so its contribution must be
    // backed out of the two one-sided deltas. n is a tile-array
    // population, so n² stays small.
    let mut weight = vec![0i64; n * n];
    for q in 0..n {
        for &(u, w) in graph.neighbors(q) {
            weight[q * n + u] = clamp(w);
        }
    }
    let mut row_hist = vec![0i64; rows];
    let mut col_hist = vec![0i64; cols];
    let mut row_profile = vec![0i64; n * rows];
    let mut col_profile = vec![0i64; n * cols];
    // `A(x) = Σ_u w_u·|x − x_u|` for every coordinate `x`, from the
    // neighbors' weighted coordinate histogram in two sweeps.
    fn fill_profile(hist: &[i64], out: &mut [i64]) {
        let (mut below, mut acc) = (0i64, 0i64);
        for (x, o) in out.iter_mut().enumerate() {
            acc += below;
            *o = acc;
            below += hist[x];
        }
        let (mut above, mut acc) = (0i64, 0i64);
        for (x, o) in out.iter_mut().enumerate().rev() {
            acc += above;
            *o += acc;
            above += hist[x];
        }
    }

    for _round in 0..4 * n.max(1) {
        for q in 0..n {
            row_hist.fill(0);
            col_hist.fill(0);
            for &(u, w) in graph.neighbors(q) {
                let s = slot_of[u];
                row_hist[s / cols] += clamp(w);
                col_hist[s % cols] += clamp(w);
            }
            fill_profile(&row_hist, &mut row_profile[q * rows..(q + 1) * rows]);
            fill_profile(&col_hist, &mut col_profile[q * cols..(q + 1) * cols]);
        }
        let attraction = |q: usize, slot: usize| -> i64 {
            row_profile[q * rows + slot / cols] + col_profile[q * cols + slot % cols]
        };
        let mut best: Option<(usize, Option<usize>, usize, i64)> = None; // (q, partner, target_slot, delta)
        for q in 0..n {
            let from = slot_of[q];
            let a_from = attraction(q, from);
            for (target, &occ) in occupant.iter().enumerate() {
                if target == from || forbidden[target] {
                    continue;
                }
                match occ {
                    None => {
                        let d = attraction(q, target) - a_from;
                        if best.is_none_or(|(_, _, _, bd)| d < bd) {
                            best = Some((q, None, target, d));
                        }
                    }
                    Some(p) => {
                        if p <= q {
                            continue; // each unordered pair once
                        }
                        // The q–p edge length is unchanged by a swap; the
                        // profiles counted its endpoints moving apart and
                        // together, so restore 2·γ_qp·d(from, target).
                        let d = (attraction(q, target) - a_from)
                            + (attraction(p, from) - attraction(p, target))
                            + 2 * weight[q * n + p] * manhattan(cols, from, target) as i64;
                        if best.is_none_or(|(_, _, _, bd)| d < bd) {
                            best = Some((q, Some(p), target, d));
                        }
                    }
                }
            }
        }
        match best {
            Some((q, partner, target, d)) if d < 0 => {
                let from = slot_of[q];
                slot_of[q] = target;
                occupant[target] = Some(q);
                if let Some(p) = partner {
                    slot_of[p] = from;
                    occupant[from] = Some(p);
                } else {
                    occupant[from] = None;
                }
            }
            _ => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_injective_and_in_range() {
        let g = WeightedGraph::from_edges(7, (0..6).map(|i| (i, i + 1, 1)));
        let p = place(&g, 3, 3, 3, 11);
        let mut seen = std::collections::HashSet::new();
        for &s in p.slot_of() {
            assert!(s < 9);
            assert!(seen.insert(s), "slot reused");
        }
    }

    #[test]
    fn ring_on_grid_is_near_optimal() {
        // An 8-ring on a 3×3 array can be laid out with every edge adjacent
        // (cost 8). Allow a small slack for the heuristic.
        let g = WeightedGraph::from_edges(8, (0..8).map(|i| (i, (i + 1) % 8, 1)));
        let p = place(&g, 3, 3, 8, 5);
        assert!(p.cost() <= 10, "ring cost {} too high", p.cost());
    }

    #[test]
    fn heavy_pair_lands_adjacent() {
        let g = WeightedGraph::from_edges(5, [(0, 1, 100), (2, 3, 1), (3, 4, 1)]);
        let p = place(&g, 3, 3, 4, 3);
        assert_eq!(manhattan(3, p.slot_of()[0], p.slot_of()[1]), 1);
    }

    #[test]
    fn more_restarts_never_hurt() {
        let g = WeightedGraph::from_edges(
            9,
            (0..9).flat_map(|a| ((a + 1)..9).map(move |b| (a, b, ((a * b) % 5 + 1) as u64))),
        );
        let one = place(&g, 3, 3, 1, 17);
        let many = place(&g, 3, 3, 12, 17);
        assert!(many.cost() <= one.cost());
    }

    #[test]
    fn cost_matches_direct_computation() {
        let g = WeightedGraph::from_edges(4, [(0, 1, 2), (1, 2, 3), (0, 3, 1)]);
        let p = place(&g, 2, 2, 2, 1);
        assert_eq!(p.cost(), total_cost(&g, 2, p.slot_of()));
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn rejects_overfull_array() {
        let g = WeightedGraph::from_edges(5, []);
        let _ = place(&g, 2, 2, 1, 0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let g = WeightedGraph::from_edges(6, (0..5).map(|i| (i, i + 1, 1)));
        assert_eq!(place(&g, 3, 2, 3, 9), place(&g, 3, 2, 3, 9));
    }

    #[test]
    fn all_false_mask_is_bit_identical_to_unmasked() {
        let g = WeightedGraph::from_edges(
            9,
            (0..9).flat_map(|a| ((a + 1)..9).map(move |b| (a, b, ((a * b) % 5 + 1) as u64))),
        );
        for refine_pass in [false, true] {
            let unmasked = place_opts(&g, 4, 3, 6, 13, refine_pass);
            let masked = place_masked(&g, 4, 3, 6, 13, refine_pass, &[false; 12]);
            assert_eq!(unmasked, masked, "refine={refine_pass}");
        }
    }

    #[test]
    fn forbidden_slots_are_never_assigned() {
        let g = WeightedGraph::from_edges(
            10,
            (0..10).flat_map(|a| ((a + 1)..10).map(move |b| (a, b, ((a + b) % 4 + 1) as u64))),
        );
        let mut forbidden = vec![false; 16];
        for dead in [0, 5, 6, 10, 15] {
            forbidden[dead] = true;
        }
        for seed in 0..8u64 {
            let p = place_masked(&g, 4, 4, 4, seed, true, &forbidden);
            let mut seen = std::collections::HashSet::new();
            for &s in p.slot_of() {
                assert!(!forbidden[s], "seed {seed}: qubit placed on dead slot {s}");
                assert!(seen.insert(s), "seed {seed}: slot {s} reused");
            }
        }
    }

    #[test]
    #[should_panic(expected = "do not fit")]
    fn rejects_overfull_live_capacity() {
        // 4 slots, 1 dead: 4 qubits no longer fit.
        let g = WeightedGraph::from_edges(4, []);
        let _ = place_masked(&g, 2, 2, 1, 0, true, &[true, false, false, false]);
    }
}
