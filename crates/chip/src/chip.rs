use crate::error::ChipError;
use crate::grid::RoutingGrid;

/// The surface-code flavour a chip is operated under (paper §II-B).
///
/// The two models share the tile-array abstraction but differ in CNOT
/// implementation: double defect braids paths through channels (1 clock
/// cycle between opposite cut types, 3 between equal ones), lattice surgery
/// builds Bell states along ancilla-tile paths (always 1 clock cycle).
/// Paths within a cycle must be node-disjoint for braiding and
/// edge-disjoint for lattice surgery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodeModel {
    /// Double-defect encoding [Fowler et al. 2012]: 5d×5d tiles, braiding
    /// lanes 2.5d wide.
    DoubleDefect,
    /// Lattice-surgery encoding [Horsman et al. 2012]: ⌈√2·d⌉-wide rotated
    /// tiles; channels are rows of ancilla tiles.
    LatticeSurgery,
}

impl CodeModel {
    /// Display name used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodeModel::DoubleDefect => "double defect",
            CodeModel::LatticeSurgery => "lattice surgery",
        }
    }
}

/// A surface-code chip: an `R × C` array of logical tile slots separated
/// and bordered by channels with per-channel integer bandwidth.
///
/// There are `R + 1` horizontal channels (running between/outside tile
/// rows) and `C + 1` vertical channels. Channel bandwidths are the number
/// of parallel CNOT paths the channel can carry side by side; the *chip
/// bandwidth* is the minimum over all channels (paper §III-A).
///
/// # Example
///
/// ```
/// use ecmas_chip::{Chip, CodeModel};
///
/// let mut chip = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)?;
/// assert_eq!(chip.bandwidth(), 1);
/// chip.set_v_bandwidth(1, 3)?; // widen one busy vertical channel
/// assert_eq!(chip.v_bandwidth(1), 3);
/// assert_eq!(chip.bandwidth(), 1); // chip bandwidth is still the min
/// # Ok::<(), ecmas_chip::ChipError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chip {
    model: CodeModel,
    tile_rows: usize,
    tile_cols: usize,
    h_bandwidth: Vec<u32>,
    v_bandwidth: Vec<u32>,
    code_distance: u32,
}

impl Chip {
    /// Creates a chip with `rows × cols` tile slots and the same
    /// `bandwidth` on every channel.
    ///
    /// # Errors
    ///
    /// Returns an error if the tile array is empty or `d == 0`.
    pub fn uniform(
        model: CodeModel,
        rows: usize,
        cols: usize,
        bandwidth: u32,
        code_distance: u32,
    ) -> Result<Self, ChipError> {
        if rows == 0 || cols == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        if code_distance == 0 {
            return Err(ChipError::ZeroCodeDistance);
        }
        Ok(Chip {
            model,
            tile_rows: rows,
            tile_cols: cols,
            h_bandwidth: vec![bandwidth; rows + 1],
            v_bandwidth: vec![bandwidth; cols + 1],
            code_distance,
        })
    }

    /// The paper's *minimum viable* configuration for an `n`-qubit circuit:
    /// a `⌈√n⌉ × ⌈√n⌉` tile array with bandwidth 1 everywhere — the
    /// smallest square chip that can host every qubit and still route.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn min_viable(model: CodeModel, n: usize, code_distance: u32) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = int_sqrt_ceil(n);
        Chip::uniform(model, side, side, 1, code_distance)
    }

    /// The paper's *4x resources* configuration: same tile array as
    /// [`min_viable`](Self::min_viable) with every channel doubled to
    /// bandwidth 2 (≈4× the physical qubits at the evaluated sizes).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn four_x(model: CodeModel, n: usize, code_distance: u32) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = int_sqrt_ceil(n);
        Chip::uniform(model, side, side, 2, code_distance)
    }

    /// A deliberately *congested* limited-resources configuration: the
    /// tile array is twice the minimum-viable side (`2·⌈√n⌉` per side)
    /// while every channel stays at the bandwidth-1 floor. Spreading
    /// mappings (like the trivial snake) put communicating qubits far
    /// apart, long paths fight over single-lane channels, and routing
    /// pressure — not tile scarcity — dominates. This is the chip the
    /// Table II / Table IV ablations need to discriminate: on
    /// [`min_viable`](Self::min_viable) chips every ablation circuit
    /// schedules at the depth bound and the knobs measure nothing.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn congested(model: CodeModel, n: usize, code_distance: u32) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = 2 * int_sqrt_ceil(n);
        Chip::uniform(model, side, side, 1, code_distance)
    }

    /// The *sufficient resources* configuration used by Ecmas-ReSu: the
    /// smallest uniform bandwidth whose Chip Communication Capacity
    /// `⌊(b−1)/2⌋ + 3` (Theorem 2) reaches the circuit's parallelism
    /// degree `gpm`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn sufficient(
        model: CodeModel,
        n: usize,
        gpm: usize,
        code_distance: u32,
    ) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = int_sqrt_ceil(n);
        let bandwidth = Self::bandwidth_for_capacity(gpm);
        Chip::uniform(model, side, side, bandwidth, code_distance)
    }

    /// The smallest bandwidth `b` with `⌊(b−1)/2⌋ + 3 ≥ capacity`
    /// (inverse of Theorem 2; 1 when three parallel gates suffice).
    #[must_use]
    pub fn bandwidth_for_capacity(capacity: usize) -> u32 {
        if capacity <= 3 {
            1
        } else {
            u32::try_from(2 * (capacity - 3) + 1).unwrap_or(u32::MAX)
        }
    }

    /// The encoding model.
    #[must_use]
    pub fn model(&self) -> CodeModel {
        self.model
    }

    /// Tile-array rows `R`.
    #[must_use]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile-array columns `C`.
    #[must_use]
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of tile slots `R·C`.
    #[must_use]
    pub fn tile_slots(&self) -> usize {
        self.tile_rows * self.tile_cols
    }

    /// Code distance `d`.
    #[must_use]
    pub fn code_distance(&self) -> u32 {
        self.code_distance
    }

    /// Bandwidth of horizontal channel `i` (0 = above the first tile row).
    ///
    /// # Panics
    ///
    /// Panics if `i > R`.
    #[must_use]
    pub fn h_bandwidth(&self, i: usize) -> u32 {
        self.h_bandwidth[i]
    }

    /// Bandwidth of vertical channel `j` (0 = left of the first tile column).
    ///
    /// # Panics
    ///
    /// Panics if `j > C`.
    #[must_use]
    pub fn v_bandwidth(&self, j: usize) -> u32 {
        self.v_bandwidth[j]
    }

    /// All horizontal channel bandwidths (length `R + 1`).
    #[must_use]
    pub fn h_bandwidths(&self) -> &[u32] {
        &self.h_bandwidth
    }

    /// All vertical channel bandwidths (length `C + 1`).
    #[must_use]
    pub fn v_bandwidths(&self) -> &[u32] {
        &self.v_bandwidth
    }

    /// Sets the bandwidth of horizontal channel `i`.
    ///
    /// # Errors
    ///
    /// Returns an error if `i > R`.
    pub fn set_h_bandwidth(&mut self, i: usize, bandwidth: u32) -> Result<(), ChipError> {
        let channels = self.h_bandwidth.len();
        *self
            .h_bandwidth
            .get_mut(i)
            .ok_or(ChipError::ChannelOutOfRange { index: i, channels })? = bandwidth;
        Ok(())
    }

    /// Sets the bandwidth of vertical channel `j`.
    ///
    /// # Errors
    ///
    /// Returns an error if `j > C`.
    pub fn set_v_bandwidth(&mut self, j: usize, bandwidth: u32) -> Result<(), ChipError> {
        let channels = self.v_bandwidth.len();
        *self
            .v_bandwidth
            .get_mut(j)
            .ok_or(ChipError::ChannelOutOfRange { index: j, channels })? = bandwidth;
        Ok(())
    }

    /// The chip's bandwidth: the minimum over all channels (paper §III-A).
    #[must_use]
    pub fn bandwidth(&self) -> u32 {
        self.h_bandwidth
            .iter()
            .chain(&self.v_bandwidth)
            .copied()
            .min()
            .expect("chips always have channels")
    }

    /// Chip Communication Capacity `C = ⌊(b−1)/2⌋ + 3` (Theorem 2): the
    /// number of independent CNOTs that can always run simultaneously
    /// regardless of tile placement.
    #[must_use]
    pub fn communication_capacity(&self) -> usize {
        ((self.bandwidth() as usize - 1) / 2) + 3
    }

    /// Builds the routing grid (one blocked cell per tile slot, `b` free
    /// lanes per channel).
    #[must_use]
    pub fn grid(&self) -> RoutingGrid {
        RoutingGrid::new(self)
    }

    /// Manhattan distance between two tile slots, in tile units — the
    /// `l_ij` of the mapping cost function `f = Σ γ_ij · l_ij`.
    #[must_use]
    pub fn tile_distance(&self, slot_a: usize, slot_b: usize) -> usize {
        let (ra, ca) = (slot_a / self.tile_cols, slot_a % self.tile_cols);
        let (rb, cb) = (slot_b / self.tile_cols, slot_b % self.tile_cols);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Physical qubit count in units of `d²` — the x-axis of the paper's
    /// Fig. 12. Double defect: side = `5·tiles + 2.5·Σ bandwidth`; lattice
    /// surgery: side = `√2·(tiles + Σ bandwidth)`.
    ///
    /// For a 7×7 tile array with uniform bandwidth 1…5 this reproduces the
    /// paper's x-axis values 3025…18225 (double defect) and 450…4418
    /// (lattice surgery).
    #[must_use]
    pub fn physical_qubits_per_d2(&self) -> f64 {
        let h_lanes: u32 = self.h_bandwidth.iter().sum();
        let v_lanes: u32 = self.v_bandwidth.iter().sum();
        match self.model {
            CodeModel::DoubleDefect => {
                let height = 5.0 * self.tile_rows as f64 + 2.5 * f64::from(h_lanes);
                let width = 5.0 * self.tile_cols as f64 + 2.5 * f64::from(v_lanes);
                height * width
            }
            CodeModel::LatticeSurgery => {
                let height = self.tile_rows as f64 + f64::from(h_lanes);
                let width = self.tile_cols as f64 + f64::from(v_lanes);
                2.0 * height * width
            }
        }
    }

    /// Absolute physical qubit count for the chip's code distance.
    #[must_use]
    pub fn physical_qubits(&self) -> u64 {
        let d2 = f64::from(self.code_distance * self.code_distance);
        (self.physical_qubits_per_d2() * d2).round() as u64
    }
}

/// `⌈√n⌉` without floating point.
fn int_sqrt_ceil(n: usize) -> usize {
    let mut s = 1usize;
    while s * s < n {
        s += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_viable_side_is_sqrt_ceiling() {
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (4, 4));
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 9, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (3, 3));
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 50, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (8, 8));
    }

    #[test]
    fn congested_doubles_the_side_at_bandwidth_one() {
        let chip = Chip::congested(CodeModel::LatticeSurgery, 10, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (8, 8));
        assert_eq!(chip.bandwidth(), 1);
        assert_eq!(Chip::congested(CodeModel::DoubleDefect, 0, 3), Err(ChipError::EmptyTileArray));
    }

    #[test]
    fn bandwidth_is_channel_minimum() {
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 3).unwrap();
        assert_eq!(chip.bandwidth(), 2);
        chip.set_h_bandwidth(1, 5).unwrap();
        assert_eq!(chip.bandwidth(), 2);
        chip.set_v_bandwidth(0, 1).unwrap();
        assert_eq!(chip.bandwidth(), 1);
    }

    #[test]
    fn capacity_matches_theorem2() {
        for (b, cap) in [(1, 3), (2, 3), (3, 4), (5, 5), (7, 6)] {
            let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, b, 3).unwrap();
            assert_eq!(chip.communication_capacity(), cap, "bandwidth {b}");
        }
    }

    #[test]
    fn bandwidth_for_capacity_inverts_theorem2() {
        for gpm in 1..40 {
            let b = Chip::bandwidth_for_capacity(gpm);
            let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, b, 3).unwrap();
            assert!(chip.communication_capacity() >= gpm, "gpm={gpm} b={b}");
            if b > 1 {
                let smaller = Chip::uniform(CodeModel::DoubleDefect, 2, 2, b - 2, 3);
                if let Ok(smaller) = smaller {
                    assert!(smaller.communication_capacity() < gpm, "b not minimal for gpm={gpm}");
                }
            }
        }
    }

    #[test]
    fn fig12_x_axis_double_defect() {
        // 49 qubits → 7×7 tiles; bandwidth 1..=5 must give the paper's
        // 3025, 5625, 9025, 13225, 18225 physical qubits per d².
        let expected = [3025.0, 5625.0, 9025.0, 13225.0, 18225.0];
        for (b, want) in (1..=5).zip(expected) {
            let chip = Chip::uniform(CodeModel::DoubleDefect, 7, 7, b, 3).unwrap();
            assert!((chip.physical_qubits_per_d2() - want).abs() < 1e-9, "b={b}");
        }
    }

    #[test]
    fn fig12_x_axis_lattice_surgery() {
        let expected = [450.0, 1058.0, 1922.0, 3042.0, 4418.0];
        for (b, want) in (1..=5).zip(expected) {
            let chip = Chip::uniform(CodeModel::LatticeSurgery, 7, 7, b, 3).unwrap();
            assert!((chip.physical_qubits_per_d2() - want).abs() < 1e-9, "b={b}");
        }
    }

    #[test]
    fn tile_distance_is_manhattan() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 3, 4, 1, 3).unwrap();
        // slot 0 = (0,0), slot 11 = (2,3)
        assert_eq!(chip.tile_distance(0, 11), 5);
        assert_eq!(chip.tile_distance(5, 5), 0);
        assert_eq!(chip.tile_distance(1, 2), 1);
    }

    #[test]
    fn constructors_validate() {
        assert_eq!(
            Chip::uniform(CodeModel::DoubleDefect, 0, 3, 1, 3),
            Err(ChipError::EmptyTileArray)
        );
        assert_eq!(
            Chip::uniform(CodeModel::DoubleDefect, 3, 3, 1, 0),
            Err(ChipError::ZeroCodeDistance)
        );
        assert_eq!(Chip::min_viable(CodeModel::DoubleDefect, 0, 3), Err(ChipError::EmptyTileArray));
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        assert!(chip.set_h_bandwidth(3, 1).is_err());
        assert!(chip.set_h_bandwidth(2, 4).is_ok());
    }

    #[test]
    fn physical_qubits_scale_with_distance() {
        // 3×3 tiles, bandwidth 2: side = 15 + 2.5·8 = 35 ⇒ 1225·d² exactly.
        let d3 = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 3).unwrap();
        let d6 = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 6).unwrap();
        assert_eq!(d3.physical_qubits(), 1225 * 9);
        assert_eq!(d6.physical_qubits(), 4 * d3.physical_qubits());
    }
}
