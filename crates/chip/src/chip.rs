use crate::error::ChipError;
use crate::grid::RoutingGrid;

/// The surface-code flavour a chip is operated under (paper §II-B).
///
/// The two models share the tile-array abstraction but differ in CNOT
/// implementation: double defect braids paths through channels (1 clock
/// cycle between opposite cut types, 3 between equal ones), lattice surgery
/// builds Bell states along ancilla-tile paths (always 1 clock cycle).
/// Paths within a cycle must be node-disjoint for braiding and
/// edge-disjoint for lattice surgery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CodeModel {
    /// Double-defect encoding [Fowler et al. 2012]: 5d×5d tiles, braiding
    /// lanes 2.5d wide.
    DoubleDefect,
    /// Lattice-surgery encoding [Horsman et al. 2012]: ⌈√2·d⌉-wide rotated
    /// tiles; channels are rows of ancilla tiles.
    LatticeSurgery,
}

impl CodeModel {
    /// Display name used in reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodeModel::DoubleDefect => "double defect",
            CodeModel::LatticeSurgery => "lattice surgery",
        }
    }
}

/// A surface-code chip: an `R × C` array of logical tile slots separated
/// and bordered by channels with per-channel integer bandwidth, plus a
/// capability description of what actually works on the physical device.
///
/// There are `R + 1` horizontal channels (running between/outside tile
/// rows) and `C + 1` vertical channels. Channel bandwidths are the number
/// of parallel CNOT paths the channel can carry side by side; the *chip
/// bandwidth* is the minimum over all **open** channels (paper §III-A).
///
/// Two capability dimensions extend the paper's uniform lattice:
///
/// * **Defective tiles** — a defect mask marks tile slots that must never
///   host a logical qubit or carry a path ([`add_defect`],
///   [`is_dead`], [`live_tiles`]). A chip with an all-false mask is
///   indistinguishable (`==`, routing, scheduling, cache keys) from the
///   equivalent uniform chip.
/// * **Disabled channels** — bandwidth 0 marks a channel as disabled: it
///   contributes no routing lanes and is excluded from [`bandwidth`].
///   Disabling the last open channel of an orientation is rejected.
///
/// [`add_defect`]: Self::add_defect
/// [`is_dead`]: Self::is_dead
/// [`live_tiles`]: Self::live_tiles
/// [`bandwidth`]: Self::bandwidth
///
/// # Example
///
/// ```
/// use ecmas_chip::{Chip, CodeModel};
///
/// let mut chip = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)?;
/// assert_eq!(chip.bandwidth(), 1);
/// chip.set_v_bandwidth(1, 3)?; // widen one busy vertical channel
/// assert_eq!(chip.v_bandwidth(1), 3);
/// assert_eq!(chip.bandwidth(), 1); // chip bandwidth is still the min
/// # Ok::<(), ecmas_chip::ChipError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Chip {
    model: CodeModel,
    tile_rows: usize,
    tile_cols: usize,
    h_bandwidth: Vec<u32>,
    v_bandwidth: Vec<u32>,
    code_distance: u32,
    /// Defect mask, one flag per tile slot (`true` = dead). All-false for
    /// every chip built by the uniform constructors, so `PartialEq` keeps
    /// treating a masked-but-defect-free chip as the uniform chip.
    defects: Vec<bool>,
}

impl Chip {
    /// Creates a chip with `rows × cols` tile slots and the same
    /// `bandwidth` on every channel.
    ///
    /// # Errors
    ///
    /// Returns an error if the tile array is empty or `d == 0`.
    pub fn uniform(
        model: CodeModel,
        rows: usize,
        cols: usize,
        bandwidth: u32,
        code_distance: u32,
    ) -> Result<Self, ChipError> {
        if rows == 0 || cols == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        if code_distance == 0 {
            return Err(ChipError::ZeroCodeDistance);
        }
        if bandwidth == 0 {
            return Err(ChipError::AllChannelsDisabled { horizontal: true });
        }
        Ok(Chip {
            model,
            tile_rows: rows,
            tile_cols: cols,
            h_bandwidth: vec![bandwidth; rows + 1],
            v_bandwidth: vec![bandwidth; cols + 1],
            code_distance,
            defects: vec![false; rows * cols],
        })
    }

    /// The paper's *minimum viable* configuration for an `n`-qubit circuit:
    /// a `⌈√n⌉ × ⌈√n⌉` tile array with bandwidth 1 everywhere — the
    /// smallest square chip that can host every qubit and still route.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn min_viable(model: CodeModel, n: usize, code_distance: u32) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = int_sqrt_ceil(n);
        Chip::uniform(model, side, side, 1, code_distance)
    }

    /// The paper's *4x resources* configuration: same tile array as
    /// [`min_viable`](Self::min_viable) with every channel doubled to
    /// bandwidth 2 (≈4× the physical qubits at the evaluated sizes).
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn four_x(model: CodeModel, n: usize, code_distance: u32) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = int_sqrt_ceil(n);
        Chip::uniform(model, side, side, 2, code_distance)
    }

    /// A deliberately *congested* limited-resources configuration: the
    /// tile array is twice the minimum-viable side (`2·⌈√n⌉` per side)
    /// while every channel stays at the bandwidth-1 floor. Spreading
    /// mappings (like the trivial snake) put communicating qubits far
    /// apart, long paths fight over single-lane channels, and routing
    /// pressure — not tile scarcity — dominates. This is the chip the
    /// Table II / Table IV ablations need to discriminate: on
    /// [`min_viable`](Self::min_viable) chips every ablation circuit
    /// schedules at the depth bound and the knobs measure nothing.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn congested(model: CodeModel, n: usize, code_distance: u32) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = 2 * int_sqrt_ceil(n);
        Chip::uniform(model, side, side, 1, code_distance)
    }

    /// The *sufficient resources* configuration used by Ecmas-ReSu: the
    /// smallest uniform bandwidth whose Chip Communication Capacity
    /// `⌊(b−1)/2⌋ + 3` (Theorem 2) reaches the circuit's parallelism
    /// degree `gpm`.
    ///
    /// # Errors
    ///
    /// Returns an error if `n == 0` or `d == 0`.
    pub fn sufficient(
        model: CodeModel,
        n: usize,
        gpm: usize,
        code_distance: u32,
    ) -> Result<Self, ChipError> {
        if n == 0 {
            return Err(ChipError::EmptyTileArray);
        }
        let side = int_sqrt_ceil(n);
        let bandwidth = Self::bandwidth_for_capacity(gpm);
        Chip::uniform(model, side, side, bandwidth, code_distance)
    }

    /// The smallest bandwidth `b` with `⌊(b−1)/2⌋ + 3 ≥ capacity`
    /// (inverse of Theorem 2; 1 when three parallel gates suffice).
    #[must_use]
    pub fn bandwidth_for_capacity(capacity: usize) -> u32 {
        if capacity <= 3 {
            1
        } else {
            u32::try_from(2 * (capacity - 3) + 1).unwrap_or(u32::MAX)
        }
    }

    /// The encoding model.
    #[must_use]
    #[inline]
    pub fn model(&self) -> CodeModel {
        self.model
    }

    /// Tile-array rows `R`.
    #[must_use]
    #[inline]
    pub fn tile_rows(&self) -> usize {
        self.tile_rows
    }

    /// Tile-array columns `C`.
    #[must_use]
    #[inline]
    pub fn tile_cols(&self) -> usize {
        self.tile_cols
    }

    /// Number of tile slots `R·C`, dead or alive.
    #[must_use]
    #[inline]
    pub fn tile_slots(&self) -> usize {
        self.tile_rows * self.tile_cols
    }

    /// Marks the tile at `(row, col)` as defective: it can never host a
    /// logical qubit and no CNOT path may pass through it.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::DefectOutOfRange`] if the coordinate falls
    /// outside the tile array.
    pub fn add_defect(&mut self, row: usize, col: usize) -> Result<(), ChipError> {
        self.set_defect(row, col, true)
    }

    /// Clears a defect flag set by [`add_defect`](Self::add_defect).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::DefectOutOfRange`] if the coordinate falls
    /// outside the tile array.
    pub fn clear_defect(&mut self, row: usize, col: usize) -> Result<(), ChipError> {
        self.set_defect(row, col, false)
    }

    fn set_defect(&mut self, row: usize, col: usize, dead: bool) -> Result<(), ChipError> {
        if row >= self.tile_rows || col >= self.tile_cols {
            return Err(ChipError::DefectOutOfRange {
                row,
                col,
                rows: self.tile_rows,
                cols: self.tile_cols,
            });
        }
        self.defects[row * self.tile_cols + col] = dead;
        Ok(())
    }

    /// Builder form of [`add_defect`](Self::add_defect): marks every
    /// listed `(row, col)` as defective and returns the chip.
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::DefectOutOfRange`] on the first coordinate
    /// outside the tile array.
    pub fn with_defects(mut self, defects: &[(usize, usize)]) -> Result<Self, ChipError> {
        for &(row, col) in defects {
            self.add_defect(row, col)?;
        }
        Ok(self)
    }

    /// Marks `count` distinct live tiles as defective, chosen by a
    /// deterministic seeded shuffle (a platform-stable splitmix64 stream,
    /// so the same `(chip, count, seed)` always yields the same mask).
    /// Marks every tile if `count` exceeds the live-tile count.
    pub fn seed_defects(&mut self, count: usize, seed: u64) {
        let mut live: Vec<usize> = (0..self.tile_slots()).filter(|&s| !self.defects[s]).collect();
        let count = count.min(live.len());
        let mut state = seed ^ 0x9E37_79B9_7F4A_7C15;
        for i in 0..count {
            // Partial Fisher-Yates driven by splitmix64.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let j = i + (z % (live.len() - i) as u64) as usize;
            live.swap(i, j);
            self.defects[live[i]] = true;
        }
    }

    /// `true` if tile slot `slot` (`r · C + c`) is defective.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    #[inline]
    pub fn is_dead(&self, slot: usize) -> bool {
        self.defects[slot]
    }

    /// Number of defective tile slots.
    #[must_use]
    pub fn defect_count(&self) -> usize {
        self.defects.iter().filter(|&&d| d).count()
    }

    /// Number of usable tile slots — the chip's logical-qubit capacity.
    #[must_use]
    pub fn live_tiles(&self) -> usize {
        self.tile_slots() - self.defect_count()
    }

    /// The defective slot indices, ascending.
    pub fn defect_slots(&self) -> impl Iterator<Item = usize> + '_ {
        self.defects.iter().enumerate().filter(|(_, &d)| d).map(|(s, _)| s)
    }

    /// Code distance `d`.
    #[must_use]
    pub fn code_distance(&self) -> u32 {
        self.code_distance
    }

    /// Bandwidth of horizontal channel `i` (0 = above the first tile row).
    ///
    /// # Panics
    ///
    /// Panics if `i > R`.
    #[must_use]
    #[inline]
    pub fn h_bandwidth(&self, i: usize) -> u32 {
        self.h_bandwidth[i]
    }

    /// Bandwidth of vertical channel `j` (0 = left of the first tile column).
    ///
    /// # Panics
    ///
    /// Panics if `j > C`.
    #[must_use]
    #[inline]
    pub fn v_bandwidth(&self, j: usize) -> u32 {
        self.v_bandwidth[j]
    }

    /// All horizontal channel bandwidths (length `R + 1`).
    #[must_use]
    pub fn h_bandwidths(&self) -> &[u32] {
        &self.h_bandwidth
    }

    /// All vertical channel bandwidths (length `C + 1`).
    #[must_use]
    pub fn v_bandwidths(&self) -> &[u32] {
        &self.v_bandwidth
    }

    /// Sets the bandwidth of horizontal channel `i`. Bandwidth 0 marks the
    /// channel as **disabled**: it contributes no lanes to the routing
    /// grid and is excluded from [`bandwidth`](Self::bandwidth).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::ChannelOutOfRange`] if `i > R`, or
    /// [`ChipError::AllChannelsDisabled`] if `bandwidth == 0` would leave
    /// every horizontal channel disabled (an unroutable chip).
    pub fn set_h_bandwidth(&mut self, i: usize, bandwidth: u32) -> Result<(), ChipError> {
        let channels = self.h_bandwidth.len();
        if i >= channels {
            return Err(ChipError::ChannelOutOfRange { index: i, channels });
        }
        if bandwidth == 0 && self.h_bandwidth.iter().enumerate().all(|(k, &b)| k == i || b == 0) {
            return Err(ChipError::AllChannelsDisabled { horizontal: true });
        }
        self.h_bandwidth[i] = bandwidth;
        Ok(())
    }

    /// Sets the bandwidth of vertical channel `j`. Bandwidth 0 marks the
    /// channel as **disabled** (see [`set_h_bandwidth`](Self::set_h_bandwidth)).
    ///
    /// # Errors
    ///
    /// Returns [`ChipError::ChannelOutOfRange`] if `j > C`, or
    /// [`ChipError::AllChannelsDisabled`] if `bandwidth == 0` would leave
    /// every vertical channel disabled.
    pub fn set_v_bandwidth(&mut self, j: usize, bandwidth: u32) -> Result<(), ChipError> {
        let channels = self.v_bandwidth.len();
        if j >= channels {
            return Err(ChipError::ChannelOutOfRange { index: j, channels });
        }
        if bandwidth == 0 && self.v_bandwidth.iter().enumerate().all(|(k, &b)| k == j || b == 0) {
            return Err(ChipError::AllChannelsDisabled { horizontal: false });
        }
        self.v_bandwidth[j] = bandwidth;
        Ok(())
    }

    /// The chip's bandwidth: the minimum over all **open** channels
    /// (paper §III-A). Disabled (bandwidth-0) channels are excluded —
    /// on chips without disabled channels this is the plain minimum.
    #[must_use]
    pub fn bandwidth(&self) -> u32 {
        self.h_bandwidth
            .iter()
            .chain(&self.v_bandwidth)
            .copied()
            .filter(|&b| b > 0)
            .min()
            .expect("at least one channel per orientation stays open")
    }

    /// Chip Communication Capacity `C = ⌊(b−1)/2⌋ + 3` (Theorem 2): the
    /// number of independent CNOTs that can always run simultaneously
    /// regardless of tile placement.
    #[must_use]
    pub fn communication_capacity(&self) -> usize {
        ((self.bandwidth() as usize - 1) / 2) + 3
    }

    /// Builds the routing grid (one blocked cell per tile slot, `b` free
    /// lanes per channel; defective tiles become permanently dead cells,
    /// disabled channels contribute no lanes).
    #[must_use]
    pub fn grid(&self) -> RoutingGrid {
        RoutingGrid::new(self)
    }

    /// Manhattan distance between two tile slots, in tile units — the
    /// `l_ij` of the mapping cost function `f = Σ γ_ij · l_ij`.
    #[must_use]
    pub fn tile_distance(&self, slot_a: usize, slot_b: usize) -> usize {
        let (ra, ca) = (slot_a / self.tile_cols, slot_a % self.tile_cols);
        let (rb, cb) = (slot_b / self.tile_cols, slot_b % self.tile_cols);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Physical qubit count in units of `d²` — the x-axis of the paper's
    /// Fig. 12. Double defect: side = `5·tiles + 2.5·Σ bandwidth`; lattice
    /// surgery: side = `√2·(tiles + Σ bandwidth)`.
    ///
    /// For a 7×7 tile array with uniform bandwidth 1…5 this reproduces the
    /// paper's x-axis values 3025…18225 (double defect) and 450…4418
    /// (lattice surgery).
    #[must_use]
    pub fn physical_qubits_per_d2(&self) -> f64 {
        let h_lanes: u32 = self.h_bandwidth.iter().sum();
        let v_lanes: u32 = self.v_bandwidth.iter().sum();
        match self.model {
            CodeModel::DoubleDefect => {
                let height = 5.0 * self.tile_rows as f64 + 2.5 * f64::from(h_lanes);
                let width = 5.0 * self.tile_cols as f64 + 2.5 * f64::from(v_lanes);
                height * width
            }
            CodeModel::LatticeSurgery => {
                let height = self.tile_rows as f64 + f64::from(h_lanes);
                let width = self.tile_cols as f64 + f64::from(v_lanes);
                2.0 * height * width
            }
        }
    }

    /// Absolute physical qubit count for the chip's code distance.
    #[must_use]
    pub fn physical_qubits(&self) -> u64 {
        let d2 = f64::from(self.code_distance * self.code_distance);
        (self.physical_qubits_per_d2() * d2).round() as u64
    }
}

/// `⌈√n⌉` without floating point.
fn int_sqrt_ceil(n: usize) -> usize {
    let mut s = 1usize;
    while s * s < n {
        s += 1;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_viable_side_is_sqrt_ceiling() {
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (4, 4));
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 9, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (3, 3));
        let chip = Chip::min_viable(CodeModel::DoubleDefect, 50, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (8, 8));
    }

    #[test]
    fn congested_doubles_the_side_at_bandwidth_one() {
        let chip = Chip::congested(CodeModel::LatticeSurgery, 10, 3).unwrap();
        assert_eq!((chip.tile_rows(), chip.tile_cols()), (8, 8));
        assert_eq!(chip.bandwidth(), 1);
        assert_eq!(Chip::congested(CodeModel::DoubleDefect, 0, 3), Err(ChipError::EmptyTileArray));
    }

    #[test]
    fn bandwidth_is_channel_minimum() {
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 3).unwrap();
        assert_eq!(chip.bandwidth(), 2);
        chip.set_h_bandwidth(1, 5).unwrap();
        assert_eq!(chip.bandwidth(), 2);
        chip.set_v_bandwidth(0, 1).unwrap();
        assert_eq!(chip.bandwidth(), 1);
    }

    #[test]
    fn capacity_matches_theorem2() {
        for (b, cap) in [(1, 3), (2, 3), (3, 4), (5, 5), (7, 6)] {
            let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, b, 3).unwrap();
            assert_eq!(chip.communication_capacity(), cap, "bandwidth {b}");
        }
    }

    #[test]
    fn bandwidth_for_capacity_inverts_theorem2() {
        for gpm in 1..40 {
            let b = Chip::bandwidth_for_capacity(gpm);
            let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, b, 3).unwrap();
            assert!(chip.communication_capacity() >= gpm, "gpm={gpm} b={b}");
            if b > 1 {
                let smaller = Chip::uniform(CodeModel::DoubleDefect, 2, 2, b - 2, 3);
                if let Ok(smaller) = smaller {
                    assert!(smaller.communication_capacity() < gpm, "b not minimal for gpm={gpm}");
                }
            }
        }
    }

    #[test]
    fn fig12_x_axis_double_defect() {
        // 49 qubits → 7×7 tiles; bandwidth 1..=5 must give the paper's
        // 3025, 5625, 9025, 13225, 18225 physical qubits per d².
        let expected = [3025.0, 5625.0, 9025.0, 13225.0, 18225.0];
        for (b, want) in (1..=5).zip(expected) {
            let chip = Chip::uniform(CodeModel::DoubleDefect, 7, 7, b, 3).unwrap();
            assert!((chip.physical_qubits_per_d2() - want).abs() < 1e-9, "b={b}");
        }
    }

    #[test]
    fn fig12_x_axis_lattice_surgery() {
        let expected = [450.0, 1058.0, 1922.0, 3042.0, 4418.0];
        for (b, want) in (1..=5).zip(expected) {
            let chip = Chip::uniform(CodeModel::LatticeSurgery, 7, 7, b, 3).unwrap();
            assert!((chip.physical_qubits_per_d2() - want).abs() < 1e-9, "b={b}");
        }
    }

    #[test]
    fn tile_distance_is_manhattan() {
        let chip = Chip::uniform(CodeModel::DoubleDefect, 3, 4, 1, 3).unwrap();
        // slot 0 = (0,0), slot 11 = (2,3)
        assert_eq!(chip.tile_distance(0, 11), 5);
        assert_eq!(chip.tile_distance(5, 5), 0);
        assert_eq!(chip.tile_distance(1, 2), 1);
    }

    #[test]
    fn constructors_validate() {
        assert_eq!(
            Chip::uniform(CodeModel::DoubleDefect, 0, 3, 1, 3),
            Err(ChipError::EmptyTileArray)
        );
        assert_eq!(
            Chip::uniform(CodeModel::DoubleDefect, 3, 3, 1, 0),
            Err(ChipError::ZeroCodeDistance)
        );
        assert_eq!(Chip::min_viable(CodeModel::DoubleDefect, 0, 3), Err(ChipError::EmptyTileArray));
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3).unwrap();
        assert!(chip.set_h_bandwidth(3, 1).is_err());
        assert!(chip.set_h_bandwidth(2, 4).is_ok());
    }

    #[test]
    fn defect_mask_tracks_live_capacity() {
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 3, 4, 1, 3).unwrap();
        assert_eq!(chip.live_tiles(), 12);
        assert_eq!(chip.defect_count(), 0);
        chip.add_defect(1, 2).unwrap();
        chip.add_defect(2, 3).unwrap();
        assert!(chip.is_dead(6) && chip.is_dead(11)); // slots (1,2) and (2,3)
        assert_eq!(chip.live_tiles(), 10);
        assert_eq!(chip.defect_slots().collect::<Vec<_>>(), vec![6, 11]);
        chip.clear_defect(1, 2).unwrap();
        assert_eq!(chip.defect_count(), 1);
        assert_eq!(
            chip.add_defect(3, 0),
            Err(ChipError::DefectOutOfRange { row: 3, col: 0, rows: 3, cols: 4 })
        );
        assert_eq!(
            chip.add_defect(0, 4),
            Err(ChipError::DefectOutOfRange { row: 0, col: 4, rows: 3, cols: 4 })
        );
    }

    #[test]
    fn with_defects_builder_matches_add_defect() {
        let built = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)
            .unwrap()
            .with_defects(&[(0, 1), (2, 2)])
            .unwrap();
        let mut manual = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3).unwrap();
        manual.add_defect(0, 1).unwrap();
        manual.add_defect(2, 2).unwrap();
        assert_eq!(built, manual);
        // An all-false mask is the uniform chip, under PartialEq too.
        let masked = Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3)
            .unwrap()
            .with_defects(&[])
            .unwrap();
        assert_eq!(masked, Chip::uniform(CodeModel::LatticeSurgery, 3, 3, 1, 3).unwrap());
    }

    #[test]
    fn seed_defects_is_deterministic_and_distinct() {
        let mut a = Chip::uniform(CodeModel::DoubleDefect, 6, 6, 1, 3).unwrap();
        let mut b = a.clone();
        a.seed_defects(7, 42);
        b.seed_defects(7, 42);
        assert_eq!(a, b);
        assert_eq!(a.defect_count(), 7);
        let mut c = Chip::uniform(CodeModel::DoubleDefect, 6, 6, 1, 3).unwrap();
        c.seed_defects(100, 1); // more than the slot count: kills everything
        assert_eq!(c.live_tiles(), 0);
    }

    #[test]
    fn bandwidth_zero_is_an_explicit_disabled_channel() {
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 2, 3).unwrap();
        chip.set_h_bandwidth(1, 0).unwrap();
        assert_eq!(chip.h_bandwidth(1), 0);
        // The disabled channel no longer drags the chip bandwidth to 0.
        assert_eq!(chip.bandwidth(), 2);
        chip.set_h_bandwidth(0, 0).unwrap();
        // Disabling the last open horizontal channel is rejected.
        assert_eq!(
            chip.set_h_bandwidth(2, 0),
            Err(ChipError::AllChannelsDisabled { horizontal: true })
        );
        assert_eq!(chip.h_bandwidth(2), 2, "rejected write must not stick");
        // Same story for vertical channels.
        let mut chip = Chip::uniform(CodeModel::DoubleDefect, 1, 1, 1, 3).unwrap();
        chip.set_v_bandwidth(0, 0).unwrap();
        assert_eq!(
            chip.set_v_bandwidth(1, 0),
            Err(ChipError::AllChannelsDisabled { horizontal: false })
        );
        // And a uniform bandwidth-0 chip cannot be built at all.
        assert_eq!(
            Chip::uniform(CodeModel::DoubleDefect, 2, 2, 0, 3),
            Err(ChipError::AllChannelsDisabled { horizontal: true })
        );
    }

    #[test]
    fn physical_qubits_scale_with_distance() {
        // 3×3 tiles, bandwidth 2: side = 15 + 2.5·8 = 35 ⇒ 1225·d² exactly.
        let d3 = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 3).unwrap();
        let d6 = Chip::uniform(CodeModel::DoubleDefect, 3, 3, 2, 6).unwrap();
        assert_eq!(d3.physical_qubits(), 1225 * 9);
        assert_eq!(d6.physical_qubits(), 4 * d3.physical_qubits());
    }
}
