use crate::chip::Chip;

/// One cell of a [`RoutingGrid`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cell {
    /// Channel space: a free lane cell paths may traverse.
    Free,
    /// A logical tile slot (blocked for through-routing); the payload is
    /// the tile-slot index `r · C + c`.
    Tile(usize),
}

/// The planar routing grid of a [`Chip`].
///
/// Each tile slot occupies exactly one blocked cell; every channel of
/// bandwidth `b` contributes `b` parallel rows (or columns) of free cells
/// running the full width (or height) of the chip, so junctions between a
/// bandwidth-`b_h` and a bandwidth-`b_v` channel expand to a `b_h × b_v`
/// block of free cells. CNOT paths are free-cell paths between two tile
/// cells; because the grid is planar, node-disjointness of paths is exactly
/// the "braiding paths cannot cross" rule of the double-defect model.
///
/// # Example
///
/// ```
/// use ecmas_chip::{Cell, Chip, CodeModel};
///
/// let chip = Chip::uniform(CodeModel::DoubleDefect, 2, 2, 1, 3)?;
/// let grid = chip.grid();
/// assert_eq!((grid.rows(), grid.cols()), (5, 5));
/// assert_eq!(grid.cell(grid.tile_cell(0)), Cell::Tile(0));
/// // Tile 0 sits at grid (1,1); (0,1) above it is channel space.
/// assert_eq!(grid.cell(grid.index(0, 1)), Cell::Free);
/// # Ok::<(), ecmas_chip::ChipError>(())
/// ```
#[derive(Clone, Debug)]
pub struct RoutingGrid {
    rows: usize,
    cols: usize,
    cells: Vec<Cell>,
    dead: Vec<bool>,
    tile_cells: Vec<usize>,
    h_channel: Vec<Option<usize>>,
    v_channel: Vec<Option<usize>>,
    /// `h_seam[r]` — the boundary between grid rows `r` and `r + 1` is a
    /// disabled-channel seam (both rows are tile rows, which only happens
    /// when the channel between them has bandwidth 0). The strip still
    /// occupies physical space but carries no horizontal lanes, so paths
    /// may only cross it along an open *vertical* channel's lane columns
    /// — never at a tile column.
    h_seam: Vec<bool>,
    /// `v_seam[c]` — same for the boundary between grid columns `c` and
    /// `c + 1`.
    v_seam: Vec<bool>,
}

impl RoutingGrid {
    /// Builds the grid for `chip`. Usually reached via [`Chip::grid`].
    #[must_use]
    pub fn new(chip: &Chip) -> Self {
        let (tr, tc) = (chip.tile_rows(), chip.tile_cols());
        let h_lanes: u32 = chip.h_bandwidths().iter().sum();
        let v_lanes: u32 = chip.v_bandwidths().iter().sum();
        let rows = tr + h_lanes as usize;
        let cols = tc + v_lanes as usize;

        // Map grid rows to their horizontal channel (None for tile rows).
        let mut h_channel = Vec::with_capacity(rows);
        let mut tile_row_pos = Vec::with_capacity(tr);
        for r in 0..tr {
            for _ in 0..chip.h_bandwidth(r) {
                h_channel.push(Some(r));
            }
            tile_row_pos.push(h_channel.len());
            h_channel.push(None);
        }
        for _ in 0..chip.h_bandwidth(tr) {
            h_channel.push(Some(tr));
        }
        debug_assert_eq!(h_channel.len(), rows);

        let mut v_channel = Vec::with_capacity(cols);
        let mut tile_col_pos = Vec::with_capacity(tc);
        for c in 0..tc {
            for _ in 0..chip.v_bandwidth(c) {
                v_channel.push(Some(c));
            }
            tile_col_pos.push(v_channel.len());
            v_channel.push(None);
        }
        for _ in 0..chip.v_bandwidth(tc) {
            v_channel.push(Some(tc));
        }
        debug_assert_eq!(v_channel.len(), cols);

        let mut cells = vec![Cell::Free; rows * cols];
        let mut dead = vec![false; rows * cols];
        let mut tile_cells = Vec::with_capacity(tr * tc);
        for (r, &row_pos) in tile_row_pos.iter().enumerate() {
            for (c, &col_pos) in tile_col_pos.iter().enumerate() {
                let idx = row_pos * cols + col_pos;
                let slot = r * tc + c;
                cells[idx] = Cell::Tile(slot);
                dead[idx] = chip.is_dead(slot);
                tile_cells.push(idx);
            }
        }

        // A bandwidth-0 channel contributes no lane rows/cols, leaving the
        // tile rows/cols on either side directly adjacent in the grid.
        // Record those boundaries so routing never tunnels through a
        // channel that physically has zero capacity.
        let h_seam = (0..rows.saturating_sub(1))
            .map(|r| h_channel[r].is_none() && h_channel[r + 1].is_none())
            .collect();
        let v_seam = (0..cols.saturating_sub(1))
            .map(|c| v_channel[c].is_none() && v_channel[c + 1].is_none())
            .collect();

        RoutingGrid { rows, cols, cells, dead, tile_cells, h_channel, v_channel, h_seam, v_seam }
    }

    /// Grid height in cells.
    #[must_use]
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid width in cells.
    #[must_use]
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of cells.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// `true` if the grid has no cells (never happens for valid chips).
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Flattens `(row, col)` to a cell index.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if out of range.
    #[must_use]
    #[inline]
    pub fn index(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.rows && col < self.cols);
        row * self.cols + col
    }

    /// Inverse of [`index`](Self::index).
    #[must_use]
    #[inline]
    pub fn coords(&self, idx: usize) -> (usize, usize) {
        (idx / self.cols, idx % self.cols)
    }

    /// The cell contents at `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    #[inline]
    pub fn cell(&self, idx: usize) -> Cell {
        self.cells[idx]
    }

    /// `true` if `idx` is channel space.
    #[must_use]
    #[inline]
    pub fn is_free(&self, idx: usize) -> bool {
        self.cells[idx] == Cell::Free
    }

    /// `true` if `idx` sits on a defective tile: permanently unroutable
    /// and never a valid path endpoint. Routers seed their blocked set
    /// from this at construction, so their hot paths stay defect-blind.
    #[must_use]
    #[inline]
    pub fn is_dead(&self, idx: usize) -> bool {
        self.dead[idx]
    }

    /// Number of cells usable as channel space — free cells, since dead
    /// cells are always tile cells.
    #[must_use]
    pub fn free_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c == Cell::Free).count()
    }

    /// Cell index of tile slot `slot` (`r · C + c`).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    #[inline]
    pub fn tile_cell(&self, slot: usize) -> usize {
        self.tile_cells[slot]
    }

    /// Number of tile slots.
    #[must_use]
    #[inline]
    pub fn tile_count(&self) -> usize {
        self.tile_cells.len()
    }

    /// The 4-neighborhood of `idx`, clipped at the boundary and at
    /// disabled-channel seams: the tile rows/cols a bandwidth-0 channel
    /// separates are index-adjacent, but steppable-between only where an
    /// open perpendicular channel's lane crosses the disabled strip.
    pub fn neighbors(&self, idx: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = self.coords(idx);
        let cols = self.cols;
        let rows = self.rows;
        let lane_col = self.v_channel[c].is_some();
        let lane_row = self.h_channel[r].is_some();
        [
            (r > 0 && (lane_col || !self.h_seam[r - 1])).then(|| idx - cols),
            (r + 1 < rows && (lane_col || !self.h_seam[r])).then(|| idx + cols),
            (c > 0 && (lane_row || !self.v_seam[c - 1])).then(|| idx - 1),
            (c + 1 < cols && (lane_row || !self.v_seam[c])).then(|| idx + 1),
        ]
        .into_iter()
        .flatten()
    }

    /// Whether the boundary between grid rows `upper_row` and
    /// `upper_row + 1` is a disabled-channel seam (see
    /// [`step_allowed`](Self::step_allowed)).
    #[must_use]
    #[inline]
    pub fn h_seam_blocked(&self, upper_row: usize) -> bool {
        self.h_seam.get(upper_row).copied().unwrap_or(false)
    }

    /// Whether the boundary between grid columns `left_col` and
    /// `left_col + 1` is a disabled-channel seam.
    #[must_use]
    #[inline]
    pub fn v_seam_blocked(&self, left_col: usize) -> bool {
        self.v_seam.get(left_col).copied().unwrap_or(false)
    }

    /// Whether a unit step between grid-adjacent cells `a` and `b` is
    /// physically realizable. Every step between index-adjacent cells is,
    /// except across a disabled-channel seam at a tile row/col: a
    /// bandwidth-0 channel still occupies physical space between its tile
    /// rows/cols, and only an open perpendicular channel's lane offers a
    /// way through the strip.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `a` and `b` are not grid-adjacent.
    #[must_use]
    #[inline]
    pub fn step_allowed(&self, a: usize, b: usize) -> bool {
        debug_assert_eq!(self.manhattan(a, b), 1);
        let (lo, hi) = (a.min(b), a.max(b));
        if hi - lo == 1 {
            !self.v_seam[lo % self.cols] || self.h_channel[lo / self.cols].is_some()
        } else {
            !self.h_seam[lo / self.cols] || self.v_channel[lo % self.cols].is_some()
        }
    }

    /// The tile-row index of a grid row (`None` for lane rows).
    #[must_use]
    pub fn tile_row_index(&self, row: usize) -> Option<usize> {
        if self.h_channel[row].is_some() {
            return None;
        }
        Some(self.h_channel[..row].iter().filter(|ch| ch.is_none()).count())
    }

    /// The tile-column index of a grid column (`None` for lane columns).
    #[must_use]
    pub fn tile_col_index(&self, col: usize) -> Option<usize> {
        if self.v_channel[col].is_some() {
            return None;
        }
        Some(self.v_channel[..col].iter().filter(|ch| ch.is_none()).count())
    }

    /// The horizontal channel a grid row belongs to (`None` for tile rows).
    #[must_use]
    #[inline]
    pub fn h_channel_of_row(&self, row: usize) -> Option<usize> {
        self.h_channel[row]
    }

    /// The vertical channel a grid column belongs to (`None` for tile
    /// columns).
    #[must_use]
    #[inline]
    pub fn v_channel_of_col(&self, col: usize) -> Option<usize> {
        self.v_channel[col]
    }

    /// Manhattan distance between two cells.
    #[must_use]
    #[inline]
    pub fn manhattan(&self, a: usize, b: usize) -> usize {
        let (ra, ca) = self.coords(a);
        let (rb, cb) = self.coords(b);
        ra.abs_diff(rb) + ca.abs_diff(cb)
    }

    /// Renders the grid as ASCII art (`.` free, `#` tile, `X` dead tile),
    /// useful in examples and debugging.
    #[must_use]
    pub fn ascii(&self) -> String {
        let mut out = String::with_capacity((self.cols + 1) * self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                let idx = self.index(r, c);
                out.push(match self.cells[idx] {
                    Cell::Free => '.',
                    Cell::Tile(_) if self.dead[idx] => 'X',
                    Cell::Tile(_) => '#',
                });
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chip::CodeModel;

    fn chip(rows: usize, cols: usize, b: u32) -> Chip {
        Chip::uniform(CodeModel::DoubleDefect, rows, cols, b, 3).unwrap()
    }

    #[test]
    fn bandwidth1_grid_dimensions() {
        let g = chip(3, 3, 1).grid();
        assert_eq!((g.rows(), g.cols()), (7, 7));
        assert_eq!(g.tile_count(), 9);
    }

    #[test]
    fn bandwidth2_grid_dimensions() {
        let g = chip(3, 4, 2).grid();
        assert_eq!((g.rows(), g.cols()), (3 + 4 * 2, 4 + 5 * 2));
    }

    #[test]
    fn tiles_sit_on_odd_lattice_for_bandwidth1() {
        let g = chip(2, 2, 1).grid();
        for slot in 0..4 {
            let (r, c) = g.coords(g.tile_cell(slot));
            assert_eq!(r % 2, 1, "tile row should be odd");
            assert_eq!(c % 2, 1, "tile col should be odd");
            assert_eq!(g.cell(g.tile_cell(slot)), Cell::Tile(slot));
        }
    }

    #[test]
    fn free_cell_count_is_total_minus_tiles() {
        let g = chip(3, 3, 2).grid();
        let free = (0..g.len()).filter(|&i| g.is_free(i)).count();
        assert_eq!(free, g.len() - 9);
    }

    #[test]
    fn neighbors_clip_at_boundary() {
        let g = chip(2, 2, 1).grid();
        let corner = g.index(0, 0);
        assert_eq!(g.neighbors(corner).count(), 2);
        let mid = g.index(2, 2);
        assert_eq!(g.neighbors(mid).count(), 4);
    }

    #[test]
    fn channel_classification() {
        let g = chip(2, 2, 1).grid();
        // Rows: [ch0][tile0][ch1][tile1][ch2]
        assert_eq!(g.h_channel_of_row(0), Some(0));
        assert_eq!(g.h_channel_of_row(1), None);
        assert_eq!(g.h_channel_of_row(2), Some(1));
        assert_eq!(g.h_channel_of_row(3), None);
        assert_eq!(g.h_channel_of_row(4), Some(2));
        assert_eq!(g.v_channel_of_col(2), Some(1));
    }

    #[test]
    fn junction_expands_with_bandwidth() {
        // With bandwidth 3, the top-left junction is a 3×3 free block.
        let g = chip(2, 2, 3).grid();
        for r in 0..3 {
            for c in 0..3 {
                assert!(g.is_free(g.index(r, c)));
            }
        }
        let (tr, tc) = g.coords(g.tile_cell(0));
        assert_eq!((tr, tc), (3, 3));
    }

    #[test]
    fn adjacent_tiles_separated_by_bandwidth_lanes() {
        let g = chip(1, 2, 2).grid();
        let (r0, c0) = g.coords(g.tile_cell(0));
        let (r1, c1) = g.coords(g.tile_cell(1));
        assert_eq!(r0, r1);
        assert_eq!(c1 - c0, 3, "two lanes between adjacent tiles");
    }

    #[test]
    fn ascii_render_shape() {
        let g = chip(1, 1, 1).grid();
        assert_eq!(g.ascii(), "...\n.#.\n...\n");
    }

    #[test]
    fn dead_tiles_mark_dead_cells() {
        let mut c = chip(2, 2, 1);
        c.add_defect(0, 1).unwrap();
        let g = c.grid();
        assert!(g.is_dead(g.tile_cell(1)));
        for slot in [0, 2, 3] {
            assert!(!g.is_dead(g.tile_cell(slot)));
        }
        // Channel cells are never dead.
        assert!((0..g.len()).filter(|&i| g.is_free(i)).all(|i| !g.is_dead(i)));
        assert_eq!(g.free_cells(), g.len() - 4);
        assert_eq!(g.ascii(), ".....\n.#.X.\n.....\n.#.#.\n.....\n");
    }

    #[test]
    fn disabled_channel_contributes_no_lanes() {
        let mut c = chip(2, 2, 1);
        c.set_h_bandwidth(1, 0).unwrap();
        let g = c.grid();
        // Rows: [ch0][tile0][tile1][ch2] — the middle channel vanished.
        assert_eq!(g.rows(), 4);
        assert_eq!(g.h_channel_of_row(1), None);
        assert_eq!(g.h_channel_of_row(2), None);
        assert_eq!(g.h_channel_of_row(3), Some(2));
    }

    #[test]
    fn disabled_channel_seam_blocks_tile_column_steps() {
        let mut c = chip(2, 2, 1);
        c.set_h_bandwidth(1, 0).unwrap();
        let g = c.grid();
        // Rows: [ch0][tile0][tile1][ch2]; the tile rows 1 and 2 meet at a
        // seam. Columns: [ch0][tile0][ch1][tile1][ch2].
        assert!(g.h_seam_blocked(1));
        assert!(!g.h_seam_blocked(0));
        assert!(!g.v_seam_blocked(0));
        // At a tile column the seam is impassable...
        let above = g.index(1, 1);
        let below = g.index(2, 1);
        assert!(!g.step_allowed(above, below));
        assert!(!g.neighbors(above).any(|n| n == below));
        assert!(!g.neighbors(below).any(|n| n == above));
        // ...but an open vertical channel's lane crosses the strip.
        let lane_above = g.index(1, 2);
        let lane_below = g.index(2, 2);
        assert!(g.step_allowed(lane_above, lane_below));
        assert!(g.neighbors(lane_above).any(|n| n == lane_below));
        // Steps that cross no seam are untouched.
        assert!(g.step_allowed(g.index(0, 1), g.index(1, 1)));
        assert!(g.step_allowed(above, g.index(1, 2)));
    }

    #[test]
    fn tile_row_and_col_indices() {
        let mut c = chip(2, 2, 1);
        c.set_h_bandwidth(1, 0).unwrap();
        let g = c.grid();
        assert_eq!(g.tile_row_index(0), None); // lane row of channel 0
        assert_eq!(g.tile_row_index(1), Some(0));
        assert_eq!(g.tile_row_index(2), Some(1));
        assert_eq!(g.tile_row_index(3), None); // lane row of channel 2
        assert_eq!(g.tile_col_index(1), Some(0));
        assert_eq!(g.tile_col_index(3), Some(1));
        assert_eq!(g.tile_col_index(2), None);
    }

    #[test]
    fn uniform_chip_has_no_seams() {
        let g = chip(3, 3, 2).grid();
        for r in 0..g.rows() - 1 {
            assert!(!g.h_seam_blocked(r));
        }
        for c in 0..g.cols() - 1 {
            assert!(!g.v_seam_blocked(c));
        }
    }

    #[test]
    fn manhattan_distance() {
        let g = chip(2, 2, 1).grid();
        assert_eq!(g.manhattan(g.index(0, 0), g.index(3, 4)), 7);
    }

    #[test]
    fn non_uniform_bandwidths_respected() {
        let mut c = chip(2, 2, 1);
        c.set_h_bandwidth(1, 4).unwrap();
        let g = c.grid();
        assert_eq!(g.rows(), 2 + 1 + 4 + 1);
        // Rows 2..6 belong to the widened middle channel.
        for r in 2..6 {
            assert_eq!(g.h_channel_of_row(r), Some(1));
        }
    }
}
