use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid [`Chip`].
///
/// [`Chip`]: crate::Chip
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipError {
    /// The tile array has zero rows or columns.
    EmptyTileArray,
    /// The tile array cannot host the requested number of logical qubits.
    TooManyQubits {
        /// Logical qubits requested.
        qubits: usize,
        /// Tile slots available.
        slots: usize,
    },
    /// A channel index was out of range.
    ChannelOutOfRange {
        /// The offending channel index.
        index: usize,
        /// Number of channels in that orientation.
        channels: usize,
    },
    /// The code distance must be positive.
    ZeroCodeDistance,
    /// A defect coordinate fell outside the tile array.
    DefectOutOfRange {
        /// The offending tile row.
        row: usize,
        /// The offending tile column.
        col: usize,
        /// Tile-array rows.
        rows: usize,
        /// Tile-array columns.
        cols: usize,
    },
    /// Disabling a channel would leave its orientation with no open
    /// channel, making the chip unroutable.
    AllChannelsDisabled {
        /// `true` for horizontal channels, `false` for vertical ones.
        horizontal: bool,
    },
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChipError::EmptyTileArray => {
                write!(f, "tile array must have at least one row and column")
            }
            ChipError::TooManyQubits { qubits, slots } => {
                write!(f, "{qubits} logical qubits do not fit in {slots} tile slots")
            }
            ChipError::ChannelOutOfRange { index, channels } => {
                write!(f, "channel index {index} out of range (have {channels})")
            }
            ChipError::ZeroCodeDistance => write!(f, "code distance must be positive"),
            ChipError::DefectOutOfRange { row, col, rows, cols } => {
                write!(f, "defect ({row},{col}) outside the {rows}x{cols} tile array")
            }
            ChipError::AllChannelsDisabled { horizontal } => {
                let orientation = if horizontal { "horizontal" } else { "vertical" };
                write!(f, "at least one {orientation} channel must stay open (bandwidth >= 1)")
            }
        }
    }
}

impl Error for ChipError {}
