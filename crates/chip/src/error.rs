use std::error::Error;
use std::fmt;

/// Error produced when constructing an invalid [`Chip`].
///
/// [`Chip`]: crate::Chip
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ChipError {
    /// The tile array has zero rows or columns.
    EmptyTileArray,
    /// The tile array cannot host the requested number of logical qubits.
    TooManyQubits {
        /// Logical qubits requested.
        qubits: usize,
        /// Tile slots available.
        slots: usize,
    },
    /// A channel index was out of range.
    ChannelOutOfRange {
        /// The offending channel index.
        index: usize,
        /// Number of channels in that orientation.
        channels: usize,
    },
    /// The code distance must be positive.
    ZeroCodeDistance,
}

impl fmt::Display for ChipError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChipError::EmptyTileArray => {
                write!(f, "tile array must have at least one row and column")
            }
            ChipError::TooManyQubits { qubits, slots } => {
                write!(f, "{qubits} logical qubits do not fit in {slots} tile slots")
            }
            ChipError::ChannelOutOfRange { index, channels } => {
                write!(f, "channel index {index} out of range (have {channels})")
            }
            ChipError::ZeroCodeDistance => write!(f, "code distance must be positive"),
        }
    }
}

impl Error for ChipError {}
