//! Surface-code chip model for the Ecmas reproduction.
//!
//! The paper abstracts a quantum chip as a 2-D array of logical *tile*
//! slots separated (and bordered) by *channels* whose width is measured in
//! integer *bandwidth* units — the number of parallel braiding lanes
//! (double defect) or ancilla-tile lanes (lattice surgery) the channel can
//! carry. All of the paper's cycle counts are computed at this abstraction;
//! the code distance `d` only enters the physical-qubit accounting.
//!
//! * [`Chip`] — tile array plus per-channel bandwidths, with the paper's
//!   three resource configurations as constructors
//!   ([`min_viable`](Chip::min_viable), 4x via
//!   [`uniform`](Chip::uniform) with bandwidth 2, and
//!   [`sufficient`](Chip::sufficient) for Ecmas-ReSu).
//! * [`RoutingGrid`] — the planar free-cell grid the router works on: each
//!   tile slot is one blocked cell, each channel contributes `bandwidth`
//!   parallel rows/columns of free cells, junctions expand to
//!   `b_h × b_v` sub-grids.
//!
//! # Example
//!
//! ```
//! use ecmas_chip::{Chip, CodeModel};
//!
//! // Minimum viable double-defect chip for a 10-qubit circuit:
//! let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3)?;
//! assert_eq!(chip.tile_rows(), 4); // ⌈√10⌉
//! assert_eq!(chip.bandwidth(), 1);
//! let grid = chip.grid();
//! assert_eq!(grid.rows(), 4 + 5); // 4 tile rows + 5 bandwidth-1 channels
//! # Ok::<(), ecmas_chip::ChipError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chip;
mod error;
mod grid;

pub use chip::{Chip, CodeModel};
pub use error::ChipError;
pub use grid::{Cell, RoutingGrid};
