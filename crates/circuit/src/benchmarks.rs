//! Generators for the named benchmark circuits of the paper's evaluation
//! (Table I and the ablation tables).
//!
//! The paper draws its circuits from IBM Qiskit, ScaffCC, QUEKO and
//! QASMbench. Those suites are not vendored here; instead each circuit is
//! regenerated from its mathematical definition. For the structurally
//! pinned circuits (`dnn`, `ising`, `bv`, `ghz_state`, `qft_n10`,
//! `swap_test`, `adder_n10`) the generated `(n, α, g)` match the paper's
//! reported values exactly; for the oracle-style circuits (`grover`, `sat`,
//! `square_root`, `multiplier`, `qf21`, `quantum_walk`, `shor`) the
//! generators are synthetic equivalents sized to the reported gate counts,
//! preserving the properties the compiler cares about: the dependency
//! structure (serial vs parallel), the communication-graph topology
//! (bipartite or not) and the overall scale. Actual values are recorded in
//! `EXPERIMENTS.md`.
//!
//! All generators are deterministic.
//!
//! # Example
//!
//! ```
//! let c = ecmas_circuit::benchmarks::ising_chain(10, 5);
//! assert_eq!(c.qubits(), 10);
//! assert_eq!(c.cnot_count(), 90); // matches the paper's ising_n10 row
//! assert_eq!(c.depth(), 20);
//! ```

use std::f64::consts::PI;

use crate::circuit::Circuit;

/// A quantum-DNN-style circuit (QuClassi \[34\]): `blocks` repetitions of an
/// all-pairs entangling block between the two halves of the register,
/// scheduled round-robin so each block has depth `n/2`.
///
/// `dnn(8, 12)` reproduces the paper's `dnn_n8` row (α=48, g=192) and
/// `dnn(16, 6)` its `dnn_n16` row (α=48, g=384). The communication graph is
/// complete bipartite, so the optimal cut-type initialization lets every
/// CNOT execute in one cycle.
///
/// # Panics
///
/// Panics if `n` is odd or zero.
#[must_use]
pub fn dnn(n: usize, blocks: usize) -> Circuit {
    assert!(n > 0 && n.is_multiple_of(2), "dnn requires an even positive qubit count");
    let h = n / 2;
    let mut c = Circuit::with_name(n, format!("dnn_n{n}"));
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..blocks {
        for round in 0..h {
            for i in 0..h {
                c.cnot(i, h + (i + round) % h);
            }
        }
        for q in 0..n {
            c.ry(q, PI / 7.0);
        }
    }
    c
}

/// The paper's `dnn_n8` benchmark (n=8, α=48, g=192).
#[must_use]
pub fn dnn_n8() -> Circuit {
    dnn(8, 12)
}

/// The paper's `dnn_n16` benchmark (n=16, α=48, g=384).
#[must_use]
pub fn dnn_n16() -> Circuit {
    dnn(16, 6)
}

/// Trotterized 1-D transverse-field Ising evolution on an open chain:
/// per step, ZZ rotations (2 CNOTs each) on even then odd bonds, plus an Rx
/// field layer. Depth is 4 per step; the communication graph is a path.
///
/// `ising_chain(10, 5)` reproduces `ising_n10` (α=20, g=90) and
/// `ising_chain(50, 1)` reproduces `ising_n50` (α=4, g=98).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn ising_chain(n: usize, steps: usize) -> Circuit {
    assert!(n >= 2, "ising chain needs at least two qubits");
    let mut c = Circuit::with_name(n, format!("ising_n{n}"));
    for step in 0..steps {
        for parity in 0..2 {
            let mut i = parity;
            while i + 1 < n {
                c.cnot(i, i + 1);
                c.rz(i + 1, 0.35 + 0.01 * step as f64);
                c.cnot(i, i + 1);
                i += 2;
            }
        }
        for q in 0..n {
            c.single(q, crate::circuit::SingleGate::Rx(0.2));
        }
    }
    c
}

/// The paper's `ising_n10` benchmark (α=20, g=90).
#[must_use]
pub fn ising_n10() -> Circuit {
    ising_chain(10, 5)
}

/// The paper's `ising_n50` benchmark (α=4, g=98).
#[must_use]
pub fn ising_n50() -> Circuit {
    ising_chain(50, 1)
}

/// GHZ-state preparation: `H` then a CNOT chain. `ghz(23)` reproduces
/// `ghz_state_n23` (α=22, g=22). The communication graph is a path.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2, "ghz needs at least two qubits");
    let mut c = Circuit::with_name(n, format!("ghz_state_n{n}"));
    c.h(0);
    for i in 0..n - 1 {
        c.cnot(i, i + 1);
    }
    c
}

/// The paper's `ghz_state_n23` benchmark (α=22, g=22).
#[must_use]
pub fn ghz_state_n23() -> Circuit {
    ghz(23)
}

/// Bernstein–Vazirani with a secret string of `ones` set bits: every CNOT
/// targets the ancilla (last qubit), so α = g = `ones`. The communication
/// graph is a star.
///
/// `bv(10, 5)` reproduces `BV_10` (α=5, g=5); `bv(50, 27)` reproduces
/// `BV_50` (α=27, g=27).
///
/// # Panics
///
/// Panics if `ones >= n`.
#[must_use]
pub fn bv(n: usize, ones: usize) -> Circuit {
    assert!(ones < n, "secret must fit in the data qubits");
    let mut c = Circuit::with_name(n, format!("bv_n{n}"));
    let anc = n - 1;
    c.x(anc);
    for q in 0..n {
        c.h(q);
    }
    for q in 0..ones {
        c.cnot(q, anc);
    }
    for q in 0..n - 1 {
        c.h(q);
    }
    c
}

/// The paper's `BV_10` benchmark (α=5, g=5).
#[must_use]
pub fn bv_n10() -> Circuit {
    bv(10, 5)
}

/// The paper's `BV_50` benchmark (α=27, g=27).
#[must_use]
pub fn bv_n50() -> Circuit {
    bv(50, 27)
}

/// Full quantum Fourier transform with the standard two-CNOT
/// controlled-phase decomposition and a final 3-CNOT swap network.
/// `qft(10)` has g = 2·C(10,2) + 3·5 = 105, matching the paper's `QFT_10`
/// row. The communication graph is complete (not bipartite).
#[must_use]
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::with_name(n, format!("qft_n{n}"));
    for i in 0..n {
        c.h(i);
        for j in i + 1..n {
            c.cp(j, i, PI / f64::from(1u32 << (j - i).min(30)));
        }
    }
    for i in 0..n / 2 {
        c.swap(i, n - 1 - i);
    }
    c
}

/// The paper's `QFT_10` benchmark (g=105).
#[must_use]
pub fn qft_n10() -> Circuit {
    qft(10)
}

/// The paper's `QFT_50` benchmark.
#[must_use]
pub fn qft_n50() -> Circuit {
    qft(50)
}

/// Quantum phase estimation with `n-1` counting qubits, one eigenstate
/// qubit, controlled-U^(2^k) as controlled-phases, and an inverse QFT with
/// `approx`-neighbor approximation (QASMbench-style). `qpe(9, 2)` is sized
/// to the paper's `qpe_n9` row (g=43).
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn qpe(n: usize, approx: usize) -> Circuit {
    assert!(n >= 2, "qpe needs counting qubits plus a target");
    let m = n - 1;
    let mut c = Circuit::with_name(n, format!("qpe_n{n}"));
    let target = n - 1;
    c.x(target);
    for k in 0..m {
        c.h(k);
    }
    for k in 0..m {
        c.cp(k, target, PI / f64::from(1u32 << k.min(30)));
    }
    // Approximate inverse QFT on the counting register.
    for i in (0..m).rev() {
        for j in (i + 1..m).rev() {
            if j - i <= approx {
                c.cp(j, i, -PI / f64::from(1u32 << (j - i).min(30)));
            }
        }
        c.h(i);
    }
    c
}

/// The paper's `qpe_n9` benchmark (α=42, g=43 reported; this generator is a
/// size-matched approximation — see `EXPERIMENTS.md`).
#[must_use]
pub fn qpe_n9() -> Circuit {
    qpe(9, 2)
}

/// CDKM ripple-carry adder on two 4-bit operands (10 qubits: carry-in, two
/// operand registers, carry-out). Exactly reproduces `adder_n10`
/// (g = 8 MAJ/UMA · 8 CNOTs + 1 = 65).
#[must_use]
pub fn adder_n10() -> Circuit {
    let mut c = Circuit::with_name(10, "adder_n10");
    let cin = 0;
    let a = [1, 2, 3, 4];
    let b = [5, 6, 7, 8];
    let cout = 9;
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cnot(z, y);
        c.cnot(z, x);
        c.ccx(x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.ccx(x, y, z);
        c.cnot(z, x);
        c.cnot(x, y);
    };
    maj(&mut c, cin, b[0], a[0]);
    maj(&mut c, a[0], b[1], a[1]);
    maj(&mut c, a[1], b[2], a[2]);
    maj(&mut c, a[2], b[3], a[3]);
    c.cnot(a[3], cout);
    uma(&mut c, a[2], b[3], a[3]);
    uma(&mut c, a[1], b[2], a[2]);
    uma(&mut c, a[0], b[1], a[1]);
    uma(&mut c, cin, b[0], a[0]);
    c
}

/// Appends a multi-controlled X implemented with a Toffoli ladder through
/// `anc` (compute up, hit `target`, uncompute down). Standard V-chain.
///
/// # Panics
///
/// Panics if fewer ancillas than `controls.len() - 2` are supplied.
fn mcx_ladder(c: &mut Circuit, controls: &[usize], anc: &[usize], target: usize) {
    match controls.len() {
        0 => c.x(target),
        1 => c.cnot(controls[0], target),
        2 => c.ccx(controls[0], controls[1], target),
        k => {
            assert!(anc.len() >= k - 2, "mcx ladder needs {} ancillas", k - 2);
            c.ccx(controls[0], controls[1], anc[0]);
            for i in 2..k - 1 {
                c.ccx(controls[i], anc[i - 2], anc[i - 1]);
            }
            c.ccx(controls[k - 1], anc[k - 3], target);
            for i in (2..k - 1).rev() {
                c.ccx(controls[i], anc[i - 2], anc[i - 1]);
            }
            c.ccx(controls[0], controls[1], anc[0]);
        }
    }
}

/// Grover search: `data` work qubits, a Toffoli-ladder oracle and diffusion
/// per iteration. `grover(5, 4, 2)` (9 qubits) is the stand-in for the
/// paper's 9-qubit `grover` row — oracle-style, highly serial,
/// non-bipartite communication graph.
#[must_use]
pub fn grover(data: usize, anc: usize, iterations: usize) -> Circuit {
    let n = data + anc;
    let mut c = Circuit::with_name(n, format!("grover_n{n}"));
    let data_q: Vec<usize> = (0..data).collect();
    let anc_q: Vec<usize> = (data..n).collect();
    for &q in &data_q {
        c.h(q);
    }
    let last_anc = *anc_q.last().expect("grover needs at least one ancilla");
    let ladder_anc = &anc_q[..anc_q.len() - 1];
    for _ in 0..iterations {
        // Oracle: flag the marked state.
        mcx_ladder(&mut c, &data_q, ladder_anc, last_anc);
        c.single(last_anc, crate::circuit::SingleGate::Z);
        mcx_ladder(&mut c, &data_q, ladder_anc, last_anc);
        // Diffusion about the mean.
        for &q in &data_q {
            c.h(q);
            c.x(q);
        }
        mcx_ladder(&mut c, &data_q, ladder_anc, last_anc);
        c.single(last_anc, crate::circuit::SingleGate::Z);
        mcx_ladder(&mut c, &data_q, ladder_anc, last_anc);
        for &q in &data_q {
            c.x(q);
            c.h(q);
        }
    }
    c
}

/// The 9-qubit `grover` stand-in (paper row: α=110, g=132; see
/// `EXPERIMENTS.md` for generated values).
#[must_use]
pub fn grover_n9() -> Circuit {
    let mut c = grover(5, 4, 1);
    c.set_name("grover_n9");
    c
}

/// Oracle-cascade workload: `rounds` repetitions of a Toffoli-ladder
/// multi-controlled-Z over `vars` variables (a Grover-style phase oracle).
/// Used as the synthetic equivalent for QASMbench's `sat` and
/// `square_root` circuits, which are dominated by exactly this pattern.
#[must_use]
pub fn oracle_cascade(vars: usize, anc: usize, rounds: usize, name: &str) -> Circuit {
    let n = vars + anc;
    let mut c = Circuit::with_name(n, name);
    let var_q: Vec<usize> = (0..vars).collect();
    let anc_q: Vec<usize> = (vars..n).collect();
    let last_anc = *anc_q.last().expect("oracle cascade needs an ancilla");
    let ladder = &anc_q[..anc_q.len() - 1];
    for &q in &var_q {
        c.h(q);
    }
    for r in 0..rounds {
        // Vary the "marked" pattern per round with X conjugation.
        for (i, &q) in var_q.iter().enumerate() {
            if (r >> (i % 4)) & 1 == 1 {
                c.x(q);
            }
        }
        mcx_ladder(&mut c, &var_q, ladder, last_anc);
        c.single(last_anc, crate::circuit::SingleGate::Z);
        mcx_ladder(&mut c, &var_q, ladder, last_anc);
        for (i, &q) in var_q.iter().enumerate() {
            if (r >> (i % 4)) & 1 == 1 {
                c.x(q);
            }
        }
    }
    c
}

/// Stand-in for `sat_n11` (paper row: α=204, g=252).
#[must_use]
pub fn sat_n11() -> Circuit {
    oracle_cascade(5, 6, 3, "sat_n11")
}

/// Stand-in for the paper's `square_root_n4` row (11 qubits, α=221, g=294).
#[must_use]
pub fn square_root_n11() -> Circuit {
    oracle_cascade(6, 5, 3, "square_root_n11")
}

/// Stand-in for `square_root_n18` (α=644, g=898).
#[must_use]
pub fn square_root_n18() -> Circuit {
    oracle_cascade(9, 9, 5, "square_root_n18")
}

/// Carry-aware shift-and-add multiplier on two `k`-bit operands with a
/// `2k`-bit product register and `k` carry ancillas (n = 5k qubits). Each
/// partial product costs 4 Toffolis + 1 CNOT. `multiplier(3)` (15 qubits)
/// and `multiplier(5)` (25 qubits) are the stand-ins for `multiplier_n15`
/// (α=133, g=222) and `multiplier_n25` (α=381, g=670).
///
/// # Panics
///
/// Panics if `k < 2`.
#[must_use]
pub fn multiplier(k: usize) -> Circuit {
    assert!(k >= 2, "multiplier needs at least 2-bit operands");
    let n = 5 * k;
    let mut c = Circuit::with_name(n, format!("multiplier_n{n}"));
    let a: Vec<usize> = (0..k).collect();
    let b: Vec<usize> = (k..2 * k).collect();
    let p: Vec<usize> = (2 * k..4 * k).collect();
    let anc: Vec<usize> = (4 * k..5 * k).collect();
    for i in 0..k {
        for j in 0..k {
            // Compute the partial product into the carry ancilla, ripple it
            // into the product register, then uncompute.
            c.ccx(a[i], b[j], anc[j]);
            c.ccx(anc[j], p[i + j], p[(i + j + 1).min(2 * k - 1)]);
            c.ccx(p[(i + j + 1).min(2 * k - 1)], anc[j], anc[(j + 1) % k]);
            c.cnot(anc[j], p[i + j]);
            c.ccx(a[i], b[j], anc[j]);
        }
    }
    c
}

/// Stand-in for `multiplier_n15` (α=133, g=222).
#[must_use]
pub fn multiplier_n15() -> Circuit {
    multiplier(3)
}

/// Stand-in for `multiplier_n25` (α=381, g=670).
#[must_use]
pub fn multiplier_n25() -> Circuit {
    multiplier(5)
}

/// Small multiplier used by the ablation tables (`multiply_n13`, α=23,
/// g=40): 2-bit operands, 4-bit product, one carry ancilla, four idle
/// qubits (QASMbench declares 13).
#[must_use]
pub fn multiply_n13() -> Circuit {
    let mut c = Circuit::with_name(13, "multiply_n13");
    let a = [0, 1];
    let b = [2, 3];
    let p = [4, 5, 6, 7];
    let anc = 8;
    for i in 0..2 {
        for j in 0..2 {
            c.ccx(a[i], b[j], p[i + j]);
        }
    }
    for m in 0..3 {
        c.ccx(p[m], anc, p[m + 1]);
    }
    c.cnot(anc, p[3]);
    c.cnot(p[3], anc);
    c
}

/// Stand-in for `qf21_n15` (order finding for 21; α=112, g=115): a
/// 112-gate dependency chain through a hub qubit plus three off-path
/// gates, giving exactly the paper's α=112, g=115 profile and a
/// non-bipartite communication graph.
#[must_use]
pub fn qf21_n15() -> Circuit {
    let n = 15;
    let mut c = Circuit::with_name(n, "qf21_n15");
    for k in 0..112 {
        let partner = 1 + (k % (n - 1));
        if k % 2 == 0 {
            c.cnot(0, partner);
        } else {
            c.cnot(partner, 0);
        }
    }
    // Three gates off the critical path: their operands' last hub uses are
    // early enough that these land below depth 112, and the (1,2) edge
    // closes a triangle with the hub edges (0,1) and (0,2), so the
    // communication graph is not bipartite.
    c.cnot(1, 2);
    c.cnot(3, 4);
    c.cnot(5, 6);
    c
}

/// Swap test between two `k`-qubit states with a shared control ancilla:
/// `k` Fredkin gates at 8 CNOTs each. `swap_test(12)` reproduces the
/// paper's `swap_test_n25` gate count (g=96, n=25).
#[must_use]
pub fn swap_test(k: usize) -> Circuit {
    let n = 2 * k + 1;
    let mut c = Circuit::with_name(n, format!("swap_test_n{n}"));
    let ctl = 0;
    c.h(ctl);
    for i in 0..k {
        c.cswap(ctl, 1 + i, 1 + k + i);
    }
    c.h(ctl);
    c
}

/// The paper's `swap_test_n25` benchmark (g=96).
#[must_use]
pub fn swap_test_n25() -> Circuit {
    swap_test(12)
}

/// Linear W-state preparation: a chain of controlled-Ry (2 CNOTs each)
/// followed by a CNOT per stage. The communication graph is a path
/// (bipartite), matching the property that makes `wstate_n27` compile to
/// depth α under Ecmas.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn wstate(n: usize) -> Circuit {
    assert!(n >= 2, "wstate needs at least two qubits");
    let mut c = Circuit::with_name(n, format!("wstate_n{n}"));
    c.x(n - 1);
    for i in (1..n).rev() {
        let theta = 2.0 * (1.0 / (f64::from(u32::try_from(i).unwrap_or(u32::MAX)))).sqrt().acos();
        c.cry(i, i - 1, theta);
        c.cnot(i - 1, i);
    }
    c
}

/// The paper's `wstate_n27` benchmark (paper row: α=28, g=52; this
/// generator uses the standard 3-CNOT stage — see `EXPERIMENTS.md`).
#[must_use]
pub fn wstate_n27() -> Circuit {
    wstate(27)
}

/// Discrete-time quantum walk on a 32-node cycle: 5 position qubits, one
/// coin, 5 ladder ancillas (11 qubits). Each step applies a
/// coin-controlled increment and an X-conjugated decrement built from
/// multi-controlled-X ladders. `quantum_walk(74)` is the size-matched
/// stand-in for the paper's `quantum_walk` row (α=14104, g=14372).
#[must_use]
pub fn quantum_walk(steps: usize) -> Circuit {
    let n = 11;
    let mut c = Circuit::with_name(n, "quantum_walk_n11");
    let pos: Vec<usize> = (0..5).collect();
    let coin = 5;
    let anc: Vec<usize> = (6..11).collect();
    for _ in 0..steps {
        c.h(coin);
        // Increment controlled on the coin: MSB first.
        for j in (0..5).rev() {
            let mut controls = vec![coin];
            controls.extend(&pos[..j]);
            mcx_ladder(&mut c, &controls, &anc, pos[j]);
        }
        // Decrement = X-conjugated increment, controlled on ¬coin.
        c.x(coin);
        for &q in &pos {
            c.x(q);
        }
        for j in (0..5).rev() {
            let mut controls = vec![coin];
            controls.extend(&pos[..j]);
            mcx_ladder(&mut c, &controls, &anc, pos[j]);
        }
        for &q in &pos {
            c.x(q);
        }
        c.x(coin);
    }
    c
}

/// The paper's `quantum_walk` row stand-in (11 qubits, ≈14k CNOTs).
#[must_use]
pub fn quantum_walk_n11() -> Circuit {
    quantum_walk(74)
}

/// Shor-style order-finding stand-in on 12 qubits: rounds of a controlled
/// CDKM ripple adder (modular-multiply skeleton) interleaved with
/// controlled-phase sweeps. `shor(163)` matches the scale of the paper's
/// `shor` row (α=13412, g=13838).
#[must_use]
pub fn shor(rounds: usize) -> Circuit {
    let n = 12;
    let mut c = Circuit::with_name(n, "shor_n12");
    let ctl = 0;
    let a = [1, 2, 3, 4];
    let b = [5, 6, 7, 8];
    let cin = 9;
    let cout = 10;
    let anc = 11;
    for r in 0..rounds {
        c.h(ctl);
        // Controlled ripple add: MAJ/UMA chains with the round's control
        // folded in through the carry ancilla.
        c.ccx(ctl, a[0], anc);
        c.cnot(anc, cin);
        c.ccx(ctl, a[0], anc);
        for i in 0..4 {
            let x = if i == 0 { cin } else { a[i - 1] };
            c.cnot(a[i], b[i]);
            c.cnot(a[i], x);
            c.ccx(x, b[i], a[i]);
        }
        c.cnot(a[3], cout);
        for i in (0..4).rev() {
            let x = if i == 0 { cin } else { a[i - 1] };
            c.ccx(x, b[i], a[i]);
            c.cnot(a[i], x);
            c.cnot(x, b[i]);
        }
        // Phase sweep back onto the control (semiclassical QFT flavour).
        c.cp(ctl, b[r % 4], PI / f64::from(1 + (r % 7) as u8));
    }
    c
}

/// The paper's `shor` row stand-in (12 qubits, ≈13.8k CNOTs).
#[must_use]
pub fn shor_n12() -> Circuit {
    shor(163)
}

/// The 22 circuits of the paper's Table I, in row order.
#[must_use]
pub fn table1_suite() -> Vec<Circuit> {
    vec![
        dnn_n8(),
        grover_n9(),
        qpe_n9(),
        bv_n10(),
        qft_n10(),
        adder_n10(),
        ising_n10(),
        sat_n11(),
        square_root_n11(),
        multiplier_n15(),
        qf21_n15(),
        dnn_n16(),
        square_root_n18(),
        ghz_state_n23(),
        multiplier_n25(),
        swap_test_n25(),
        wstate_n27(),
        bv_n50(),
        qft_n50(),
        ising_n50(),
        quantum_walk_n11(),
        shor_n12(),
    ]
}

/// The 11 circuits shared by the ablation studies (Tables II–V).
#[must_use]
pub fn ablation_suite() -> Vec<Circuit> {
    vec![
        dnn_n8(),
        grover_n9(),
        qpe_n9(),
        ising_n10(),
        adder_n10(),
        qft_n10(),
        multiply_n13(),
        square_root_n18(),
        ghz_state_n23(),
        swap_test_n25(),
        ising_n50(),
    ]
}

/// Looks up a benchmark by its canonical name (as produced by
/// [`Circuit::name`]). Returns `None` for unknown names.
#[must_use]
pub fn by_name(name: &str) -> Option<Circuit> {
    let c = match name {
        "dnn_n8" => dnn_n8(),
        "dnn_n16" => dnn_n16(),
        "grover_n9" => grover_n9(),
        "qpe_n9" => qpe_n9(),
        "bv_n10" => bv_n10(),
        "bv_n50" => bv_n50(),
        "qft_n10" => qft_n10(),
        "qft_n50" => qft_n50(),
        "adder_n10" => adder_n10(),
        "ising_n10" => ising_n10(),
        "ising_n50" => ising_n50(),
        "sat_n11" => sat_n11(),
        "square_root_n11" => square_root_n11(),
        "square_root_n18" => square_root_n18(),
        "multiplier_n15" => multiplier_n15(),
        "multiplier_n25" => multiplier_n25(),
        "multiply_n13" => multiply_n13(),
        "qf21_n15" => qf21_n15(),
        "ghz_state_n23" => ghz_state_n23(),
        "swap_test_n25" => swap_test_n25(),
        "wstate_n27" => wstate_n27(),
        "quantum_walk_n11" => quantum_walk_n11(),
        "shor_n12" => shor_n12(),
        "steane_syndrome_n13" => steane_syndrome(),
        _ => return None,
    };
    Some(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dnn_n8_matches_paper_row() {
        let c = dnn_n8();
        assert_eq!(c.qubits(), 8);
        assert_eq!(c.cnot_count(), 192);
        assert_eq!(c.depth(), 48);
        assert!(c.comm_graph().bipartition().is_some(), "dnn is complete bipartite");
    }

    #[test]
    fn dnn_n16_matches_paper_row() {
        let c = dnn_n16();
        assert_eq!((c.qubits(), c.cnot_count(), c.depth()), (16, 384, 48));
    }

    #[test]
    fn ising_rows_match_paper() {
        let c10 = ising_n10();
        assert_eq!((c10.qubits(), c10.cnot_count(), c10.depth()), (10, 90, 20));
        let c50 = ising_n50();
        assert_eq!((c50.qubits(), c50.cnot_count(), c50.depth()), (50, 98, 4));
        assert!(c10.comm_graph().bipartition().is_some(), "a chain is bipartite");
    }

    #[test]
    fn ghz_matches_paper() {
        let c = ghz_state_n23();
        assert_eq!((c.qubits(), c.cnot_count(), c.depth()), (23, 22, 22));
    }

    #[test]
    fn bv_rows_match_paper() {
        let c = bv_n10();
        assert_eq!((c.qubits(), c.cnot_count(), c.depth()), (10, 5, 5));
        let c = bv_n50();
        assert_eq!((c.qubits(), c.cnot_count(), c.depth()), (50, 27, 27));
    }

    #[test]
    fn qft10_gate_count_matches_paper() {
        let c = qft_n10();
        assert_eq!(c.cnot_count(), 105);
        assert!(c.comm_graph().bipartition().is_none(), "complete graph is not bipartite");
    }

    #[test]
    fn adder_matches_paper_gate_count() {
        let c = adder_n10();
        assert_eq!(c.qubits(), 10);
        assert_eq!(c.cnot_count(), 65);
    }

    #[test]
    fn swap_test_matches_paper_gate_count() {
        let c = swap_test_n25();
        assert_eq!(c.qubits(), 25);
        assert_eq!(c.cnot_count(), 96);
    }

    #[test]
    fn qf21_profile_matches_paper() {
        let c = qf21_n15();
        assert_eq!((c.qubits(), c.cnot_count(), c.depth()), (15, 115, 112));
        assert!(c.comm_graph().bipartition().is_none());
    }

    #[test]
    fn oracle_circuits_are_serial() {
        for c in [grover_n9(), sat_n11(), square_root_n18()] {
            let ratio = c.depth() as f64 / c.cnot_count() as f64;
            assert!(ratio > 0.5, "{} should be mostly serial, got depth ratio {ratio}", c.name());
        }
    }

    #[test]
    fn wstate_is_bipartite_path() {
        let c = wstate_n27();
        assert_eq!(c.qubits(), 27);
        assert!(c.comm_graph().bipartition().is_some());
    }

    #[test]
    fn big_circuits_have_paper_scale() {
        let qw = quantum_walk_n11();
        assert_eq!(qw.qubits(), 11);
        assert!((13_000..16_000).contains(&qw.cnot_count()), "got {}", qw.cnot_count());
        let sh = shor_n12();
        assert_eq!(sh.qubits(), 12);
        assert!((12_000..15_000).contains(&sh.cnot_count()), "got {}", sh.cnot_count());
    }

    #[test]
    fn suites_are_complete() {
        assert_eq!(table1_suite().len(), 22);
        assert_eq!(ablation_suite().len(), 11);
    }

    #[test]
    fn by_name_round_trips() {
        for c in table1_suite() {
            let looked_up = by_name(c.name()).unwrap_or_else(|| panic!("missing {}", c.name()));
            assert_eq!(looked_up.cnot_count(), c.cnot_count());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(qft_n10(), qft_n10());
        assert_eq!(shor(3), shor(3));
    }
}

/// MaxCut QAOA on a seeded random 3-regular-ish graph: per layer, a ZZ
/// rotation (2 CNOTs) per graph edge followed by an X-mixer. A modern
/// NISQ-era workload with tunable parallelism — not part of the paper's
/// table rows, provided for downstream users.
///
/// # Panics
///
/// Panics if `n < 4`.
#[must_use]
pub fn qaoa(n: usize, layers: usize, seed: u64) -> Circuit {
    assert!(n >= 4, "qaoa needs at least four qubits");
    let mut c = Circuit::with_name(n, format!("qaoa_n{n}_p{layers}"));
    // Deterministic pseudo-random edge set: ring plus chords.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let mut state = seed | 1;
    for i in 0..n / 2 {
        state = state.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
        let j = (state >> 33) as usize % n;
        if j != i && !edges.contains(&(i.min(j), i.max(j))) {
            edges.push((i.min(j), i.max(j)));
        }
    }
    for q in 0..n {
        c.h(q);
    }
    for layer in 0..layers {
        let gamma = 0.4 + 0.05 * layer as f64;
        for &(a, b) in &edges {
            c.cnot(a, b);
            c.rz(b, gamma);
            c.cnot(a, b);
        }
        for q in 0..n {
            c.single(q, crate::circuit::SingleGate::Rx(0.7));
        }
    }
    c
}

/// Hardware-efficient VQE ansatz: `layers` of per-qubit Ry/Rz rotations
/// followed by a linear CNOT entangler. The communication graph is a path
/// (bipartite), so Ecmas compiles it at depth.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn vqe_ansatz(n: usize, layers: usize) -> Circuit {
    assert!(n >= 2, "vqe ansatz needs at least two qubits");
    let mut c = Circuit::with_name(n, format!("vqe_n{n}_l{layers}"));
    for layer in 0..layers {
        for q in 0..n {
            c.ry(q, 0.1 + 0.01 * (layer * n + q) as f64);
            c.rz(q, 0.2 + 0.01 * q as f64);
        }
        for q in 0..n - 1 {
            c.cnot(q, q + 1);
        }
    }
    c
}

/// One syndrome-extraction round of the Steane `[[7,1,3]]` code: six
/// stabilizer generators measured through six ancillas, four CNOTs each
/// (n = 13). The classic fault-tolerance substrate circuit.
#[must_use]
pub fn steane_syndrome() -> Circuit {
    let mut c = Circuit::with_name(13, "steane_syndrome_n13");
    // Steane generators on data qubits 0..7 (classical Hamming [7,4]):
    // supports {0,2,4,6}, {1,2,5,6}, {3,4,5,6} for both X and Z types.
    let supports: [[usize; 4]; 3] = [[0, 2, 4, 6], [1, 2, 5, 6], [3, 4, 5, 6]];
    // X-stabilizers: ancilla in |+⟩ controls CNOTs into the data.
    for (k, support) in supports.iter().enumerate() {
        let anc = 7 + k;
        c.h(anc);
        for &d in support {
            c.cnot(anc, d);
        }
        c.h(anc);
        c.single(anc, crate::circuit::SingleGate::Measure);
    }
    // Z-stabilizers: data controls CNOTs into the ancilla.
    for (k, support) in supports.iter().enumerate() {
        let anc = 10 + k;
        for &d in support {
            c.cnot(d, anc);
        }
        c.single(anc, crate::circuit::SingleGate::Measure);
    }
    c
}

#[cfg(test)]
mod extension_tests {
    use super::*;

    #[test]
    fn qaoa_profile() {
        let c = qaoa(8, 2, 7);
        assert_eq!(c.qubits(), 8);
        assert!(c.cnot_count() >= 2 * 8 * 2, "ring edges alone give 32 CNOTs");
        assert_eq!(qaoa(8, 2, 7), qaoa(8, 2, 7), "deterministic");
    }

    #[test]
    fn vqe_is_bipartite_path() {
        let c = vqe_ansatz(10, 3);
        assert_eq!(c.cnot_count(), 27);
        assert!(c.comm_graph().bipartition().is_some());
        // Consecutive entangler chains pipeline at a 2-cycle offset.
        assert_eq!(c.depth(), (10 - 1) + 2 * (3 - 1));
    }

    #[test]
    fn steane_has_24_cnots() {
        let c = steane_syndrome();
        assert_eq!(c.qubits(), 13);
        assert_eq!(c.cnot_count(), 24);
        assert!(by_name("steane_syndrome_n13").is_some());
    }
}
