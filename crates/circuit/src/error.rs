use std::error::Error;
use std::fmt;

/// Error produced when constructing or transforming a [`Circuit`].
///
/// [`Circuit`]: crate::Circuit
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit index `qubit` on a circuit with only
    /// `qubits` logical qubits.
    QubitOutOfRange {
        /// The offending qubit index.
        qubit: usize,
        /// The number of qubits in the circuit.
        qubits: usize,
    },
    /// A two-qubit gate was applied with identical control and target.
    ControlEqualsTarget {
        /// The repeated qubit index.
        qubit: usize,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CircuitError::QubitOutOfRange { qubit, qubits } => {
                write!(f, "qubit index {qubit} out of range for {qubits}-qubit circuit")
            }
            CircuitError::ControlEqualsTarget { qubit } => {
                write!(f, "control and target are both qubit {qubit}")
            }
        }
    }
}

impl Error for CircuitError {}
