use crate::circuit::{Circuit, CnotGate};

/// Identifier of a CNOT gate: its index into [`Circuit::cnot_gates`].
pub type GateId = usize;

/// The dependency DAG `G_P` over a circuit's CNOT gates (paper §III).
///
/// Each node is a CNOT gate; an edge `u → v` means `v` is the next gate
/// acting on one of `u`'s operand qubits, so `v` cannot start before `u`
/// finishes. Every node therefore has at most two parents and two children
/// (one per operand qubit).
///
/// The DAG is immutable; schedulers keep their own mutable in-degree
/// counters. Precomputed per-gate data:
///
/// * [`level`](Self::level) — ASAP layer (1-based); `max` over gates is the
///   circuit depth `α` ([`depth`](Self::depth)).
/// * [`alap_level`](Self::alap_level) — ALAP layer under the `α`-layer
///   horizon (the "High" value of Algorithm Para-Finding).
/// * [`criticality`](Self::criticality) — length of the longest dependency
///   chain starting at the gate (inclusive), the primary scheduling
///   priority of Algorithm 1.
/// * [`descendant_counts`](Self::descendant_counts) — exact number of gates
///   that transitively depend on each gate (the tie-breaking priority).
///
/// # Example
///
/// ```
/// use ecmas_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.cnot(0, 1);
/// c.cnot(1, 2);
/// c.cnot(0, 1);
/// let dag = c.dag();
/// assert_eq!(dag.depth(), 3); // all three serialize through qubit 1
/// assert_eq!(dag.criticality(0), 3);
/// assert_eq!(dag.parents(0), &[]);
/// ```
#[derive(Clone, Debug)]
pub struct GateDag {
    gates: Vec<CnotGate>,
    qubits: usize,
    // Adjacency in fixed-width flat arrays: every node has at most two
    // parents and two children (one per operand qubit), so slots
    // `2·id..2·id+count` hold them with no per-node allocation — the
    // validator and every scheduler rebuild this on hot paths.
    parents: Vec<GateId>,
    parent_count: Vec<u8>,
    children: Vec<GateId>,
    child_count: Vec<u8>,
    level: Vec<u32>,
    alap: Vec<u32>,
    criticality: Vec<u32>,
    depth: u32,
}

impl GateDag {
    /// Builds the DAG for `circuit`'s CNOT gates.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        let gates: Vec<CnotGate> = circuit.cnot_gates().to_vec();
        let n = gates.len();
        let qubits = circuit.qubits();
        let mut parents: Vec<GateId> = vec![0; 2 * n];
        let mut parent_count = vec![0u8; n];
        let mut children: Vec<GateId> = vec![0; 2 * n];
        let mut child_count = vec![0u8; n];
        // Last gate seen on each qubit while scanning in program order.
        let mut last: Vec<Option<GateId>> = vec![None; qubits];
        for (id, g) in gates.iter().enumerate() {
            for q in [g.control, g.target] {
                if let Some(p) = last[q] {
                    // Dedup: both operands may share the same parent.
                    let pc = usize::from(parent_count[id]);
                    if pc == 0 || parents[2 * id] != p {
                        parents[2 * id + pc] = p;
                        parent_count[id] = u8::try_from(pc + 1).expect("at most 2 parents");
                        let cc = usize::from(child_count[p]);
                        children[2 * p + cc] = id;
                        child_count[p] = u8::try_from(cc + 1).expect("at most 2 children");
                    }
                }
                last[q] = Some(id);
            }
        }

        // ASAP levels (program order is a topological order).
        let mut level = vec![0u32; n];
        let mut depth = 0u32;
        for id in 0..n {
            let ps = &parents[2 * id..2 * id + usize::from(parent_count[id])];
            let l = ps.iter().map(|&p| level[p]).max().unwrap_or(0) + 1;
            level[id] = l;
            depth = depth.max(l);
        }

        // Criticality: longest chain from the gate to a sink, inclusive.
        let mut criticality = vec![0u32; n];
        for id in (0..n).rev() {
            let cs = &children[2 * id..2 * id + usize::from(child_count[id])];
            let below = cs.iter().map(|&c| criticality[c]).max().unwrap_or(0);
            criticality[id] = below + 1;
        }

        // ALAP level under the α-layer horizon: High = depth − (chain below).
        let mut alap = vec![0u32; n];
        for id in 0..n {
            alap[id] = depth - (criticality[id] - 1);
        }

        GateDag {
            gates,
            qubits,
            parents,
            parent_count,
            children,
            child_count,
            level,
            alap,
            criticality,
            depth,
        }
    }

    /// The gates, indexed by [`GateId`].
    #[must_use]
    pub fn gates(&self) -> &[CnotGate] {
        &self.gates
    }

    /// The gate with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn gate(&self, id: GateId) -> CnotGate {
        self.gates[id]
    }

    /// Number of gates `g`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// `true` if the circuit has no CNOT gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of logical qubits in the underlying circuit.
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// Circuit depth `α` (critical-path length).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Immediate predecessors of `id` (at most two).
    #[must_use]
    pub fn parents(&self, id: GateId) -> &[GateId] {
        &self.parents[2 * id..2 * id + usize::from(self.parent_count[id])]
    }

    /// Immediate successors of `id` (at most two).
    #[must_use]
    pub fn children(&self, id: GateId) -> &[GateId] {
        &self.children[2 * id..2 * id + usize::from(self.child_count[id])]
    }

    /// ASAP layer of the gate, 1-based ("Low" in Algorithm Para-Finding).
    #[must_use]
    pub fn level(&self, id: GateId) -> usize {
        self.level[id] as usize
    }

    /// ALAP layer of the gate under the `α`-layer horizon ("High").
    #[must_use]
    pub fn alap_level(&self, id: GateId) -> usize {
        self.alap[id] as usize
    }

    /// Length of the longest dependency chain starting at `id`, inclusive.
    #[must_use]
    pub fn criticality(&self, id: GateId) -> usize {
        self.criticality[id] as usize
    }

    /// Gates with no predecessors.
    #[must_use]
    pub fn sources(&self) -> Vec<GateId> {
        (0..self.len()).filter(|&id| self.parent_count[id] == 0).collect()
    }

    /// Exact number of transitive descendants of every gate ("remaining
    /// gates number" in §IV-B2), computed with a bitset sweep in reverse
    /// topological order. Costs `O(g²/64)` time and transient memory.
    #[must_use]
    pub fn descendant_counts(&self) -> Vec<u32> {
        let n = self.len();
        let words = n.div_ceil(64);
        let mut reach = vec![0u64; n * words];
        let mut counts = vec![0u32; n];
        for id in (0..n).rev() {
            // Split `reach` so we can borrow the row for `id` mutably while
            // reading the (strictly later) child rows.
            let (head, tail) = reach.split_at_mut((id + 1) * words);
            let row = &mut head[id * words..];
            for &c in self.children(id) {
                debug_assert!(c > id, "children always have larger program order");
                let crow = &tail[(c - id - 1) * words..(c - id) * words];
                for (w, &cw) in row.iter_mut().zip(crow) {
                    *w |= cw;
                }
                row[c / 64] |= 1u64 << (c % 64);
            }
            counts[id] = row.iter().map(|w| w.count_ones()).sum();
        }
        counts
    }

    /// Groups gate ids by ASAP level: `result[l]` holds the gates of layer
    /// `l+1`. The greedy ASAP layering is a valid execution scheme, though
    /// Para-Finding (in the `ecmas` crate) balances layer sizes better.
    #[must_use]
    pub fn asap_layers(&self) -> Vec<Vec<GateId>> {
        let mut layers = vec![Vec::new(); self.depth as usize];
        for id in 0..self.len() {
            layers[self.level[id] as usize - 1].push(id);
        }
        layers
    }
}

#[cfg(test)]
mod tests {

    use crate::circuit::Circuit;

    fn chain3() -> Circuit {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(2, 3);
        c
    }

    #[test]
    fn chain_depth_and_levels() {
        let dag = chain3().dag();
        assert_eq!(dag.depth(), 3);
        assert_eq!(dag.level(0), 1);
        assert_eq!(dag.level(2), 3);
        assert_eq!(dag.alap_level(0), 1);
        assert_eq!(dag.criticality(0), 3);
        assert_eq!(dag.criticality(2), 1);
    }

    #[test]
    fn parents_children_of_chain() {
        let dag = chain3().dag();
        assert_eq!(dag.parents(0), &[]);
        assert_eq!(dag.children(0), &[1]);
        assert_eq!(dag.parents(2), &[1]);
        assert_eq!(dag.sources(), vec![0]);
    }

    #[test]
    fn parallel_gates_share_level() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1);
        c.cnot(2, 3);
        let dag = c.dag();
        assert_eq!(dag.depth(), 1);
        assert_eq!(dag.level(0), 1);
        assert_eq!(dag.level(1), 1);
        assert_eq!(dag.asap_layers(), vec![vec![0, 1]]);
    }

    #[test]
    fn duplicate_parent_is_deduped() {
        // Two successive gates on the same pair: the child has one parent.
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(0, 1);
        let dag = c.dag();
        assert_eq!(dag.parents(1), &[0]);
        assert_eq!(dag.children(0), &[1]);
    }

    #[test]
    fn descendant_counts_chain() {
        let dag = chain3().dag();
        assert_eq!(dag.descendant_counts(), vec![2, 1, 0]);
    }

    #[test]
    fn descendant_counts_diamond() {
        // g0 feeds g1 and g2 (different qubits), both feed g3.
        let mut c = Circuit::new(4);
        c.cnot(0, 1); // g0
        c.cnot(0, 2); // g1 (depends on g0 via qubit 0)
        c.cnot(1, 3); // g2 (depends on g0 via qubit 1)
        c.cnot(2, 3); // g3 (depends on g1 and g2)
        let dag = c.dag();
        assert_eq!(dag.descendant_counts(), vec![3, 1, 1, 0]);
    }

    #[test]
    fn slack_zero_on_critical_path() {
        let dag = chain3().dag();
        for id in 0..dag.len() {
            assert_eq!(dag.level(id), dag.alap_level(id), "chain gates have no slack");
        }
    }

    #[test]
    fn alap_at_least_asap() {
        let mut c = Circuit::new(6);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(2, 3);
        c.cnot(4, 5); // slack 2: can go in layer 1..3
        let dag = c.dag();
        assert_eq!(dag.level(3), 1);
        assert_eq!(dag.alap_level(3), 3);
    }

    #[test]
    fn empty_circuit_dag() {
        let dag = Circuit::new(3).dag();
        assert!(dag.is_empty());
        assert_eq!(dag.depth(), 0);
        assert!(dag.sources().is_empty());
        assert!(dag.descendant_counts().is_empty());
    }
}
