use crate::circuit::Circuit;

/// One weighted edge of a [`CommGraph`]: `weight` CNOTs act on the qubit
/// pair `(a, b)` (stored with `a < b`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CommEdge {
    /// Smaller qubit index.
    pub a: usize,
    /// Larger qubit index.
    pub b: usize,
    /// Number of CNOTs between the pair (`γ_ij` in the paper).
    pub weight: u32,
}

/// The communication graph `G_C` of a circuit (paper §III, Fig. 6c).
///
/// Vertices are logical qubits; an edge `(i, j)` with weight `γ_ij` records
/// that the circuit contains `γ_ij` CNOTs between qubits `i` and `j`
/// (direction ignored). The initial mapping minimizes
/// `Σ γ_ij · manhattan(tile_i, tile_j)` over this graph, and the cut-type
/// initialization two-colors prefixes of it.
///
/// # Example
///
/// ```
/// use ecmas_circuit::Circuit;
///
/// let mut c = Circuit::new(3);
/// c.cnot(0, 1);
/// c.cnot(1, 0); // same pair, other direction
/// c.cnot(1, 2);
/// let g = c.comm_graph();
/// assert_eq!(g.weight(0, 1), 2);
/// assert_eq!(g.weight(1, 2), 1);
/// assert!(g.bipartition().is_some()); // a path is bipartite
/// ```
#[derive(Clone, Debug)]
pub struct CommGraph {
    qubits: usize,
    edges: Vec<CommEdge>,
    adj: Vec<Vec<(usize, u32)>>,
}

impl CommGraph {
    /// Builds the communication graph of `circuit`.
    #[must_use]
    pub fn new(circuit: &Circuit) -> Self {
        let qubits = circuit.qubits();
        // Sort + run-length count instead of a hash map: one allocation,
        // and the edge list comes out in `(a, b)` order for free.
        let mut pairs: Vec<(usize, usize)> = circuit
            .cnot_gates()
            .iter()
            .map(|g| (g.control.min(g.target), g.control.max(g.target)))
            .collect();
        pairs.sort_unstable();
        let mut edges: Vec<CommEdge> = Vec::new();
        for (a, b) in pairs {
            match edges.last_mut() {
                Some(e) if e.a == a && e.b == b => e.weight += 1,
                _ => edges.push(CommEdge { a, b, weight: 1 }),
            }
        }
        let mut adj = vec![Vec::new(); qubits];
        for e in &edges {
            adj[e.a].push((e.b, e.weight));
            adj[e.b].push((e.a, e.weight));
        }
        CommGraph { qubits, edges, adj }
    }

    /// Number of logical qubits (vertices).
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// The deduplicated weighted edges, sorted by `(a, b)`.
    #[must_use]
    pub fn edges(&self) -> &[CommEdge] {
        &self.edges
    }

    /// Neighbors of `q` with edge weights.
    #[must_use]
    pub fn neighbors(&self, q: usize) -> &[(usize, u32)] {
        &self.adj[q]
    }

    /// The CNOT multiplicity `γ_ij` between `i` and `j` (0 if none).
    #[must_use]
    pub fn weight(&self, i: usize, j: usize) -> u32 {
        let (a, b) = (i.min(j), i.max(j));
        self.adj[a].iter().find(|&&(n, _)| n == b).map_or(0, |&(_, w)| w)
    }

    /// Weighted degree of `q`: total CNOTs it participates in.
    #[must_use]
    pub fn weighted_degree(&self, q: usize) -> u32 {
        self.adj[q].iter().map(|&(_, w)| w).sum()
    }

    /// Total edge weight (equals the circuit's CNOT count).
    #[must_use]
    pub fn total_weight(&self) -> u32 {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Attempts to two-color the graph. Returns `Some(side)` with
    /// `side[q] ∈ {0, 1}` if the graph is bipartite (isolated vertices get
    /// side 0), or `None` if it contains an odd cycle.
    ///
    /// On a bipartite communication graph the optimal cut-type
    /// initialization lets *every* CNOT run in one cycle (paper §IV-C1).
    #[must_use]
    pub fn bipartition(&self) -> Option<Vec<u8>> {
        let mut side = vec![u8::MAX; self.qubits];
        let mut queue = Vec::new();
        for start in 0..self.qubits {
            if side[start] != u8::MAX {
                continue;
            }
            side[start] = 0;
            queue.push(start);
            while let Some(v) = queue.pop() {
                for &(w, _) in &self.adj[v] {
                    if side[w] == u8::MAX {
                        side[w] = 1 - side[v];
                        queue.push(w);
                    } else if side[w] == side[v] {
                        return None;
                    }
                }
            }
        }
        Some(side)
    }

    /// The weight of edges crossing a 2-coloring `side` (entries in {0,1}).
    ///
    /// # Panics
    ///
    /// Panics if `side.len() != self.qubits()`.
    #[must_use]
    pub fn cut_weight(&self, side: &[u8]) -> u64 {
        assert_eq!(side.len(), self.qubits, "side length mismatch");
        self.edges.iter().filter(|e| side[e.a] != side[e.b]).map(|e| u64::from(e.weight)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_merge_directions() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        c.cnot(1, 0);
        c.cnot(0, 1);
        let g = c.comm_graph();
        assert_eq!(g.edges(), &[CommEdge { a: 0, b: 1, weight: 3 }]);
        assert_eq!(g.total_weight(), 3);
    }

    #[test]
    fn triangle_is_not_bipartite() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(1, 2);
        c.cnot(2, 0);
        assert!(c.comm_graph().bipartition().is_none());
    }

    #[test]
    fn even_ring_is_bipartite() {
        let mut c = Circuit::new(4);
        for i in 0..4 {
            c.cnot(i, (i + 1) % 4);
        }
        let g = c.comm_graph();
        let side = g.bipartition().expect("4-ring is bipartite");
        for e in g.edges() {
            assert_ne!(side[e.a], side[e.b]);
        }
        assert_eq!(g.cut_weight(&side), u64::from(g.total_weight()));
    }

    #[test]
    fn isolated_vertices_allowed() {
        let mut c = Circuit::new(5);
        c.cnot(0, 1);
        let side = c.comm_graph().bipartition().expect("bipartite");
        assert_eq!(side.len(), 5);
        assert_ne!(side[0], side[1]);
    }

    #[test]
    fn weighted_degree_sums() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(0, 2);
        c.cnot(0, 2);
        let g = c.comm_graph();
        assert_eq!(g.weighted_degree(0), 3);
        assert_eq!(g.weighted_degree(2), 2);
        assert_eq!(g.weight(0, 2), 2);
        assert_eq!(g.weight(1, 2), 0);
    }

    #[test]
    fn cut_weight_counts_crossings() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1);
        c.cnot(1, 2);
        let g = c.comm_graph();
        assert_eq!(g.cut_weight(&[0, 1, 0]), 2);
        assert_eq!(g.cut_weight(&[0, 0, 0]), 0);
        assert_eq!(g.cut_weight(&[0, 0, 1]), 1);
    }
}
