use crate::comm::CommGraph;
use crate::dag::GateDag;
use crate::error::CircuitError;

/// A single-qubit operation kind.
///
/// Single-qubit gates are tracked so that circuits round-trip through the
/// QASM front-end, but they are *free* for mapping and scheduling purposes:
/// the paper executes them in software or locally within a tile (§III).
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum SingleGate {
    /// Hadamard.
    H,
    /// Pauli X.
    X,
    /// Pauli Y.
    Y,
    /// Pauli Z.
    Z,
    /// Phase gate S = √Z.
    S,
    /// Inverse phase gate.
    Sdg,
    /// T = ⁴√Z (requires magic-state distillation; assumed supplied, cf. \[19\]).
    T,
    /// Inverse T.
    Tdg,
    /// Rotation about X by an angle in radians.
    Rx(f64),
    /// Rotation about Y by an angle in radians.
    Ry(f64),
    /// Rotation about Z by an angle in radians.
    Rz(f64),
    /// Diagonal phase rotation `u1(λ)`.
    Phase(f64),
    /// General single-qubit unitary `u3(θ, φ, λ)`.
    U(f64, f64, f64),
    /// Computational-basis measurement (classical bit index is not tracked).
    Measure,
    /// Reset to |0⟩.
    Reset,
}

/// One operation in a [`Circuit`] gate list.
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum Op {
    /// A CNOT gate — the unit of work for surface-code scheduling.
    Cnot {
        /// Control qubit.
        control: usize,
        /// Target qubit.
        target: usize,
    },
    /// A single-qubit gate (free for scheduling).
    Single {
        /// The operand qubit.
        qubit: usize,
        /// The gate kind.
        kind: SingleGate,
    },
    /// A scheduling barrier (kept for QASM round-trips; ignored by the
    /// compiler, which derives dependencies from data flow alone).
    Barrier,
}

/// A CNOT gate extracted from a circuit, in circuit order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CnotGate {
    /// Control qubit.
    pub control: usize,
    /// Target qubit.
    pub target: usize,
}

impl CnotGate {
    /// Returns `true` if this gate acts on `qubit`.
    #[must_use]
    pub fn touches(&self, qubit: usize) -> bool {
        self.control == qubit || self.target == qubit
    }

    /// Returns the operand that is not `qubit`.
    ///
    /// # Panics
    ///
    /// Panics if the gate does not act on `qubit`.
    #[must_use]
    pub fn other(&self, qubit: usize) -> usize {
        if self.control == qubit {
            self.target
        } else if self.target == qubit {
            self.control
        } else {
            panic!("gate {self:?} does not act on qubit {qubit}")
        }
    }
}

/// A logical quantum circuit: a list of operations over `n` logical qubits.
///
/// The builder methods (`h`, `cnot`, `ccx`, …) panic on out-of-range qubits;
/// the checked variants (`try_cnot`, …) return a [`CircuitError`] instead.
/// Multi-qubit gates other than CNOT are decomposed into CNOTs plus
/// single-qubit gates at insertion time, so the scheduler only ever sees
/// CNOTs — exactly the abstraction the paper uses.
///
/// # Example
///
/// ```
/// use ecmas_circuit::Circuit;
///
/// let mut bell = Circuit::new(2);
/// bell.h(0);
/// bell.cnot(0, 1);
/// assert_eq!(bell.cnot_count(), 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Circuit {
    qubits: usize,
    ops: Vec<Op>,
    cnots: Vec<CnotGate>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `qubits` logical qubits.
    #[must_use]
    pub fn new(qubits: usize) -> Self {
        Circuit { qubits, ops: Vec::new(), cnots: Vec::new(), name: String::new() }
    }

    /// Creates an empty named circuit (the name is used by reports).
    #[must_use]
    pub fn with_name(qubits: usize, name: impl Into<String>) -> Self {
        Circuit { qubits, ops: Vec::new(), cnots: Vec::new(), name: name.into() }
    }

    /// The circuit's display name (may be empty).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the circuit.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of logical qubits `n`.
    #[must_use]
    pub fn qubits(&self) -> usize {
        self.qubits
    }

    /// The full operation list, in program order.
    #[must_use]
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// The CNOT gates in program order. Indices into this slice are the
    /// [`GateId`](crate::GateId)s used throughout the compiler.
    #[must_use]
    pub fn cnot_gates(&self) -> &[CnotGate] {
        &self.cnots
    }

    /// Number of CNOT gates `g`.
    #[must_use]
    pub fn cnot_count(&self) -> usize {
        self.cnots.len()
    }

    /// Total number of operations including single-qubit gates.
    #[must_use]
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    fn check_qubit(&self, qubit: usize) -> Result<(), CircuitError> {
        if qubit >= self.qubits {
            Err(CircuitError::QubitOutOfRange { qubit, qubits: self.qubits })
        } else {
            Ok(())
        }
    }

    /// Appends a CNOT gate.
    ///
    /// # Errors
    ///
    /// Returns an error if either operand is out of range or if
    /// `control == target`.
    pub fn try_cnot(&mut self, control: usize, target: usize) -> Result<(), CircuitError> {
        self.check_qubit(control)?;
        self.check_qubit(target)?;
        if control == target {
            return Err(CircuitError::ControlEqualsTarget { qubit: control });
        }
        self.ops.push(Op::Cnot { control, target });
        self.cnots.push(CnotGate { control, target });
        Ok(())
    }

    /// Appends a CNOT gate.
    ///
    /// # Panics
    ///
    /// Panics if either operand is out of range or `control == target`.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.try_cnot(control, target).expect("invalid cnot");
    }

    /// Appends a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `qubit` is out of range.
    pub fn single(&mut self, qubit: usize, kind: SingleGate) {
        self.check_qubit(qubit).expect("invalid single-qubit gate");
        self.ops.push(Op::Single { qubit, kind });
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, qubit: usize) {
        self.single(qubit, SingleGate::H);
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, qubit: usize) {
        self.single(qubit, SingleGate::X);
    }

    /// Appends a T gate.
    pub fn t(&mut self, qubit: usize) {
        self.single(qubit, SingleGate::T);
    }

    /// Appends an inverse T gate.
    pub fn tdg(&mut self, qubit: usize) {
        self.single(qubit, SingleGate::Tdg);
    }

    /// Appends an Rz rotation.
    pub fn rz(&mut self, qubit: usize, angle: f64) {
        self.single(qubit, SingleGate::Rz(angle));
    }

    /// Appends an Ry rotation.
    pub fn ry(&mut self, qubit: usize, angle: f64) {
        self.single(qubit, SingleGate::Ry(angle));
    }

    /// Appends a `u1` phase rotation.
    pub fn phase(&mut self, qubit: usize, angle: f64) {
        self.single(qubit, SingleGate::Phase(angle));
    }

    /// Appends a barrier (ignored by the compiler).
    pub fn barrier(&mut self) {
        self.ops.push(Op::Barrier);
    }

    /// Appends a controlled-Z as `H(t); CNOT(c,t); H(t)`.
    pub fn cz(&mut self, control: usize, target: usize) {
        self.h(target);
        self.cnot(control, target);
        self.h(target);
    }

    /// Appends a controlled-phase `cp(λ)` using the standard two-CNOT
    /// decomposition (`u1(λ/2)` on both operands around the CNOT pair).
    pub fn cp(&mut self, control: usize, target: usize, lambda: f64) {
        self.phase(control, lambda / 2.0);
        self.cnot(control, target);
        self.phase(target, -lambda / 2.0);
        self.cnot(control, target);
        self.phase(target, lambda / 2.0);
    }

    /// Appends a controlled-Ry using the standard two-CNOT decomposition.
    pub fn cry(&mut self, control: usize, target: usize, theta: f64) {
        self.ry(target, theta / 2.0);
        self.cnot(control, target);
        self.ry(target, -theta / 2.0);
        self.cnot(control, target);
    }

    /// Appends a SWAP as three CNOTs.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }

    /// Appends a Toffoli gate using the standard 6-CNOT, 7-T decomposition.
    pub fn ccx(&mut self, c1: usize, c2: usize, target: usize) {
        self.h(target);
        self.cnot(c2, target);
        self.tdg(target);
        self.cnot(c1, target);
        self.t(target);
        self.cnot(c2, target);
        self.tdg(target);
        self.cnot(c1, target);
        self.t(c2);
        self.t(target);
        self.h(target);
        self.cnot(c1, c2);
        self.t(c1);
        self.tdg(c2);
        self.cnot(c1, c2);
    }

    /// Appends a controlled-SWAP (Fredkin) as `CNOT(b,a); CCX(c,a,b); CNOT(b,a)`.
    pub fn cswap(&mut self, control: usize, a: usize, b: usize) {
        self.cnot(b, a);
        self.ccx(control, a, b);
        self.cnot(b, a);
    }

    /// Appends every operation of `other`, offsetting its qubits by `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `other` does not fit (i.e. `offset + other.qubits() >
    /// self.qubits()`).
    pub fn append_offset(&mut self, other: &Circuit, offset: usize) {
        assert!(
            offset + other.qubits <= self.qubits,
            "appended circuit does not fit: offset {offset} + {} > {}",
            other.qubits,
            self.qubits
        );
        for op in &other.ops {
            match *op {
                Op::Cnot { control, target } => self.cnot(control + offset, target + offset),
                Op::Single { qubit, kind } => self.single(qubit + offset, kind),
                Op::Barrier => self.barrier(),
            }
        }
    }

    /// Builds the CNOT dependency DAG `G_P` (see [`GateDag`]).
    #[must_use]
    pub fn dag(&self) -> GateDag {
        GateDag::new(self)
    }

    /// Builds the communication graph `G_C` (see [`CommGraph`]).
    #[must_use]
    pub fn comm_graph(&self) -> CommGraph {
        CommGraph::new(self)
    }

    /// Number of T/T† gates — the magic-state demand. The paper assumes a
    /// steady magic-state supply at each tile (after \[19\]); this count is
    /// what a distillation-factory planner would budget for.
    #[must_use]
    pub fn t_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Single { kind: SingleGate::T | SingleGate::Tdg, .. }))
            .count()
    }

    /// Number of measurement operations.
    #[must_use]
    pub fn measure_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| matches!(op, Op::Single { kind: SingleGate::Measure, .. }))
            .count()
    }

    /// Number of single-qubit gates (excluding measurements and resets).
    #[must_use]
    pub fn single_gate_count(&self) -> usize {
        self.ops
            .iter()
            .filter(|op| {
                matches!(
                    op,
                    Op::Single { kind, .. }
                        if !matches!(kind, SingleGate::Measure | SingleGate::Reset)
                )
            })
            .count()
    }

    /// Circuit depth `α`: the critical-path length of the CNOT DAG.
    ///
    /// Equivalent to `self.dag().depth()` but does not retain the DAG.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut ready = vec![0u32; self.qubits];
        let mut depth = 0;
        for g in &self.cnots {
            let d = ready[g.control].max(ready[g.target]) + 1;
            ready[g.control] = d;
            ready[g.target] = d;
            depth = depth.max(d);
        }
        depth as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_circuit_is_empty() {
        let c = Circuit::new(4);
        assert_eq!(c.qubits(), 4);
        assert_eq!(c.cnot_count(), 0);
        assert_eq!(c.op_count(), 0);
        assert_eq!(c.depth(), 0);
    }

    #[test]
    fn cnot_records_gate() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        assert_eq!(c.cnot_gates(), &[CnotGate { control: 0, target: 1 }]);
    }

    #[test]
    fn try_cnot_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        assert_eq!(c.try_cnot(0, 5), Err(CircuitError::QubitOutOfRange { qubit: 5, qubits: 2 }));
    }

    #[test]
    fn try_cnot_rejects_self_loop() {
        let mut c = Circuit::new(2);
        assert_eq!(c.try_cnot(1, 1), Err(CircuitError::ControlEqualsTarget { qubit: 1 }));
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        assert_eq!(c.cnot_count(), 3);
    }

    #[test]
    fn ccx_is_six_cnots() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2);
        assert_eq!(c.cnot_count(), 6);
    }

    #[test]
    fn cswap_is_eight_cnots() {
        let mut c = Circuit::new(3);
        c.cswap(0, 1, 2);
        assert_eq!(c.cnot_count(), 8);
    }

    #[test]
    fn depth_tracks_dependencies() {
        let mut c = Circuit::new(4);
        c.cnot(0, 1); // layer 1
        c.cnot(2, 3); // layer 1 (independent)
        c.cnot(1, 2); // layer 2
        assert_eq!(c.depth(), 2);
    }

    #[test]
    fn append_offset_shifts_qubits() {
        let mut inner = Circuit::new(2);
        inner.cnot(0, 1);
        let mut outer = Circuit::new(5);
        outer.append_offset(&inner, 3);
        assert_eq!(outer.cnot_gates(), &[CnotGate { control: 3, target: 4 }]);
    }

    #[test]
    fn gate_statistics() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.ccx(0, 1, 2); // 6 CNOTs, 7 T/T†, 2 H inside + more singles
        c.single(2, SingleGate::Measure);
        assert_eq!(c.t_count(), 7);
        assert_eq!(c.measure_count(), 1);
        assert!(c.single_gate_count() >= 8);
        assert_eq!(c.cnot_count(), 6);
    }

    #[test]
    fn cnot_gate_other_operand() {
        let g = CnotGate { control: 2, target: 7 };
        assert_eq!(g.other(2), 7);
        assert_eq!(g.other(7), 2);
        assert!(g.touches(2) && g.touches(7) && !g.touches(3));
    }
}
