//! QUEKO-style layered random circuits with a specified parallelism degree.
//!
//! The paper's scalability studies (Figs. 11 and 12) use "50 random quantum
//! circuits … with 49 qubits, 50 depth, and parallelism ranging from 1 to
//! 21", generated in the spirit of QUEKO \[35\]: circuits built layer by
//! layer with a known depth. [`layered`] reproduces the construction: every
//! layer holds exactly `parallelism` pairwise-disjoint CNOTs, and an anchor
//! chain threads one gate of each layer through the previous layer so the
//! circuit depth is exactly `depth`.
//!
//! # Example
//!
//! ```
//! use ecmas_circuit::random::layered;
//!
//! let c = layered(49, 50, 7, 12345);
//! assert_eq!(c.qubits(), 49);
//! assert_eq!(c.depth(), 50);
//! assert_eq!(c.cnot_count(), 50 * 7);
//! ```

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// Generates a layered random circuit with exactly `parallelism` disjoint
/// CNOTs per layer and depth exactly `depth` (an anchor qubit chains the
/// layers). Deterministic in `seed`.
///
/// This is the Circuit Parallelism Degree knob of the paper's Figs. 11–12:
/// by construction `PM ≤ parallelism`, and the anchor chain keeps the
/// critical path at `depth`, so the balanced layering that achieves depth
/// `α` has layers of exactly `parallelism` gates.
///
/// # Panics
///
/// Panics if `2 * parallelism > n` (layers would need repeated qubits) or
/// if `parallelism == 0`.
#[must_use]
pub fn layered(n: usize, depth: usize, parallelism: usize, seed: u64) -> Circuit {
    assert!(parallelism > 0, "parallelism must be positive");
    assert!(
        2 * parallelism <= n,
        "a layer of {parallelism} CNOTs needs {} qubits",
        2 * parallelism
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("random_n{n}_d{depth}_p{parallelism}"));
    let mut anchor: Option<usize> = None;
    let mut pool: Vec<usize> = (0..n).collect();
    for _ in 0..depth {
        pool.shuffle(&mut rng);
        // Force the anchor qubit into the first pair so that this layer
        // depends on the previous one.
        if let Some(a) = anchor {
            let pos = pool.iter().position(|&q| q == a).expect("anchor in pool");
            pool.swap(0, pos);
        }
        let mut layer = Vec::with_capacity(parallelism);
        for k in 0..parallelism {
            let (x, y) = (pool[2 * k], pool[2 * k + 1]);
            if rng.gen_bool(0.5) {
                layer.push((x, y));
            } else {
                layer.push((y, x));
            }
        }
        for &(ctl, tgt) in &layer {
            c.cnot(ctl, tgt);
        }
        let (a0, a1) = layer[0];
        anchor = Some(if rng.gen_bool(0.5) { a0 } else { a1 });
    }
    c
}

/// Generates `count` circuits with consecutive seeds, as the paper's "test
/// group" of 50 circuits per parallelism value.
#[must_use]
pub fn test_group(
    n: usize,
    depth: usize,
    parallelism: usize,
    count: usize,
    seed: u64,
) -> Vec<Circuit> {
    (0..count).map(|i| layered(n, depth, parallelism, seed.wrapping_add(i as u64))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_exact() {
        for pm in [1, 3, 9, 21] {
            let c = layered(49, 50, pm, 7);
            assert_eq!(c.depth(), 50, "pm={pm}");
            assert_eq!(c.cnot_count(), 50 * pm);
        }
    }

    #[test]
    fn layers_are_disjoint() {
        let c = layered(20, 30, 8, 99);
        for layer in c.cnot_gates().chunks(8) {
            let mut seen = std::collections::HashSet::new();
            for g in layer {
                assert!(seen.insert(g.control), "control reused in layer");
                assert!(seen.insert(g.target), "target reused in layer");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(layered(16, 10, 4, 42), layered(16, 10, 4, 42));
        assert_ne!(layered(16, 10, 4, 42), layered(16, 10, 4, 43));
    }

    #[test]
    fn test_group_uses_distinct_seeds() {
        let group = test_group(12, 6, 3, 4, 0);
        assert_eq!(group.len(), 4);
        assert_ne!(group[0], group[1]);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn rejects_oversized_parallelism() {
        let _ = layered(10, 5, 6, 0);
    }
}
