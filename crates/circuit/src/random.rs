//! QUEKO-style layered random circuits with a specified parallelism degree.
//!
//! The paper's scalability studies (Figs. 11 and 12) use "50 random quantum
//! circuits … with 49 qubits, 50 depth, and parallelism ranging from 1 to
//! 21", generated in the spirit of QUEKO \[35\]: circuits built layer by
//! layer with a known depth. [`layered`] reproduces the construction: every
//! layer holds exactly `parallelism` pairwise-disjoint CNOTs, and an anchor
//! chain threads one gate of each layer through the previous layer so the
//! circuit depth is exactly `depth`.
//!
//! Beyond the paper's suite, [`StressWorkload`] generates deterministic
//! seeded *service* workloads — mixed widths, depths into the thousands,
//! bursty arrival order — for driving the `ecmas-serve` compile service
//! and the `ecmasd` daemon far past the QUEKO depth-50 regime.
//!
//! # Example
//!
//! ```
//! use ecmas_circuit::random::layered;
//!
//! let c = layered(49, 50, 7, 12345);
//! assert_eq!(c.qubits(), 49);
//! assert_eq!(c.depth(), 50);
//! assert_eq!(c.cnot_count(), 50 * 7);
//! ```

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, RngCore, SeedableRng};

use crate::circuit::Circuit;

/// Generates a layered random circuit with exactly `parallelism` disjoint
/// CNOTs per layer and depth exactly `depth` (an anchor qubit chains the
/// layers). Deterministic in `seed`.
///
/// This is the Circuit Parallelism Degree knob of the paper's Figs. 11–12:
/// by construction `PM ≤ parallelism`, and the anchor chain keeps the
/// critical path at `depth`, so the balanced layering that achieves depth
/// `α` has layers of exactly `parallelism` gates.
///
/// # Panics
///
/// Panics if `2 * parallelism > n` (layers would need repeated qubits) or
/// if `parallelism == 0`.
#[must_use]
pub fn layered(n: usize, depth: usize, parallelism: usize, seed: u64) -> Circuit {
    assert!(parallelism > 0, "parallelism must be positive");
    assert!(
        2 * parallelism <= n,
        "a layer of {parallelism} CNOTs needs {} qubits",
        2 * parallelism
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("random_n{n}_d{depth}_p{parallelism}"));
    let mut anchor: Option<usize> = None;
    let mut pool: Vec<usize> = (0..n).collect();
    for _ in 0..depth {
        pool.shuffle(&mut rng);
        // Force the anchor qubit into the first pair so that this layer
        // depends on the previous one.
        if let Some(a) = anchor {
            let pos = pool.iter().position(|&q| q == a).expect("anchor in pool");
            pool.swap(0, pos);
        }
        let mut layer = Vec::with_capacity(parallelism);
        for k in 0..parallelism {
            let (x, y) = (pool[2 * k], pool[2 * k + 1]);
            if rng.gen_bool(0.5) {
                layer.push((x, y));
            } else {
                layer.push((y, x));
            }
        }
        for &(ctl, tgt) in &layer {
            c.cnot(ctl, tgt);
        }
        let (a0, a1) = layer[0];
        anchor = Some(if rng.gen_bool(0.5) { a0 } else { a1 });
    }
    c
}

/// Generates `count` circuits with consecutive seeds, as the paper's "test
/// group" of 50 circuits per parallelism value.
#[must_use]
pub fn test_group(
    n: usize,
    depth: usize,
    parallelism: usize,
    count: usize,
    seed: u64,
) -> Vec<Circuit> {
    (0..count).map(|i| layered(n, depth, parallelism, seed.wrapping_add(i as u64))).collect()
}

/// Shape of a seeded stress workload (see [`StressWorkload`]).
///
/// The QUEKO-style suite tops out at depth 50; a service front end needs
/// traffic well beyond that to exercise queueing at all. A stress spec
/// describes a *job mix*: widths from `min_qubits` up to the chip
/// capacity, depths log-uniform up to the thousands, and a bursty arrival
/// order (runs of similar jobs, then an abrupt change of family) that
/// models the lumpy request streams a shared compile service actually
/// sees.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StressSpec {
    /// Number of jobs in the workload.
    pub jobs: usize,
    /// Smallest circuit width generated (≥ 2).
    pub min_qubits: usize,
    /// Largest circuit width generated — size this to the target chip's
    /// tile capacity.
    pub max_qubits: usize,
    /// Smallest circuit depth generated.
    pub min_depth: usize,
    /// Largest circuit depth generated (depths are drawn log-uniformly,
    /// so most jobs are moderate and the tail is long).
    pub max_depth: usize,
    /// Mean burst length: consecutive jobs drawn from one parameter
    /// family before the generator jumps to a new one.
    pub mean_burst: usize,
    /// Percentage (0–100) of jobs that repeat an earlier job *exactly*
    /// (same width, depth, parallelism, and per-job seed, so the daemon
    /// regenerates the identical circuit). Repeats pick their original
    /// Zipf-style — P(rank r) ∝ 1/r over the distinct jobs seen so far —
    /// so a few hot circuits dominate, the way production compile
    /// traffic repeats a few hot kernels. `0` disables duplication and
    /// leaves the legacy job stream byte-identical.
    pub dup_percent: u8,
    /// Percentage (0–100) of each job's target-chip tiles that arrive
    /// defective: every job gets a deterministic per-job defect seed
    /// ([`StressWorkload::defect_seed`]) and the consumer (the `ecmasd`
    /// daemon) kills this fraction of tile slots with it. Per-job seeds
    /// are derived outside the job-generation RNG, so — matching the
    /// `dup_percent` convention — `0` leaves the legacy job stream
    /// byte-identical.
    pub defect_percent: u8,
    /// Workload seed; everything below is deterministic in it.
    pub seed: u64,
}

impl StressSpec {
    /// A heavy default mix for `jobs` jobs on a chip with `max_qubits`
    /// tile slots: widths 8..=`max_qubits` (clamped), depths 60..=1500,
    /// bursts of ~16.
    #[must_use]
    pub fn new(jobs: usize, max_qubits: usize, seed: u64) -> Self {
        StressSpec {
            jobs,
            min_qubits: 8.min(max_qubits),
            max_qubits,
            min_depth: 60,
            max_depth: 1500,
            mean_burst: 16,
            dup_percent: 0,
            defect_percent: 0,
            seed,
        }
    }
}

/// One job of a [`StressWorkload`]: the layered-circuit parameters plus
/// the per-job seed. [`circuit`](Self::circuit) materializes it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct StressJob {
    /// Circuit width.
    pub qubits: usize,
    /// Circuit depth α.
    pub depth: usize,
    /// Disjoint CNOTs per layer.
    pub parallelism: usize,
    /// Seed for [`layered`].
    pub seed: u64,
}

impl StressJob {
    /// Builds the circuit for this job.
    #[must_use]
    pub fn circuit(&self) -> Circuit {
        layered(self.qubits, self.depth, self.parallelism, self.seed)
    }
}

/// A deterministic seeded stress workload: the job *parameters* are
/// precomputed cheaply up front (so arrival order, widths, and depths can
/// be inspected or streamed without building any circuit), and each
/// circuit is materialized on demand.
///
/// # Example
///
/// ```
/// use ecmas_circuit::random::{StressSpec, StressWorkload};
///
/// let w = StressWorkload::new(&StressSpec::new(100, 49, 7));
/// assert_eq!(w.len(), 100);
/// let c = w.circuit(42);
/// assert!(c.qubits() <= 49 && c.depth() >= 60);
/// // Deterministic in the spec.
/// assert_eq!(w.jobs(), StressWorkload::new(&StressSpec::new(100, 49, 7)).jobs());
/// ```
#[derive(Clone, Debug)]
pub struct StressWorkload {
    jobs: Vec<StressJob>,
    defect_percent: u8,
    seed: u64,
}

impl StressWorkload {
    /// Generates the workload's job parameters.
    ///
    /// # Panics
    ///
    /// Panics if the spec is degenerate: `min_qubits < 4` (a layer needs
    /// two disjoint qubit pairs to be worth stressing), inverted
    /// qubit/depth ranges, `mean_burst == 0`, or `dup_percent > 100`.
    #[must_use]
    pub fn new(spec: &StressSpec) -> Self {
        assert!(spec.min_qubits >= 4, "stress circuits need at least 4 qubits");
        assert!(spec.min_qubits <= spec.max_qubits, "inverted qubit range");
        assert!(0 < spec.min_depth && spec.min_depth <= spec.max_depth, "bad depth range");
        assert!(spec.mean_burst > 0, "mean_burst must be positive");
        assert!(spec.dup_percent <= 100, "dup_percent is a percentage");
        assert!(spec.defect_percent <= 100, "defect_percent is a percentage");
        let mut rng = SmallRng::seed_from_u64(spec.seed ^ 0x5742_E550);
        let mut jobs = Vec::with_capacity(spec.jobs);
        while jobs.len() < spec.jobs {
            // A burst: one parameter family, jittered depths.
            let qubits = rng.gen_range(spec.min_qubits..spec.max_qubits + 1);
            // Depth log-uniform in [min, max]: moderate jobs dominate, the
            // tail reaches into the thousands.
            let ratio = spec.max_depth as f64 / spec.min_depth as f64;
            let base_depth = (spec.min_depth as f64 * ratio.powf(rng.gen_range(0.0..1.0))) as usize;
            let parallelism = rng.gen_range(1..(qubits / 2) + 1);
            let burst = rng.gen_range(1..2 * spec.mean_burst);
            for _ in 0..burst {
                if jobs.len() == spec.jobs {
                    break;
                }
                // ±12% depth jitter within the burst, clamped to the spec.
                let jitter = rng.gen_range(0.88..1.12);
                let depth =
                    ((base_depth as f64 * jitter) as usize).clamp(spec.min_depth, spec.max_depth);
                jobs.push(StressJob { qubits, depth, parallelism, seed: rng.next_u64() });
            }
        }
        apply_duplication(&mut jobs, spec.dup_percent, &mut rng);
        StressWorkload { jobs, defect_percent: spec.defect_percent, seed: spec.seed }
    }

    /// The spec's chip defect rate (0–100), for the consumer to apply to
    /// each job's target chip.
    #[must_use]
    pub fn defect_percent(&self) -> u8 {
        self.defect_percent
    }

    /// Deterministic per-job defect seed: splitmix64 of the workload
    /// seed and the job index. Derived outside the job-generation RNG,
    /// so enabling or disabling defects never perturbs the job stream —
    /// and repeats of a hot job (duplication) still get *their own*
    /// defect seed, the way the same circuit resubmitted to a fleet
    /// lands on whatever hardware is in front of it.
    ///
    /// Bounded to 53 bits so the value survives JSON layers that carry
    /// numbers as `f64` (the `ecmasd` protocol) without rounding.
    #[must_use]
    pub fn defect_seed(&self, index: usize) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_add((index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & ((1 << 53) - 1)
    }

    /// The precomputed job parameters, in arrival order.
    #[must_use]
    pub fn jobs(&self) -> &[StressJob] {
        &self.jobs
    }

    /// Number of jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// `true` when the workload has no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Materializes job `index`, named `stress<index>_n<q>_d<depth>_p<pm>`
    /// so service logs stay traceable to the workload position.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn circuit(&self, index: usize) -> Circuit {
        let job = &self.jobs[index];
        let mut c = job.circuit();
        c.set_name(format!("stress{index}_n{}_d{}_p{}", job.qubits, job.depth, job.parallelism));
        c
    }
}

/// Rewrites `dup_percent`% of the job stream (in place, skipping job 0)
/// into exact repeats of earlier jobs, picking each repeat's original
/// with Zipf weights — P(rank r) ∝ 1/r over the *distinct* jobs seen so
/// far, in first-appearance order. Distinct jobs keep their position, so
/// the duplicated stream interleaves hot repeats with fresh work the way
/// a shared service's request log does. A no-op at 0%, leaving the
/// pre-duplication stream (and its RNG usage) byte-identical.
fn apply_duplication(jobs: &mut [StressJob], dup_percent: u8, rng: &mut SmallRng) {
    if dup_percent == 0 {
        return;
    }
    let mut distinct: Vec<StressJob> = Vec::new();
    for job in jobs.iter_mut() {
        if !distinct.is_empty() && rng.gen_range(0..100u32) < u32::from(dup_percent) {
            // Zipf rank over the distinct jobs so far: draw u uniform in
            // [0, H_n) and walk the harmonic prefix sums.
            let h: f64 = (1..=distinct.len()).map(|r| 1.0 / r as f64).sum();
            let mut u = rng.gen_range(0.0..h);
            let mut rank = 0usize;
            while rank + 1 < distinct.len() {
                u -= 1.0 / (rank + 1) as f64;
                if u < 0.0 {
                    break;
                }
                rank += 1;
            }
            *job = distinct[rank];
        } else {
            distinct.push(*job);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_is_exact() {
        for pm in [1, 3, 9, 21] {
            let c = layered(49, 50, pm, 7);
            assert_eq!(c.depth(), 50, "pm={pm}");
            assert_eq!(c.cnot_count(), 50 * pm);
        }
    }

    #[test]
    fn layers_are_disjoint() {
        let c = layered(20, 30, 8, 99);
        for layer in c.cnot_gates().chunks(8) {
            let mut seen = std::collections::HashSet::new();
            for g in layer {
                assert!(seen.insert(g.control), "control reused in layer");
                assert!(seen.insert(g.target), "target reused in layer");
            }
        }
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(layered(16, 10, 4, 42), layered(16, 10, 4, 42));
        assert_ne!(layered(16, 10, 4, 42), layered(16, 10, 4, 43));
    }

    #[test]
    fn test_group_uses_distinct_seeds() {
        let group = test_group(12, 6, 3, 4, 0);
        assert_eq!(group.len(), 4);
        assert_ne!(group[0], group[1]);
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn rejects_oversized_parallelism() {
        let _ = layered(10, 5, 6, 0);
    }

    #[test]
    fn stress_workload_is_deterministic_and_in_bounds() {
        let spec = StressSpec::new(200, 49, 0xBEEF);
        let a = StressWorkload::new(&spec);
        let b = StressWorkload::new(&spec);
        assert_eq!(a.jobs(), b.jobs());
        assert_eq!(a.len(), 200);
        assert!(!a.is_empty());
        for job in a.jobs() {
            assert!((spec.min_qubits..=spec.max_qubits).contains(&job.qubits));
            assert!((spec.min_depth..=spec.max_depth).contains(&job.depth));
            assert!(job.parallelism >= 1 && 2 * job.parallelism <= job.qubits);
        }
        // A different seed moves the mix.
        let c = StressWorkload::new(&StressSpec::new(200, 49, 0xF00D));
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn stress_workload_is_bursty_and_mixed() {
        let spec = StressSpec::new(300, 40, 11);
        let w = StressWorkload::new(&spec);
        // Bursts: many adjacent jobs share a parameter family...
        let same_family = w
            .jobs()
            .windows(2)
            .filter(|p| p[0].qubits == p[1].qubits && p[0].parallelism == p[1].parallelism)
            .count();
        assert!(same_family > 100, "only {same_family} adjacent same-family pairs");
        // ...but the workload still mixes widths and depths overall.
        let widths: std::collections::HashSet<_> = w.jobs().iter().map(|j| j.qubits).collect();
        assert!(widths.len() > 5, "only {} distinct widths", widths.len());
        let deep = w.jobs().iter().filter(|j| j.depth > 500).count();
        let shallow = w.jobs().iter().filter(|j| j.depth < 200).count();
        assert!(deep > 0 && shallow > 0, "log-uniform depths must span the range");
    }

    #[test]
    fn stress_circuit_matches_its_params_and_name() {
        let w = StressWorkload::new(&StressSpec::new(8, 20, 3));
        let job = w.jobs()[5];
        let c = w.circuit(5);
        assert_eq!(c.qubits(), job.qubits);
        assert_eq!(c.depth(), job.depth);
        assert_eq!(c.cnot_count(), job.depth * job.parallelism);
        assert!(c.name().starts_with("stress5_n"), "{}", c.name());
        assert_eq!(job.circuit().cnot_gates(), c.cnot_gates());
    }

    #[test]
    #[should_panic(expected = "at least 4 qubits")]
    fn stress_rejects_degenerate_width() {
        let _ = StressWorkload::new(&StressSpec { min_qubits: 2, ..StressSpec::new(4, 10, 0) });
    }

    #[test]
    fn duplication_repeats_earlier_jobs_exactly_and_zipf_skewed() {
        let spec = StressSpec { dup_percent: 50, ..StressSpec::new(400, 30, 21) };
        let w = StressWorkload::new(&spec);
        assert_eq!(w.jobs(), StressWorkload::new(&spec).jobs(), "deterministic");
        assert_eq!(w.len(), 400);
        // Every repeat is byte-identical to an earlier job (seed included).
        let mut counts: std::collections::HashMap<StressJob, usize> =
            std::collections::HashMap::new();
        let mut repeats = 0usize;
        for job in w.jobs() {
            let n = counts.entry(*job).or_insert(0);
            if *n > 0 {
                repeats += 1;
            }
            *n += 1;
        }
        // ~50% of jobs after the first are repeats; allow wide slack.
        assert!((100..300).contains(&repeats), "{repeats} repeats out of 400");
        // Zipf skew: the hottest job repeats far more than the mean repeat.
        let hottest = counts.values().copied().max().unwrap();
        assert!(hottest >= 8, "hottest job seen {hottest} times");
        // Hash derives for StressJob only matter in this test, but the
        // jobs must still respect the spec's ranges.
        for job in w.jobs() {
            assert!((spec.min_qubits..=spec.max_qubits).contains(&job.qubits));
        }
    }

    #[test]
    fn defect_knob_never_perturbs_the_job_stream() {
        let base = StressSpec::new(64, 24, 5);
        let with = StressSpec { defect_percent: 10, ..base };
        let a = StressWorkload::new(&base);
        let b = StressWorkload::new(&with);
        assert_eq!(a.jobs(), b.jobs(), "defect seeds live outside the job RNG");
        assert_eq!(a.defect_percent(), 0);
        assert_eq!(b.defect_percent(), 10);
        // Per-job defect seeds: deterministic, index-distinct, and
        // identical whether or not defects are enabled.
        assert_eq!(a.defect_seed(3), b.defect_seed(3));
        assert_ne!(b.defect_seed(3), b.defect_seed(4));
        let distinct: std::collections::HashSet<_> =
            (0..b.len()).map(|i| b.defect_seed(i)).collect();
        assert_eq!(distinct.len(), b.len());
        // A different workload seed moves the defect seeds too.
        let other = StressWorkload::new(&StressSpec { seed: 6, ..with });
        assert_ne!(b.defect_seed(0), other.defect_seed(0));
    }

    #[test]
    #[should_panic(expected = "defect_percent is a percentage")]
    fn stress_rejects_defect_rate_over_100() {
        let _ =
            StressWorkload::new(&StressSpec { defect_percent: 101, ..StressSpec::new(4, 10, 0) });
    }

    #[test]
    fn zero_duplication_leaves_the_legacy_stream_untouched() {
        let base = StressSpec::new(64, 24, 5);
        assert_eq!(base.dup_percent, 0);
        let a = StressWorkload::new(&base);
        let b = StressWorkload::new(&StressSpec { dup_percent: 0, ..base });
        assert_eq!(a.jobs(), b.jobs());
        // All per-job seeds distinct: nothing was rewritten into a repeat.
        let seeds: std::collections::HashSet<_> = a.jobs().iter().map(|j| j.seed).collect();
        assert_eq!(seeds.len(), a.len());
    }
}
