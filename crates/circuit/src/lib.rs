//! Quantum circuit intermediate representation for the Ecmas surface-code
//! compiler reproduction.
//!
//! This crate provides everything the compiler needs to know about a logical
//! circuit *before* it touches a chip:
//!
//! * [`Circuit`] — a gate list over `n` logical qubits. Single-qubit gates
//!   are carried through faithfully but, per the paper (§III), only CNOT
//!   gates matter for mapping and scheduling: single-qubit gates execute
//!   locally inside a tile.
//! * [`GateDag`] — the dependency DAG `G_P` over CNOT gates, with the
//!   circuit depth `α`, per-gate ASAP/ALAP levels, criticality (longest path
//!   to a sink) and exact descendant counts, all of which drive the
//!   scheduler's gate priorities.
//! * [`CommGraph`] — the communication graph `G_C` (vertices = logical
//!   qubits, edge weights = CNOT multiplicities) that drives the initial
//!   mapping and the cut-type initialization.
//! * [`qasm`] — a self-contained OpenQASM 2.0 subset parser and writer
//!   (no external quantum-SDK dependency).
//! * [`benchmarks`] — generators for the named circuits of the paper's
//!   evaluation (dnn, ising, QFT, BV, GHZ, …).
//! * [`random`] — QUEKO-style layered random circuits with a specified
//!   parallelism degree, used by the paper's Figures 11 and 12.
//!
//! # Example
//!
//! ```
//! use ecmas_circuit::Circuit;
//!
//! let mut c = Circuit::new(3);
//! c.h(0);
//! c.cnot(0, 1);
//! c.cnot(1, 2);
//!
//! let dag = c.dag();
//! assert_eq!(dag.depth(), 2); // two dependent CNOTs
//! assert!(c.comm_graph().bipartition().is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod circuit;
mod comm;
mod dag;
mod error;

pub mod benchmarks;
pub mod qasm;
pub mod random;

pub use circuit::{Circuit, CnotGate, Op, SingleGate};
pub use comm::{CommEdge, CommGraph};
pub use dag::{GateDag, GateId};
pub use error::CircuitError;
