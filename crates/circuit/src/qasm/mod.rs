//! A self-contained OpenQASM 2.0 subset front-end.
//!
//! The paper's benchmarks (IBM Qiskit, QASMbench, ScaffCC exports) ship as
//! OpenQASM 2.0 files. Rust's quantum-circuit parsing ecosystem is thin, so
//! this module implements the needed subset from scratch:
//!
//! * `OPENQASM 2.0;` header and `include "qelib1.inc";` (the standard
//!   library is built in),
//! * `qreg` / `creg` declarations (multiple registers are concatenated into
//!   one global qubit index space),
//! * built-in `U(θ,φ,λ)` and `CX`, the full `qelib1` gate set,
//! * user `gate` definitions, expanded recursively at application time,
//! * register broadcast (`h q;` applies to every qubit of `q`),
//! * `measure`, `reset`, `barrier`,
//! * constant expressions over `pi` with `+ - * / ^`, unary minus and the
//!   spec's unary functions (`sin`, `cos`, `tan`, `exp`, `ln`, `sqrt`).
//!
//! `if (c==n) ...` conditions are parsed and the guarded gate is applied
//! unconditionally: for worst-case scheduling a conditional gate still has
//! to be placed, so this is the standard over-approximation. `opaque`
//! declarations are rejected.
//!
//! Multi-qubit gates are decomposed into CNOTs plus single-qubit gates on
//! insertion (see [`Circuit`]), so parsed circuits are immediately
//! schedulable.
//!
//! # Example
//!
//! ```
//! let src = r#"
//!     OPENQASM 2.0;
//!     include "qelib1.inc";
//!     qreg q[2];
//!     h q[0];
//!     cx q[0], q[1];
//! "#;
//! let circuit = ecmas_circuit::qasm::parse(src)?;
//! assert_eq!(circuit.qubits(), 2);
//! assert_eq!(circuit.cnot_count(), 1);
//! # Ok::<(), ecmas_circuit::qasm::QasmError>(())
//! ```
//!
//! [`Circuit`]: crate::Circuit

mod lex;
mod parse;
mod writer;

pub use parse::parse;
pub use writer::to_qasm;

use std::error::Error;
use std::fmt;

/// A 1-based line/column position in QASM source.
///
/// `col` 0 means "column unknown" — e.g. an end-of-input error past the
/// last token. `From<usize>` builds a column-less position from a bare
/// line number, so error sites that only track lines keep working.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pos {
    /// 1-based source line.
    pub line: usize,
    /// 1-based column, 0 when unknown.
    pub col: usize,
}

impl From<usize> for Pos {
    fn from(line: usize) -> Self {
        Pos { line, col: 0 }
    }
}

/// Error raised while parsing OpenQASM source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QasmError {
    pos: Pos,
    message: String,
}

impl QasmError {
    pub(crate) fn new(pos: impl Into<Pos>, message: impl Into<String>) -> Self {
        QasmError { pos: pos.into(), message: message.into() }
    }

    /// 1-based source line where the error was detected.
    #[must_use]
    pub fn line(&self) -> usize {
        self.pos.line
    }

    /// 1-based column where the error was detected, 0 when unknown.
    #[must_use]
    pub fn col(&self) -> usize {
        self.pos.col
    }

    /// Human-readable description of the problem.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for QasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "qasm parse error at line {}", self.pos.line)?;
        if self.pos.col > 0 {
            write!(f, ", col {}", self.pos.col)?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for QasmError {}
