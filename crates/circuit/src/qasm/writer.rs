use std::fmt::Write as _;

use crate::circuit::{Circuit, Op, SingleGate};

/// Serializes a [`Circuit`] to OpenQASM 2.0 source.
///
/// All qubits are emitted into a single register `q[n]`; measurements go to
/// a classical register `c[n]` at the matching index. The output uses only
/// `qelib1` gates and round-trips through [`parse`](super::parse) (CNOT
/// lists compare equal; decomposed multi-qubit gates stay decomposed).
///
/// # Example
///
/// ```
/// use ecmas_circuit::{qasm, Circuit};
///
/// let mut c = Circuit::new(2);
/// c.h(0);
/// c.cnot(0, 1);
/// let src = qasm::to_qasm(&c);
/// let back = qasm::parse(&src)?;
/// assert_eq!(back.cnot_gates(), c.cnot_gates());
/// # Ok::<(), qasm::QasmError>(())
/// ```
#[must_use]
pub fn to_qasm(circuit: &Circuit) -> String {
    let n = circuit.qubits();
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\ninclude \"qelib1.inc\";\n");
    if !circuit.name().is_empty() {
        let _ = writeln!(out, "// circuit: {}", circuit.name());
    }
    let _ = writeln!(out, "qreg q[{n}];");
    let needs_creg =
        circuit.ops().iter().any(|op| matches!(op, Op::Single { kind: SingleGate::Measure, .. }));
    if needs_creg {
        let _ = writeln!(out, "creg c[{n}];");
    }
    for op in circuit.ops() {
        match *op {
            Op::Cnot { control, target } => {
                let _ = writeln!(out, "cx q[{control}], q[{target}];");
            }
            Op::Barrier => {
                let _ = writeln!(out, "barrier q;");
            }
            Op::Single { qubit, kind } => match kind {
                SingleGate::H => {
                    let _ = writeln!(out, "h q[{qubit}];");
                }
                SingleGate::X => {
                    let _ = writeln!(out, "x q[{qubit}];");
                }
                SingleGate::Y => {
                    let _ = writeln!(out, "y q[{qubit}];");
                }
                SingleGate::Z => {
                    let _ = writeln!(out, "z q[{qubit}];");
                }
                SingleGate::S => {
                    let _ = writeln!(out, "s q[{qubit}];");
                }
                SingleGate::Sdg => {
                    let _ = writeln!(out, "sdg q[{qubit}];");
                }
                SingleGate::T => {
                    let _ = writeln!(out, "t q[{qubit}];");
                }
                SingleGate::Tdg => {
                    let _ = writeln!(out, "tdg q[{qubit}];");
                }
                SingleGate::Rx(a) => {
                    let _ = writeln!(out, "rx({a}) q[{qubit}];");
                }
                SingleGate::Ry(a) => {
                    let _ = writeln!(out, "ry({a}) q[{qubit}];");
                }
                SingleGate::Rz(a) => {
                    let _ = writeln!(out, "rz({a}) q[{qubit}];");
                }
                SingleGate::Phase(a) => {
                    let _ = writeln!(out, "u1({a}) q[{qubit}];");
                }
                SingleGate::U(t, p, l) => {
                    let _ = writeln!(out, "u3({t},{p},{l}) q[{qubit}];");
                }
                SingleGate::Measure => {
                    let _ = writeln!(out, "measure q[{qubit}] -> c[{qubit}];");
                }
                SingleGate::Reset => {
                    let _ = writeln!(out, "reset q[{qubit}];");
                }
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::qasm::parse;

    #[test]
    fn round_trip_preserves_cnots() {
        let mut c = Circuit::new(4);
        c.h(0);
        c.cnot(0, 1);
        c.ccx(1, 2, 3);
        c.rz(2, 0.25);
        c.swap(0, 3);
        let back = parse(&to_qasm(&c)).expect("round trip parse");
        assert_eq!(back.cnot_gates(), c.cnot_gates());
        assert_eq!(back.qubits(), c.qubits());
        assert_eq!(back.op_count(), c.op_count());
    }

    #[test]
    fn measure_emits_creg() {
        let mut c = Circuit::new(2);
        c.single(0, SingleGate::Measure);
        let src = to_qasm(&c);
        assert!(src.contains("creg c[2];"));
        assert!(src.contains("measure q[0] -> c[0];"));
        parse(&src).expect("round trip parse");
    }

    #[test]
    fn no_measure_no_creg() {
        let mut c = Circuit::new(1);
        c.h(0);
        assert!(!to_qasm(&c).contains("creg"));
    }

    #[test]
    fn all_single_gates_round_trip() {
        let mut c = Circuit::new(1);
        for kind in [
            SingleGate::H,
            SingleGate::X,
            SingleGate::Y,
            SingleGate::Z,
            SingleGate::S,
            SingleGate::Sdg,
            SingleGate::T,
            SingleGate::Tdg,
            SingleGate::Rx(0.5),
            SingleGate::Ry(-0.5),
            SingleGate::Rz(1.5),
            SingleGate::Phase(2.5),
            SingleGate::U(0.1, 0.2, 0.3),
            SingleGate::Reset,
        ] {
            c.single(0, kind);
        }
        let back = parse(&to_qasm(&c)).expect("round trip parse");
        assert_eq!(back.op_count(), c.op_count());
    }
}
