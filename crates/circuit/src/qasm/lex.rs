use super::{Pos, QasmError};

/// A lexical token with its 1-based source position (for error
/// reporting and diagnostic spans).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub pos: Pos,
}

#[derive(Clone, Debug, PartialEq)]
pub(crate) enum TokenKind {
    /// Identifier or keyword (`qreg`, `gate`, `h`, …).
    Ident(String),
    /// Numeric literal (integer or real).
    Number(f64),
    /// String literal, quotes stripped (only used by `include`).
    Str(String),
    Semicolon,
    Comma,
    LParen,
    RParen,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Arrow,
    EqEq,
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
}

impl TokenKind {
    pub(crate) fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("`{s}`"),
            TokenKind::Number(v) => format!("number {v}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Semicolon => "`;`".into(),
            TokenKind::Comma => "`,`".into(),
            TokenKind::LParen => "`(`".into(),
            TokenKind::RParen => "`)`".into(),
            TokenKind::LBracket => "`[`".into(),
            TokenKind::RBracket => "`]`".into(),
            TokenKind::LBrace => "`{`".into(),
            TokenKind::RBrace => "`}`".into(),
            TokenKind::Arrow => "`->`".into(),
            TokenKind::EqEq => "`==`".into(),
            TokenKind::Plus => "`+`".into(),
            TokenKind::Minus => "`-`".into(),
            TokenKind::Star => "`*`".into(),
            TokenKind::Slash => "`/`".into(),
            TokenKind::Caret => "`^`".into(),
        }
    }
}

/// Tokenizes QASM source. `//` comments run to end of line.
pub(crate) fn lex(src: &str) -> Result<Vec<Token>, QasmError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1;
    // Byte offset where the current line starts; col = i − line_start + 1.
    let mut line_start = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = Pos { line, col: i - line_start + 1 };
        match c {
            '\n' => {
                line += 1;
                i += 1;
                line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            ';' => {
                tokens.push(Token { kind: TokenKind::Semicolon, pos });
                i += 1;
            }
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos });
                i += 1;
            }
            '[' => {
                tokens.push(Token { kind: TokenKind::LBracket, pos });
                i += 1;
            }
            ']' => {
                tokens.push(Token { kind: TokenKind::RBracket, pos });
                i += 1;
            }
            '{' => {
                tokens.push(Token { kind: TokenKind::LBrace, pos });
                i += 1;
            }
            '}' => {
                tokens.push(Token { kind: TokenKind::RBrace, pos });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, pos });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, pos });
                i += 1;
            }
            '^' => {
                tokens.push(Token { kind: TokenKind::Caret, pos });
                i += 1;
            }
            '-' => {
                if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::Arrow, pos });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Minus, pos });
                    i += 1;
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::EqEq, pos });
                    i += 2;
                } else {
                    return Err(QasmError::new(pos, "stray `=` (expected `==`)"));
                }
            }
            '"' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\n' {
                        return Err(QasmError::new(pos, "unterminated string literal"));
                    }
                    j += 1;
                }
                if j == bytes.len() {
                    return Err(QasmError::new(pos, "unterminated string literal"));
                }
                tokens.push(Token { kind: TokenKind::Str(src[start..j].to_string()), pos });
                i = j + 1;
            }
            _ if c.is_ascii_digit()
                || (c == '.' && matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit())) =>
            {
                let start = i;
                let mut j = i;
                let mut seen_exp = false;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_digit() || d == '.' {
                        j += 1;
                    } else if (d == 'e' || d == 'E') && !seen_exp {
                        seen_exp = true;
                        j += 1;
                        if matches!(bytes.get(j), Some(&b'+') | Some(&b'-')) {
                            j += 1;
                        }
                    } else {
                        break;
                    }
                }
                let text = &src[start..j];
                let value: f64 = text
                    .parse()
                    .map_err(|_| QasmError::new(pos, format!("invalid number `{text}`")))?;
                tokens.push(Token { kind: TokenKind::Number(value), pos });
                i = j;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() {
                    let d = bytes[j] as char;
                    if d.is_ascii_alphanumeric() || d == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Ident(src[start..j].to_string()), pos });
                i = j;
            }
            _ => {
                return Err(QasmError::new(pos, format!("unexpected character `{c}`")));
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_declaration() {
        assert_eq!(
            kinds("qreg q[3];"),
            vec![
                TokenKind::Ident("qreg".into()),
                TokenKind::Ident("q".into()),
                TokenKind::LBracket,
                TokenKind::Number(3.0),
                TokenKind::RBracket,
                TokenKind::Semicolon,
            ]
        );
    }

    #[test]
    fn lexes_arrow_and_eqeq() {
        assert_eq!(kinds("-> =="), vec![TokenKind::Arrow, TokenKind::EqEq]);
    }

    #[test]
    fn skips_comments() {
        assert_eq!(kinds("// hello\nh q;").len(), 3);
    }

    #[test]
    fn tracks_line_numbers() {
        let toks = lex("a;\nb;").unwrap();
        assert_eq!(toks[0].pos.line, 1);
        assert_eq!(toks[2].pos.line, 2);
    }

    #[test]
    fn tracks_columns() {
        let toks = lex("qreg q[3];\ncx q[0], q[1];").unwrap();
        assert_eq!(toks[0].pos, Pos { line: 1, col: 1 }); // qreg
        assert_eq!(toks[1].pos, Pos { line: 1, col: 6 }); // q
        assert_eq!(toks[2].pos, Pos { line: 1, col: 7 }); // [
        assert_eq!(toks[6].pos, Pos { line: 2, col: 1 }); // cx
        assert_eq!(toks[7].pos, Pos { line: 2, col: 4 }); // q
    }

    #[test]
    fn error_positions_carry_columns() {
        let err = lex("a;\n  = b").unwrap_err();
        assert_eq!(err.line(), 2);
        assert_eq!(err.col(), 3);
        let err = lex("ok \u{7f}").unwrap_err();
        assert_eq!(err.col(), 4);
    }

    #[test]
    fn lexes_scientific_notation() {
        assert_eq!(kinds("1.5e-3"), vec![TokenKind::Number(1.5e-3)]);
    }

    #[test]
    fn lexes_string() {
        assert_eq!(kinds("\"qelib1.inc\""), vec![TokenKind::Str("qelib1.inc".into())]);
    }

    #[test]
    fn rejects_stray_equals() {
        assert!(lex("a = b").is_err());
    }

    #[test]
    fn rejects_unterminated_string() {
        assert!(lex("\"oops").is_err());
    }
}
