use std::collections::HashMap;
use std::f64::consts::PI;

use super::lex::{lex, Token, TokenKind};
use super::{Pos, QasmError};
use crate::circuit::{Circuit, SingleGate};

/// Parses OpenQASM 2.0 source into a [`Circuit`].
///
/// Multiple `qreg`s are concatenated into one global qubit index space in
/// declaration order. See the [module docs](super) for the supported
/// subset.
///
/// # Errors
///
/// Returns a [`QasmError`] with the offending line on lexical errors,
/// syntax errors, undeclared registers/gates, arity mismatches, broadcast
/// size mismatches, or unsupported features (`opaque`, external includes).
pub fn parse(src: &str) -> Result<Circuit, QasmError> {
    let tokens = lex(src)?;
    let mut parser = Parser::new(tokens);
    parser.run()?;
    parser.finish()
}

/// A constant arithmetic expression over gate parameters.
#[derive(Clone, Debug)]
enum Expr {
    Num(f64),
    Pi,
    Param(String),
    Neg(Box<Expr>),
    Bin(BinOp, Box<Expr>, Box<Expr>),
    Func(UnaryFunc, Box<Expr>),
}

#[derive(Clone, Copy, Debug)]
enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
}

#[derive(Clone, Copy, Debug)]
enum UnaryFunc {
    Sin,
    Cos,
    Tan,
    Exp,
    Ln,
    Sqrt,
}

impl Expr {
    fn eval(&self, env: &HashMap<String, f64>, pos: Pos) -> Result<f64, QasmError> {
        Ok(match self {
            Expr::Num(v) => *v,
            Expr::Pi => PI,
            Expr::Param(name) => *env
                .get(name)
                .ok_or_else(|| QasmError::new(pos, format!("unknown parameter `{name}`")))?,
            Expr::Neg(e) => -e.eval(env, pos)?,
            Expr::Bin(op, a, b) => {
                let (a, b) = (a.eval(env, pos)?, b.eval(env, pos)?);
                match op {
                    BinOp::Add => a + b,
                    BinOp::Sub => a - b,
                    BinOp::Mul => a * b,
                    BinOp::Div => a / b,
                    BinOp::Pow => a.powf(b),
                }
            }
            Expr::Func(f, e) => {
                let v = e.eval(env, pos)?;
                match f {
                    UnaryFunc::Sin => v.sin(),
                    UnaryFunc::Cos => v.cos(),
                    UnaryFunc::Tan => v.tan(),
                    UnaryFunc::Exp => v.exp(),
                    UnaryFunc::Ln => v.ln(),
                    UnaryFunc::Sqrt => v.sqrt(),
                }
            }
        })
    }
}

/// One call inside a user `gate` body. Qubit arguments are formal names
/// (OpenQASM 2.0 forbids indexing inside gate bodies).
#[derive(Clone, Debug)]
struct BodyCall {
    name: String,
    pos: Pos,
    params: Vec<Expr>,
    qargs: Vec<String>,
}

#[derive(Clone, Debug)]
struct GateDef {
    params: Vec<String>,
    qargs: Vec<String>,
    body: Vec<BodyCall>,
}

/// A (possibly whole-register) qubit argument before broadcast resolution.
#[derive(Clone, Debug)]
struct QubitArg {
    indices: Vec<usize>,
    pos: Pos,
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    qregs: Vec<(String, usize, usize)>,
    cregs: HashMap<String, usize>,
    defs: HashMap<String, GateDef>,
    circuit: Circuit,
    qubits: usize,
}

const MAX_EXPANSION_DEPTH: usize = 64;

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser {
            tokens,
            pos: 0,
            qregs: Vec::new(),
            cregs: HashMap::new(),
            defs: HashMap::new(),
            // Re-created once the final qubit count is known; Circuit is
            // grown via a replacement because registers must be declared
            // before use, so appending is always safe.
            circuit: Circuit::new(0),
            qubits: 0,
        }
    }

    fn finish(self) -> Result<Circuit, QasmError> {
        Ok(self.circuit)
    }

    // ---- token helpers ----------------------------------------------------

    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    /// Position of the current token (or the last one, at end of input).
    fn cur_pos(&self) -> Pos {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(Pos { line: 0, col: 0 }, |t| t.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<Pos, QasmError> {
        let pos = self.cur_pos();
        match self.next() {
            Some(t) if t.kind == *kind => Ok(t.pos),
            Some(t) => Err(QasmError::new(
                t.pos,
                format!("expected {}, found {}", kind.describe(), t.kind.describe()),
            )),
            None => Err(QasmError::new(
                pos,
                format!("expected {}, found end of input", kind.describe()),
            )),
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Pos), QasmError> {
        let pos = self.cur_pos();
        match self.next() {
            Some(Token { kind: TokenKind::Ident(s), pos }) => Ok((s, pos)),
            Some(t) => Err(QasmError::new(
                t.pos,
                format!("expected identifier, found {}", t.kind.describe()),
            )),
            None => Err(QasmError::new(pos, "expected identifier, found end of input")),
        }
    }

    fn expect_uint(&mut self) -> Result<(usize, Pos), QasmError> {
        let pos = self.cur_pos();
        match self.next() {
            Some(Token { kind: TokenKind::Number(v), pos }) => {
                if v.fract() == 0.0 && v >= 0.0 {
                    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                    Ok((v as usize, pos))
                } else {
                    Err(QasmError::new(pos, format!("expected a non-negative integer, found {v}")))
                }
            }
            Some(t) => {
                Err(QasmError::new(t.pos, format!("expected integer, found {}", t.kind.describe())))
            }
            None => Err(QasmError::new(pos, "expected integer, found end of input")),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    // ---- top level ---------------------------------------------------------

    fn run(&mut self) -> Result<(), QasmError> {
        // Optional version header.
        if let Some(TokenKind::Ident(id)) = self.peek() {
            if id == "OPENQASM" {
                self.next();
                let pos = self.cur_pos();
                match self.next() {
                    Some(Token { kind: TokenKind::Number(v), .. }) if (2.0..3.0).contains(&v) => {}
                    Some(Token { kind, pos }) => {
                        return Err(QasmError::new(
                            pos,
                            format!("unsupported OPENQASM version {}", kind.describe()),
                        ))
                    }
                    None => return Err(QasmError::new(pos, "missing OPENQASM version")),
                }
                self.expect(&TokenKind::Semicolon)?;
            }
        }
        while self.peek().is_some() {
            self.statement()?;
        }
        Ok(())
    }

    fn statement(&mut self) -> Result<(), QasmError> {
        let (name, pos) = self.expect_ident()?;
        match name.as_str() {
            "include" => {
                let p = self.cur_pos();
                match self.next() {
                    Some(Token { kind: TokenKind::Str(path), pos }) => {
                        if path != "qelib1.inc" {
                            return Err(QasmError::new(
                                pos,
                                format!("only the built-in \"qelib1.inc\" include is supported, found \"{path}\""),
                            ));
                        }
                    }
                    _ => return Err(QasmError::new(p, "expected a string after `include`")),
                }
                self.expect(&TokenKind::Semicolon)?;
            }
            "qreg" => {
                let (reg, _) = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let (size, _) = self.expect_uint()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                if self.qregs.iter().any(|(n, _, _)| *n == reg) {
                    return Err(QasmError::new(pos, format!("duplicate qreg `{reg}`")));
                }
                self.qregs.push((reg, self.qubits, size));
                self.qubits += size;
                // Grow the circuit, preserving existing ops.
                let mut grown = Circuit::with_name(self.qubits, self.circuit.name().to_string());
                grown.append_offset(&self.circuit.clone(), 0);
                self.circuit = grown;
            }
            "creg" => {
                let (reg, _) = self.expect_ident()?;
                self.expect(&TokenKind::LBracket)?;
                let (size, _) = self.expect_uint()?;
                self.expect(&TokenKind::RBracket)?;
                self.expect(&TokenKind::Semicolon)?;
                self.cregs.insert(reg, size);
            }
            "gate" => self.gate_def()?,
            "opaque" => {
                return Err(QasmError::new(pos, "`opaque` gates are not supported"));
            }
            "barrier" => {
                // Consume (and ignore) the operand list.
                while self.peek() != Some(&TokenKind::Semicolon) && self.peek().is_some() {
                    self.next();
                }
                self.expect(&TokenKind::Semicolon)?;
                self.circuit.barrier();
            }
            "measure" => {
                let src = self.qubit_arg()?;
                self.expect(&TokenKind::Arrow)?;
                // Classical destination: ident with optional [index].
                let (creg, cpos) = self.expect_ident()?;
                if !self.cregs.contains_key(&creg) {
                    return Err(QasmError::new(cpos, format!("undeclared creg `{creg}`")));
                }
                if self.eat(&TokenKind::LBracket) {
                    self.expect_uint()?;
                    self.expect(&TokenKind::RBracket)?;
                }
                self.expect(&TokenKind::Semicolon)?;
                for q in src.indices {
                    self.circuit.single(q, SingleGate::Measure);
                }
            }
            "reset" => {
                let arg = self.qubit_arg()?;
                self.expect(&TokenKind::Semicolon)?;
                for q in arg.indices {
                    self.circuit.single(q, SingleGate::Reset);
                }
            }
            "if" => {
                // `if (creg == n) <qop>` — the guarded gate is applied
                // unconditionally (worst-case scheduling over-approximation).
                self.expect(&TokenKind::LParen)?;
                self.expect_ident()?;
                self.expect(&TokenKind::EqEq)?;
                self.expect_uint()?;
                self.expect(&TokenKind::RParen)?;
                self.statement()?;
            }
            _ => self.gate_application(name, pos)?,
        }
        Ok(())
    }

    // ---- gate definitions ---------------------------------------------------

    fn gate_def(&mut self) -> Result<(), QasmError> {
        let (name, pos) = self.expect_ident()?;
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                let (p, _) = self.expect_ident()?;
                params.push(p);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let mut qargs = Vec::new();
        loop {
            let (q, _) = self.expect_ident()?;
            qargs.push(q);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&TokenKind::RBrace) {
            let (gname, gpos) = self.expect_ident()?;
            if gname == "barrier" {
                while self.peek() != Some(&TokenKind::Semicolon) && self.peek().is_some() {
                    self.next();
                }
                self.expect(&TokenKind::Semicolon)?;
                continue;
            }
            let mut call =
                BodyCall { name: gname, pos: gpos, params: Vec::new(), qargs: Vec::new() };
            if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
                loop {
                    call.params.push(self.expr()?);
                    if !self.eat(&TokenKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokenKind::RParen)?;
            }
            loop {
                let (q, qpos) = self.expect_ident()?;
                if !qargs.contains(&q) {
                    return Err(QasmError::new(
                        qpos,
                        format!("`{q}` is not a formal qubit argument of gate `{name}`"),
                    ));
                }
                call.qargs.push(q);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::Semicolon)?;
            body.push(call);
        }
        if self.defs.contains_key(&name) {
            return Err(QasmError::new(pos, format!("duplicate gate definition `{name}`")));
        }
        self.defs.insert(name, GateDef { params, qargs, body });
        Ok(())
    }

    // ---- applications ---------------------------------------------------------

    fn gate_application(&mut self, name: String, pos: Pos) -> Result<(), QasmError> {
        let mut params = Vec::new();
        if self.eat(&TokenKind::LParen) && !self.eat(&TokenKind::RParen) {
            loop {
                params.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
        }
        let env = HashMap::new();
        let mut values = Vec::with_capacity(params.len());
        for p in &params {
            values.push(p.eval(&env, pos)?);
        }
        let mut args = Vec::new();
        loop {
            args.push(self.qubit_arg()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::Semicolon)?;

        // Broadcast: whole-register args expand element-wise; registers must
        // agree on size; single qubits repeat.
        let broadcast = args.iter().map(|a| a.indices.len()).max().unwrap_or(1);
        for a in &args {
            if a.indices.len() != 1 && a.indices.len() != broadcast {
                return Err(QasmError::new(
                    a.pos,
                    format!(
                        "broadcast size mismatch: register of size {} vs {}",
                        a.indices.len(),
                        broadcast
                    ),
                ));
            }
        }
        for k in 0..broadcast {
            let qubits: Vec<usize> = args
                .iter()
                .map(|a| if a.indices.len() == 1 { a.indices[0] } else { a.indices[k] })
                .collect();
            self.apply(&name, pos, &values, &qubits, 0)?;
        }
        Ok(())
    }

    fn apply(
        &mut self,
        name: &str,
        pos: Pos,
        params: &[f64],
        qubits: &[usize],
        depth: usize,
    ) -> Result<(), QasmError> {
        if depth > MAX_EXPANSION_DEPTH {
            return Err(QasmError::new(
                pos,
                format!("gate `{name}` expansion recurses too deeply"),
            ));
        }
        let arity_err = |want_p: usize, want_q: usize| {
            QasmError::new(
                pos,
                format!(
                    "gate `{name}` expects {want_p} parameter(s) and {want_q} qubit(s), got {} and {}",
                    params.len(),
                    qubits.len()
                ),
            )
        };
        let check = |want_p: usize, want_q: usize| {
            if params.len() == want_p && qubits.len() == want_q {
                Ok(())
            } else {
                Err(arity_err(want_p, want_q))
            }
        };
        let distinct = |qs: &[usize]| -> Result<(), QasmError> {
            for (i, a) in qs.iter().enumerate() {
                for b in &qs[i + 1..] {
                    if a == b {
                        return Err(QasmError::new(
                            pos,
                            format!("gate `{name}` applied with repeated qubit {a}"),
                        ));
                    }
                }
            }
            Ok(())
        };
        match name {
            "U" | "u3" => {
                check(3, 1)?;
                self.circuit.single(qubits[0], SingleGate::U(params[0], params[1], params[2]));
            }
            "u2" => {
                check(2, 1)?;
                self.circuit.single(qubits[0], SingleGate::U(PI / 2.0, params[0], params[1]));
            }
            "u1" | "p" | "u0" => {
                check(1, 1)?;
                self.circuit.single(qubits[0], SingleGate::Phase(params[0]));
            }
            "CX" | "cx" => {
                check(0, 2)?;
                distinct(qubits)?;
                self.circuit.cnot(qubits[0], qubits[1]);
            }
            "h" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::H);
            }
            "x" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::X);
            }
            "y" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::Y);
            }
            "z" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::Z);
            }
            "s" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::S);
            }
            "sdg" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::Sdg);
            }
            "t" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::T);
            }
            "tdg" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::Tdg);
            }
            "sx" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::Rx(PI / 2.0));
            }
            "sxdg" => {
                check(0, 1)?;
                self.circuit.single(qubits[0], SingleGate::Rx(-PI / 2.0));
            }
            "rx" => {
                check(1, 1)?;
                self.circuit.single(qubits[0], SingleGate::Rx(params[0]));
            }
            "ry" => {
                check(1, 1)?;
                self.circuit.single(qubits[0], SingleGate::Ry(params[0]));
            }
            "rz" => {
                check(1, 1)?;
                self.circuit.single(qubits[0], SingleGate::Rz(params[0]));
            }
            "id" => {
                check(0, 1)?;
            }
            "cz" => {
                check(0, 2)?;
                distinct(qubits)?;
                self.circuit.cz(qubits[0], qubits[1]);
            }
            "cy" => {
                check(0, 2)?;
                distinct(qubits)?;
                self.circuit.single(qubits[1], SingleGate::Sdg);
                self.circuit.cnot(qubits[0], qubits[1]);
                self.circuit.single(qubits[1], SingleGate::S);
            }
            "ch" => {
                check(0, 2)?;
                distinct(qubits)?;
                let (a, b) = (qubits[0], qubits[1]);
                self.circuit.h(b);
                self.circuit.single(b, SingleGate::Sdg);
                self.circuit.cnot(a, b);
                self.circuit.h(b);
                self.circuit.t(b);
                self.circuit.cnot(a, b);
                self.circuit.t(b);
                self.circuit.h(b);
                self.circuit.single(b, SingleGate::S);
                self.circuit.x(b);
                self.circuit.single(a, SingleGate::S);
            }
            "swap" => {
                check(0, 2)?;
                distinct(qubits)?;
                self.circuit.swap(qubits[0], qubits[1]);
            }
            "cp" | "cu1" => {
                check(1, 2)?;
                distinct(qubits)?;
                self.circuit.cp(qubits[0], qubits[1], params[0]);
            }
            "crz" => {
                check(1, 2)?;
                distinct(qubits)?;
                let (c, t) = (qubits[0], qubits[1]);
                self.circuit.rz(t, params[0] / 2.0);
                self.circuit.cnot(c, t);
                self.circuit.rz(t, -params[0] / 2.0);
                self.circuit.cnot(c, t);
            }
            "cry" => {
                check(1, 2)?;
                distinct(qubits)?;
                self.circuit.cry(qubits[0], qubits[1], params[0]);
            }
            "crx" => {
                check(1, 2)?;
                distinct(qubits)?;
                let (c, t) = (qubits[0], qubits[1]);
                self.circuit.h(t);
                self.circuit.rz(t, params[0] / 2.0);
                self.circuit.cnot(c, t);
                self.circuit.rz(t, -params[0] / 2.0);
                self.circuit.cnot(c, t);
                self.circuit.h(t);
            }
            "cu3" => {
                check(3, 2)?;
                distinct(qubits)?;
                let (c, t) = (qubits[0], qubits[1]);
                let (theta, phi, lambda) = (params[0], params[1], params[2]);
                self.circuit.phase(c, (lambda + phi) / 2.0);
                self.circuit.phase(t, (lambda - phi) / 2.0);
                self.circuit.cnot(c, t);
                self.circuit.single(t, SingleGate::U(-theta / 2.0, 0.0, -(phi + lambda) / 2.0));
                self.circuit.cnot(c, t);
                self.circuit.single(t, SingleGate::U(theta / 2.0, phi, 0.0));
            }
            "rzz" => {
                check(1, 2)?;
                distinct(qubits)?;
                let (a, b) = (qubits[0], qubits[1]);
                self.circuit.cnot(a, b);
                self.circuit.phase(b, params[0]);
                self.circuit.cnot(a, b);
            }
            "ccx" => {
                check(0, 3)?;
                distinct(qubits)?;
                self.circuit.ccx(qubits[0], qubits[1], qubits[2]);
            }
            "cswap" => {
                check(0, 3)?;
                distinct(qubits)?;
                self.circuit.cswap(qubits[0], qubits[1], qubits[2]);
            }
            _ => {
                let def = self
                    .defs
                    .get(name)
                    .cloned()
                    .ok_or_else(|| QasmError::new(pos, format!("unknown gate `{name}`")))?;
                if def.params.len() != params.len() || def.qargs.len() != qubits.len() {
                    return Err(arity_err(def.params.len(), def.qargs.len()));
                }
                let env: HashMap<String, f64> =
                    def.params.iter().cloned().zip(params.iter().copied()).collect();
                let qmap: HashMap<&str, usize> =
                    def.qargs.iter().map(String::as_str).zip(qubits.iter().copied()).collect();
                for call in &def.body {
                    let mut vals = Vec::with_capacity(call.params.len());
                    for p in &call.params {
                        vals.push(p.eval(&env, call.pos)?);
                    }
                    let qs: Vec<usize> = call.qargs.iter().map(|q| qmap[q.as_str()]).collect();
                    self.apply(&call.name, call.pos, &vals, &qs, depth + 1)?;
                }
            }
        }
        Ok(())
    }

    /// Parses `reg` or `reg[i]`, resolving to global qubit indices.
    fn qubit_arg(&mut self) -> Result<QubitArg, QasmError> {
        let (reg, pos) = self.expect_ident()?;
        let &(_, offset, size) = self
            .qregs
            .iter()
            .find(|(n, _, _)| *n == reg)
            .ok_or_else(|| QasmError::new(pos, format!("undeclared qreg `{reg}`")))?;
        if self.eat(&TokenKind::LBracket) {
            let (idx, ipos) = self.expect_uint()?;
            self.expect(&TokenKind::RBracket)?;
            if idx >= size {
                return Err(QasmError::new(
                    ipos,
                    format!("index {idx} out of range for qreg `{reg}[{size}]`"),
                ));
            }
            Ok(QubitArg { indices: vec![offset + idx], pos })
        } else {
            Ok(QubitArg { indices: (offset..offset + size).collect(), pos })
        }
    }

    // ---- expressions -------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, QasmError> {
        self.expr_add()
    }

    fn expr_add(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.expr_mul()?;
        loop {
            if self.eat(&TokenKind::Plus) {
                let rhs = self.expr_mul()?;
                lhs = Expr::Bin(BinOp::Add, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&TokenKind::Minus) {
                let rhs = self.expr_mul()?;
                lhs = Expr::Bin(BinOp::Sub, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_mul(&mut self) -> Result<Expr, QasmError> {
        let mut lhs = self.expr_unary()?;
        loop {
            if self.eat(&TokenKind::Star) {
                let rhs = self.expr_unary()?;
                lhs = Expr::Bin(BinOp::Mul, Box::new(lhs), Box::new(rhs));
            } else if self.eat(&TokenKind::Slash) {
                let rhs = self.expr_unary()?;
                lhs = Expr::Bin(BinOp::Div, Box::new(lhs), Box::new(rhs));
            } else {
                return Ok(lhs);
            }
        }
    }

    fn expr_unary(&mut self) -> Result<Expr, QasmError> {
        if self.eat(&TokenKind::Minus) {
            return Ok(Expr::Neg(Box::new(self.expr_unary()?)));
        }
        if self.eat(&TokenKind::Plus) {
            return self.expr_unary();
        }
        self.expr_pow()
    }

    fn expr_pow(&mut self) -> Result<Expr, QasmError> {
        let base = self.expr_atom()?;
        if self.eat(&TokenKind::Caret) {
            // Right-associative exponentiation.
            let exp = self.expr_unary()?;
            Ok(Expr::Bin(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    fn expr_atom(&mut self) -> Result<Expr, QasmError> {
        let pos = self.cur_pos();
        match self.next() {
            Some(Token { kind: TokenKind::Number(v), .. }) => Ok(Expr::Num(v)),
            Some(Token { kind: TokenKind::Ident(id), .. }) => match id.as_str() {
                "pi" => Ok(Expr::Pi),
                "sin" | "cos" | "tan" | "exp" | "ln" | "sqrt" => {
                    self.expect(&TokenKind::LParen)?;
                    let inner = self.expr()?;
                    self.expect(&TokenKind::RParen)?;
                    let f = match id.as_str() {
                        "sin" => UnaryFunc::Sin,
                        "cos" => UnaryFunc::Cos,
                        "tan" => UnaryFunc::Tan,
                        "exp" => UnaryFunc::Exp,
                        "ln" => UnaryFunc::Ln,
                        _ => UnaryFunc::Sqrt,
                    };
                    Ok(Expr::Func(f, Box::new(inner)))
                }
                _ => Ok(Expr::Param(id)),
            },
            Some(Token { kind: TokenKind::LParen, .. }) => {
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            Some(t) => Err(QasmError::new(
                t.pos,
                format!("expected expression, found {}", t.kind.describe()),
            )),
            None => Err(QasmError::new(pos, "expected expression, found end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Op;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn parse_ok(body: &str) -> Circuit {
        parse(&format!("{HEADER}{body}")).expect("parse failure")
    }

    #[test]
    fn parses_bell_pair() {
        let c = parse_ok("qreg q[2];\nh q[0];\ncx q[0], q[1];\n");
        assert_eq!(c.qubits(), 2);
        assert_eq!(c.cnot_count(), 1);
    }

    #[test]
    fn broadcast_applies_to_register() {
        let c = parse_ok("qreg q[4];\nh q;\n");
        assert_eq!(c.op_count(), 4);
    }

    #[test]
    fn broadcast_cx_pairs_registers() {
        let c = parse_ok("qreg a[3];\nqreg b[3];\ncx a, b;\n");
        assert_eq!(c.cnot_count(), 3);
        assert_eq!(c.cnot_gates()[1].control, 1);
        assert_eq!(c.cnot_gates()[1].target, 4); // second qreg offset by 3
    }

    #[test]
    fn broadcast_scalar_against_register() {
        let c = parse_ok("qreg a[1];\nqreg b[3];\ncx a[0], b;\n");
        assert_eq!(c.cnot_count(), 3);
        assert!(c.cnot_gates().iter().all(|g| g.control == 0));
    }

    #[test]
    fn broadcast_size_mismatch_errors() {
        let err = parse(&format!("{HEADER}qreg a[2];\nqreg b[3];\ncx a, b;\n")).unwrap_err();
        assert!(err.message().contains("broadcast"));
    }

    #[test]
    fn user_gate_expansion() {
        let c = parse_ok("qreg q[2];\ngate bell a, b { h a; cx a, b; }\nbell q[0], q[1];\n");
        assert_eq!(c.cnot_count(), 1);
        assert_eq!(c.op_count(), 2);
    }

    #[test]
    fn parameterized_user_gate() {
        let c = parse_ok("qreg q[1];\ngate tilt(t) a { rz(t/2) a; }\ntilt(pi) q[0];\n");
        match c.ops()[0] {
            Op::Single { kind: SingleGate::Rz(v), .. } => {
                assert!((v - PI / 2.0).abs() < 1e-12);
            }
            ref other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn nested_user_gates() {
        let c = parse_ok(
            "qreg q[3];\n\
             gate pair a, b { cx a, b; }\n\
             gate trio a, b, c { pair a, b; pair b, c; }\n\
             trio q[0], q[1], q[2];\n",
        );
        assert_eq!(c.cnot_count(), 2);
    }

    #[test]
    fn ccx_decomposes_to_six_cnots() {
        let c = parse_ok("qreg q[3];\nccx q[0], q[1], q[2];\n");
        assert_eq!(c.cnot_count(), 6);
    }

    #[test]
    fn measure_whole_register() {
        let c = parse_ok("qreg q[2];\ncreg c[2];\nmeasure q -> c;\n");
        assert_eq!(c.op_count(), 2);
    }

    #[test]
    fn if_applies_unconditionally() {
        let c = parse_ok("qreg q[2];\ncreg c[1];\nif (c==1) cx q[0], q[1];\n");
        assert_eq!(c.cnot_count(), 1);
    }

    #[test]
    fn expression_precedence() {
        let c = parse_ok("qreg q[1];\nrz(1 + 2 * 3) q[0];\n");
        match c.ops()[0] {
            Op::Single { kind: SingleGate::Rz(v), .. } => assert!((v - 7.0).abs() < 1e-12),
            ref other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn unary_minus_and_functions() {
        let c = parse_ok("qreg q[1];\nrz(-cos(0)) q[0];\n");
        match c.ops()[0] {
            Op::Single { kind: SingleGate::Rz(v), .. } => assert!((v + 1.0).abs() < 1e-12),
            ref other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn undeclared_register_errors() {
        let err = parse(&format!("{HEADER}h nope[0];\n")).unwrap_err();
        assert!(err.message().contains("undeclared"));
    }

    #[test]
    fn unknown_gate_errors_with_line() {
        let err = parse(&format!("{HEADER}qreg q[1];\nfrobnicate q[0];\n")).unwrap_err();
        assert_eq!(err.line(), 4);
        assert_eq!(err.col(), 1);
        assert!(err.message().contains("frobnicate"));
    }

    #[test]
    fn errors_carry_columns() {
        // `q[2]` on line 4: the out-of-range index sits at column 5.
        let err = parse(&format!("{HEADER}qreg q[2];\nh   q[2];\n")).unwrap_err();
        assert_eq!(err.line(), 4);
        assert_eq!(err.col(), 7);
        // Missing semicolon: the error points at the next token.
        let err = parse(&format!("{HEADER}qreg q[2];\nh q[0]\ncx q[0], q[1];\n")).unwrap_err();
        assert_eq!(err.line(), 5);
        assert_eq!(err.col(), 1);
        // End-of-input errors keep the last token's line with col 0 never
        // asserted here (the lexer always has a column for real tokens).
        let err = parse("OPENQASM 2.0;\nqreg q").unwrap_err();
        assert_eq!(err.line(), 2);
    }

    #[test]
    fn out_of_range_index_errors() {
        let err = parse(&format!("{HEADER}qreg q[2];\nh q[2];\n")).unwrap_err();
        assert!(err.message().contains("out of range"));
    }

    #[test]
    fn opaque_rejected() {
        let err = parse(&format!("{HEADER}opaque magic q;\n")).unwrap_err();
        assert!(err.message().contains("opaque"));
    }

    #[test]
    fn external_include_rejected() {
        let err = parse("OPENQASM 2.0;\ninclude \"other.inc\";\n").unwrap_err();
        assert!(err.message().contains("other.inc"));
    }

    #[test]
    fn repeated_qubit_in_cx_rejected() {
        let err = parse(&format!("{HEADER}qreg q[2];\ncx q[0], q[0];\n")).unwrap_err();
        assert!(err.message().contains("repeated qubit"));
    }

    #[test]
    fn version_3_rejected() {
        assert!(parse("OPENQASM 3.0;\n").is_err());
    }

    #[test]
    fn multiple_qregs_concatenate() {
        let c = parse_ok("qreg a[2];\nqreg b[3];\ncx a[1], b[0];\n");
        assert_eq!(c.qubits(), 5);
        assert_eq!(c.cnot_gates()[0].control, 1);
        assert_eq!(c.cnot_gates()[0].target, 2);
    }
}

#[cfg(test)]
mod gate_set_tests {
    use super::*;

    const HEADER: &str = "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";

    fn cnots(body: &str) -> usize {
        parse(&format!("{HEADER}{body}")).expect("parse").cnot_count()
    }

    #[test]
    fn two_cnot_controlled_gates() {
        for gate in ["cp(pi/2)", "cu1(pi/4)", "crz(pi/8)", "cry(0.3)", "crx(0.7)", "rzz(0.2)"] {
            assert_eq!(cnots(&format!("qreg q[2];\n{gate} q[0], q[1];\n")), 2, "{gate}");
        }
        assert_eq!(cnots("qreg q[2];\ncu3(0.1,0.2,0.3) q[0], q[1];\n"), 2);
        assert_eq!(cnots("qreg q[2];\nch q[0], q[1];\n"), 2);
    }

    #[test]
    fn one_cnot_controlled_gates() {
        for gate in ["cz", "cy"] {
            assert_eq!(cnots(&format!("qreg q[2];\n{gate} q[0], q[1];\n")), 1, "{gate}");
        }
    }

    #[test]
    fn single_qubit_extensions() {
        let c = parse(&format!(
            "{HEADER}qreg q[1];\nsx q[0];\nsxdg q[0];\nu2(0,pi) q[0];\nid q[0];\nu0(0) q[0];\n"
        ))
        .expect("parse");
        assert_eq!(c.cnot_count(), 0);
        assert!(c.op_count() >= 4);
    }

    #[test]
    fn reset_broadcasts() {
        let c = parse(&format!("{HEADER}qreg q[3];\nreset q;\n")).expect("parse");
        assert_eq!(c.op_count(), 3);
    }

    #[test]
    fn nested_if_applies_inner_gate() {
        let c =
            parse(&format!("{HEADER}qreg q[2];\ncreg c[1];\nif (c==0) if (c==1) cx q[0], q[1];\n"))
                .expect("parse");
        assert_eq!(c.cnot_count(), 1);
    }

    #[test]
    fn empty_parameter_parens_allowed() {
        let c = parse(&format!("{HEADER}qreg q[1];\ngate flip() a {{ x a; }}\nflip() q[0];\n"))
            .expect("parse");
        assert_eq!(c.op_count(), 1);
    }

    #[test]
    fn exponent_expression() {
        let c = parse(&format!("{HEADER}qreg q[1];\nrz(2^3) q[0];\n")).expect("parse");
        match c.ops()[0] {
            crate::circuit::Op::Single { kind: SingleGate::Rz(v), .. } => {
                assert!((v - 8.0).abs() < 1e-12);
            }
            ref other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn recursion_depth_guard() {
        // A self-recursive gate must error, not stack-overflow. (Forward
        // references are rejected at definition time, so build recursion
        // through the expansion depth limit with nesting.)
        let mut defs = String::new();
        defs.push_str("gate g0 a { x a; }\n");
        for k in 1..=70 {
            defs.push_str(&format!("gate g{k} a {{ g{} a; }}\n", k - 1));
        }
        let err = parse(&format!("{HEADER}qreg q[1];\n{defs}g70 q[0];\n"));
        assert!(err.is_err(), "deep nesting beyond the limit must be rejected");
    }

    #[test]
    fn duplicate_definitions_rejected() {
        let err = parse(&format!("{HEADER}gate twice a {{ x a; }}\ngate twice a {{ x a; }}\n"))
            .unwrap_err();
        assert!(err.message().contains("duplicate"));
        let err = parse(&format!("{HEADER}qreg q[1];\nqreg q[2];\n")).unwrap_err();
        assert!(err.message().contains("duplicate"));
    }
}
