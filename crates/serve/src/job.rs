//! Job handles: the client's view of one submitted compilation.
//!
//! A [`JobHandle`] supports the three interaction styles a service client
//! needs — non-blocking poll ([`JobHandle::status`] /
//! [`JobHandle::try_wait`]), blocking wait ([`JobHandle::wait`]), and
//! cooperative cancellation ([`JobHandle::cancel`]). The result of a job
//! is owned, not shared: exactly one `wait`/`try_wait` takes it, which is
//! why both consume the handle.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use ecmas_core::error::CompileError;
use ecmas_core::session::CompileOutcome;

/// Service-assigned job identifier (1-based, in submission order).
pub type JobId = u64;

/// Observable lifecycle stage of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum JobStatus {
    /// Waiting in the service queue.
    Queued,
    /// A worker is compiling it.
    Running,
    /// The result (outcome or error) is available.
    Finished,
}

/// Why a job finished without a [`CompileOutcome`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum JobError {
    /// The compiler itself failed.
    Compile(CompileError),
    /// The job's deadline lapsed before it finished; `budget` is the
    /// deadline it was submitted with. A queued job reports this the
    /// moment a worker (or a waiting client) notices the lapse; a running
    /// staged job stops at its next stage boundary.
    DeadlineExceeded {
        /// The deadline the job was submitted with.
        budget: Duration,
    },
    /// [`JobHandle::cancel`] stopped the job before it produced a result.
    Cancelled,
    /// The compiler panicked; the payload is the panic message. The
    /// worker survives and keeps serving.
    Panicked {
        /// The panic payload, stringified.
        message: String,
    },
    /// A transient fault (injected by a chaos fault plan, or an
    /// infrastructure hiccup) failed this job. Surfaced only once the
    /// service's retry policy is exhausted — transient failures with
    /// retry headroom re-run invisibly.
    Faulted {
        /// Where the fault fired (e.g. `"stage 1 (attempt 2)"`).
        site: String,
    },
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Compile(e) => write!(f, "compile error: {e}"),
            JobError::DeadlineExceeded { budget } => {
                write!(f, "deadline of {budget:?} exceeded")
            }
            JobError::Cancelled => write!(f, "job cancelled"),
            JobError::Panicked { message } => write!(f, "compiler panicked: {message}"),
            JobError::Faulted { site } => write!(f, "transient fault at {site}"),
        }
    }
}

impl Error for JobError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JobError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for JobError {
    fn from(e: CompileError) -> Self {
        JobError::Compile(e)
    }
}

enum State {
    Queued,
    Running,
    /// `Some` until the (unique) handle takes the result. Boxed so the
    /// enum (alive for every queued job) stays pointer-sized.
    Finished(Option<Box<Result<CompileOutcome, JobError>>>),
}

/// Shared slot between one [`JobHandle`] and the worker that runs the job.
pub(crate) struct Slot {
    state: Mutex<State>,
    done: Condvar,
    cancelled: AtomicBool,
    deadline: Option<Instant>,
    budget: Option<Duration>,
    /// The request's estimated cost, claimed against the service's
    /// shed budget at admission and released when the job settles.
    cost: u64,
    /// How many times a worker has picked this job up. Normally 1;
    /// higher when a supervised worker died at pickup and the job was
    /// requeued. Keys the `WorkerPickup` fault site so a requeued job
    /// cannot be re-killed forever.
    deliveries: AtomicU32,
}

impl Slot {
    pub(crate) fn new(budget: Option<Duration>, cost: u64) -> Self {
        Slot {
            state: Mutex::new(State::Queued),
            done: Condvar::new(),
            cancelled: AtomicBool::new(false),
            deadline: budget.and_then(|b| Instant::now().checked_add(b)),
            budget,
            cost,
            deliveries: AtomicU32::new(0),
        }
    }

    pub(crate) fn cost(&self) -> u64 {
        self.cost
    }

    /// The 0-based delivery counter: called once per worker pickup.
    pub(crate) fn next_delivery(&self) -> u32 {
        self.deliveries.fetch_add(1, Ordering::AcqRel)
    }

    /// Between retry attempts: is anyone still waiting for this result?
    /// Like [`checkpoint`](Self::checkpoint) but also fails when a
    /// deadline-waiter already claimed the outcome (the slot is
    /// `Finished` while the worker still runs).
    pub(crate) fn still_wanted(&self) -> Result<(), JobError> {
        self.checkpoint()?;
        if matches!(*self.state.lock().expect("job lock"), State::Finished(_)) {
            return Err(JobError::Cancelled);
        }
        Ok(())
    }

    /// Cancel/deadline check, used both when a worker picks the job up and
    /// at every stage boundary while it runs.
    pub(crate) fn checkpoint(&self) -> Result<(), JobError> {
        if self.cancelled.load(Ordering::Acquire) {
            return Err(JobError::Cancelled);
        }
        if let (Some(deadline), Some(budget)) = (self.deadline, self.budget) {
            if Instant::now() >= deadline {
                return Err(JobError::DeadlineExceeded { budget });
            }
        }
        Ok(())
    }

    /// Worker-side: the job was dequeued. Runs the checkpoint; on success
    /// the job transitions to `Running`. The transition is checked under
    /// the state lock: a waiter that claimed the slot at its deadline in
    /// the meantime wins, and the worker must not run the job.
    pub(crate) fn begin(&self) -> Result<(), JobError> {
        self.checkpoint()?;
        let mut state = self.state.lock().expect("job lock");
        match *state {
            State::Queued => {
                *state = State::Running;
                Ok(())
            }
            // A deadline-waiter claimed the outcome between the checkpoint
            // and this lock; skip the job (finish() keeps their verdict).
            State::Finished(_) => Err(JobError::Cancelled),
            State::Running => unreachable!("a job is dequeued by exactly one worker"),
        }
    }

    /// Worker-side: store the result and wake every waiter.
    pub(crate) fn finish(&self, result: Result<CompileOutcome, JobError>) {
        let mut state = self.state.lock().expect("job lock");
        // A waiter that gave up at the deadline already consumed the
        // outcome slot; keep its verdict.
        if !matches!(*state, State::Finished(_)) {
            *state = State::Finished(Some(Box::new(result)));
        }
        drop(state);
        self.done.notify_all();
    }
}

/// A submitted job: poll it, wait on it, or cancel it.
///
/// The handle is the *only* owner of the job's result, so the waiting
/// methods consume it. Dropping the handle abandons the result (the job
/// itself still runs to completion unless cancelled first).
pub struct JobHandle {
    id: JobId,
    slot: Arc<Slot>,
}

impl fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobHandle").field("id", &self.id).field("status", &self.status()).finish()
    }
}

impl JobHandle {
    pub(crate) fn new(id: JobId, slot: Arc<Slot>) -> Self {
        JobHandle { id, slot }
    }

    /// The service-assigned job id (1-based, in submission order).
    #[must_use]
    pub fn id(&self) -> JobId {
        self.id
    }

    /// Non-blocking lifecycle probe.
    #[must_use]
    pub fn status(&self) -> JobStatus {
        match *self.slot.state.lock().expect("job lock") {
            State::Queued => JobStatus::Queued,
            State::Running => JobStatus::Running,
            State::Finished(_) => JobStatus::Finished,
        }
    }

    /// Requests cooperative cancellation. Returns `true` when the request
    /// was registered before the job finished — a still-queued job is then
    /// guaranteed to be skipped (it reports [`JobError::Cancelled`]); a
    /// running staged job stops at its next stage boundary. Returns
    /// `false` when the job had already finished.
    pub fn cancel(&self) -> bool {
        self.slot.cancelled.store(true, Ordering::Release);
        !matches!(self.status(), JobStatus::Finished)
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.slot.cancelled.load(Ordering::Acquire)
    }

    /// Non-blocking result take: the outcome if the job has finished,
    /// the handle back otherwise.
    ///
    /// # Errors
    ///
    /// Returns `Err(self)` while the job is still queued or running.
    pub fn try_wait(self) -> Result<Result<CompileOutcome, JobError>, JobHandle> {
        {
            let mut state = self.slot.state.lock().expect("job lock");
            if let State::Finished(result) = &mut *state {
                return Ok(*result.take().expect("job result taken twice"));
            }
        }
        Err(self)
    }

    /// Blocks until the job finishes and returns its result.
    ///
    /// A job with a deadline never blocks past it, whether the job is
    /// still queued or already running: at the lapse the wait claims the
    /// outcome as [`JobError::DeadlineExceeded`] and requests
    /// cancellation. A still-queued job is then guaranteed to be skipped;
    /// a running staged job aborts at its next stage boundary (a custom
    /// compiler runs to completion, its late result discarded).
    ///
    /// # Errors
    ///
    /// Returns [`JobError`] when the job was cancelled, timed out, or the
    /// compiler failed.
    pub fn wait(self) -> Result<CompileOutcome, JobError> {
        let mut state = self.slot.state.lock().expect("job lock");
        loop {
            if let State::Finished(result) = &mut *state {
                return *result.take().expect("job result taken twice");
            }
            if let (Some(deadline), Some(budget)) = (self.slot.deadline, self.slot.budget) {
                let now = Instant::now();
                if now >= deadline {
                    // Deadline lapsed with no result: claim the outcome
                    // and tell the job to stop. finish() keeps this
                    // verdict even if a late result arrives.
                    self.slot.cancelled.store(true, Ordering::Release);
                    *state = State::Finished(None);
                    return Err(JobError::DeadlineExceeded { budget });
                }
                let (next, _) =
                    self.slot.done.wait_timeout(state, deadline - now).expect("job lock");
                state = next;
            } else {
                state = self.slot.done.wait(state).expect("job lock");
            }
        }
    }
}
