//! A minimal JSON reader/writer for the `ecmasd` line protocol.
//!
//! The workspace is offline (see `vendor/README.md`), so there is no
//! serde; the daemon's requests are small flat objects, and this module
//! parses exactly standard JSON into a tiny [`Value`] tree. Emission
//! stays `format!`-based throughout the workspace — reports already know
//! how to print themselves — so only [`escape`] is shared for output.

use std::error::Error;
use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (kept as `f64`; [`Value::as_u64`] checks
    /// integrality).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match; `None` for non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) =>
            {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// [`Value::as_u64`] narrowed to `usize`.
    #[must_use]
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().and_then(|n| usize::try_from(n).ok())
    }

    /// The boolean, if this is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
///
/// # Errors
///
/// Returns a [`JsonError`] with the byte offset of the first problem.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the document"));
    }
    Ok(value)
}

/// Escapes `s` for embedding in a JSON string literal (quotes, backslash,
/// and control characters).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if c.is_control() => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError { offset: self.pos, message }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8, message: &'static str) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn keyword(&mut self, word: &'static str, value: Value) -> Result<Value, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err("invalid keyword"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'{', "expected '{'")?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(c).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("lone high surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&first) {
                                return Err(self.err("lone low surrogate"));
                            } else {
                                char::from_u32(first).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .expect("input was a valid &str"),
                    );
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(self.err("truncated \\u escape"));
        };
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .ok()
            .and_then(|s| u32::from_str_radix(s, 16).ok())
            .ok_or_else(|| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(hex)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') = self.peek() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| JsonError { offset: start, message: "invalid number" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_protocol_shapes() {
        let v = parse(
            r#"{"op":"submit","random":{"qubits":12,"depth":60,"parallelism":3,"seed":7},
               "deadline_ms":250,"tag":"a/b","deep":[1,-2.5,true,null]}"#,
        )
        .unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("submit"));
        let random = v.get("random").unwrap();
        assert_eq!(random.get("qubits").unwrap().as_usize(), Some(12));
        assert_eq!(random.get("seed").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("deadline_ms").unwrap().as_u64(), Some(250));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("a/b"));
        match v.get("deep").unwrap() {
            Value::Arr(items) => {
                assert_eq!(items[0].as_u64(), Some(1));
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[2].as_bool(), Some(true));
                assert_eq!(items[3], Value::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#""a\"b\\c\/\n\t\u00e9\ud83d\ude00 ü""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c/\n\té😀 ü"));
    }

    #[test]
    fn escape_roundtrips_through_parse() {
        let original = "tag \"x\"\\ with\nnewline\tand é";
        let quoted = format!("\"{}\"", escape(original));
        assert_eq!(parse(&quoted).unwrap().as_str(), Some(original));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "\"\\ud800x\"",
            "{} extra",
            "\"unterminated",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn rejects_pathological_nesting() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn u64_narrowing_is_checked() {
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("42").unwrap().as_usize(), Some(42));
        assert_eq!(parse("true").unwrap().as_f64(), None);
    }
}
