//! **ecmas-serve** — the workload-facing service layer of the workspace.
//!
//! Everything upstream of this crate compiles *one* circuit; everything
//! downstream of it serves *traffic*. The centerpiece is
//! [`CompileService`]: a persistent worker pool (sharded over cores)
//! draining a bounded job queue with configurable [`Backpressure`].
//! Submissions are [`CompileRequest`]s — circuit + chip + config
//! overrides + optional deadline — and come back as [`JobHandle`]s
//! supporting non-blocking poll, blocking wait, and cooperative
//! cancellation. Built-in requests run the staged session pipeline with
//! a cancel/deadline checkpoint at every stage boundary.
//!
//! [`compile_batch`] — the workspace's original batch API — is a thin
//! facade over the same dispatch machine, instantiated with borrowed
//! jobs on scoped threads, so batch callers (the fig11/fig12 harness,
//! the examples) keep their exact semantics: results in input order,
//! bit-identical to a sequential loop. [`compile_jobs`] is the
//! heterogeneous variant (per-job compiler *and* chip) the `table*`
//! binaries fan out over.
//!
//! A [`CompileService`] can front its built-in pipeline with the
//! `ecmas-cache` content-addressed compile cache
//! ([`ServiceConfig::cache_bytes`]): repeated requests are served from
//! the byte-budgeted LRU, identical concurrent requests coalesce into
//! one compile, and partially-matching requests reuse cached
//! profile/map stage artifacts. Every report then carries its cache
//! provenance (`report.cache`), and [`CompileService::cache_stats`]
//! snapshots the service-wide counters.
//!
//! The [`daemon`] module implements the `ecmasd` newline-delimited JSON
//! protocol (submit / status / cancel / result / drain / stats) over a
//! [`CompileService`], and [`daemon::stress_stream`] renders an
//! `ecmas_circuit::random::StressWorkload` as a ready-to-pipe job
//! stream.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use ecmas_serve::{CompileRequest, CompileService, ServiceConfig};
//! use ecmas_chip::{Chip, CodeModel};
//! use ecmas_circuit::benchmarks::qft_n10;
//!
//! let service = CompileService::new(ServiceConfig { workers: 2, ..ServiceConfig::default() });
//! let circuit = qft_n10();
//! let chip = Chip::min_viable(CodeModel::DoubleDefect, 10, 3)?;
//!
//! let fast = service.submit(CompileRequest::new(circuit.clone(), chip.clone()))?;
//! let slow = service.submit(
//!     CompileRequest::new(circuit, chip).with_deadline(Duration::from_secs(30)),
//! )?;
//! let outcome = fast.wait()?;
//! assert!(outcome.report.cycles >= 37);
//! slow.cancel(); // cooperative; a queued job is guaranteed to be skipped
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod daemon;
pub mod job;
pub mod json;
mod queue;
pub mod service;

pub use batch::{
    compile_batch, compile_batch_with_threads, compile_jobs, compile_jobs_with_threads, BatchJob,
};
pub use job::{JobError, JobHandle, JobId, JobStatus};
pub use queue::Backpressure;
pub use service::{
    CompileRequest, CompileService, RetryStats, ScheduleMode, ServiceConfig, SubmitError,
    SupervisorStats,
};
// Fault-tolerance policy types, re-exported so service callers configure
// chaos runs without naming the policy crate.
pub use ecmas_faults::{FaultConfig, FaultSnapshot, RetryConfig};
